//! Source-level oversampling walkthrough: take one natural security patch
//! and print every Fig. 5 control-flow variant the oversampler derives
//! from it.
//!
//! ```sh
//! cargo run --release --example synthesize_patches
//! ```

use patchdb_corpus::{ChangeKind, PatchCategory};
use patchdb_synth::{synthesize, SynthOptions};

fn main() {
    // Materialize one bound-check security fix from the forge's generator
    // (any patch + its file pair works the same way).
    let forge = patchdb_corpus::GitHubForge::generate(
        &patchdb_corpus::CorpusConfig::with_total_commits(600, 3),
    );
    let commit = forge
        .all_commits()
        .map(|(_, c)| c)
        .find(|c| c.kind == ChangeKind::Security(PatchCategory::BoundCheck))
        .or_else(|| {
            forge.all_commits().map(|(_, c)| c).find(|c| c.kind.is_security())
        })
        .expect("forge contains a security fix");
    let change = forge.materialize(commit);

    println!("== natural patch ==");
    println!("{}", change.patch.to_unified_string());

    let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
    let synths = synthesize(&change.patch, &change.before_files, &change.after_files, &opts);
    println!("oversampler produced {} synthetic variants\n", synths.len());

    for s in &synths {
        println!("== synthetic variant {:?} (edited {:?} side) ==", s.variant, s.side);
        // Print only the hunks (skip the header) to keep output compact.
        let text = s.patch.to_unified_string();
        for line in text.lines().skip_while(|l| !l.starts_with("@@")) {
            println!("{line}");
        }
        println!();
    }

    println!(
        "each variant preserves the original fix semantics while enriching\n\
         the control-flow representation of the patch (Section III-C)."
    );
}
