//! Fix-pattern mining over PatchDB (Section V-A-2 / Table VII): build the
//! dataset, then summarize *how* its security patches fix vulnerabilities
//! — race-condition locking, data-leakage scrubbing, guard insertion, and
//! safer-call swaps.
//!
//! ```sh
//! cargo run --release --example mine_fix_patterns
//! ```

use patchdb::{mine_fix_patterns, pattern_frequencies, BuildOptions, FixPattern, PatchDb};

fn main() {
    let report = PatchDb::build(&BuildOptions::tiny(31));
    let db = &report.db;
    println!("dataset: {}\n", db.stats());

    let freqs = pattern_frequencies(db.security_patches().map(|r| &r.patch));
    println!("== fix patterns mined from {} security patches ==", db.security_patches().count());
    for (pattern, count) in &freqs {
        println!("{:>5}×  {}", count, pattern.label());
    }

    // Show one concrete instance of each Table VII pattern.
    for want in [FixPattern::RaceCondition, FixPattern::DataLeakage] {
        let hit = db
            .security_patches()
            .find(|r| mine_fix_patterns(&r.patch).contains(&want));
        match hit {
            Some(record) => {
                println!("\n== example: {} ({}) ==", want.label(), record.commit.short());
                for line in record
                    .patch
                    .to_unified_string()
                    .lines()
                    .skip_while(|l| !l.starts_with("@@"))
                    .take(20)
                {
                    println!("{line}");
                }
            }
            None => println!("\n(no {} instance in this tiny build)", want.label()),
        }
    }

    println!(
        "\nnon-security patches rarely match: {} of {} do",
        db.non_security
            .iter()
            .filter(|r| !mine_fix_patterns(&r.patch).is_empty())
            .count(),
        db.non_security.len()
    );
}
