//! Feature-space analysis: which of the 60 Table I dimensions actually
//! separate security patches from the cleaned non-security set? Pairs the
//! population statistics with a Random-Forest permutation-importance view
//! of the same question.
//!
//! ```sh
//! cargo run --release --example feature_analysis
//! ```

use patchdb::{BuildOptions, FeatureVector, PatchDb, FEATURE_NAMES};
use patchdb_features::{rank_discriminative, FeatureSummary};
use patchdb_ml::{permutation_importance, Classifier, Dataset, RandomForest};

fn main() {
    let report = PatchDb::build(&BuildOptions::tiny(71));
    let db = &report.db;
    println!("dataset: {}\n", db.stats());

    let sec: Vec<FeatureVector> = db.security_patches().map(|r| r.features).collect();
    let nonsec: Vec<FeatureVector> = db.non_security.iter().map(|r| r.features).collect();

    // 1. Distribution view: effect sizes between the two populations.
    let ranked = rank_discriminative(&FeatureSummary::of(&sec), &FeatureSummary::of(&nonsec));
    println!("== top features by effect size (security vs non-security) ==");
    println!("{:<38} {:>8} {:>10} {:>10}", "feature", "effect", "sec mean", "nonsec mean");
    for d in ranked.iter().take(10) {
        println!(
            "{:<38} {:>8.2} {:>10.2} {:>10.2}",
            d.name, d.effect_size, d.mean_a, d.mean_b
        );
    }

    // 2. Model view: what does a trained forest actually rely on?
    let rows: Vec<Vec<f64>> = sec
        .iter()
        .chain(&nonsec)
        .map(|v| v.as_slice().to_vec())
        .collect();
    let labels: Vec<bool> = std::iter::repeat(true)
        .take(sec.len())
        .chain(std::iter::repeat(false).take(nonsec.len()))
        .collect();
    let data = Dataset::new(rows, labels).expect("valid features");
    let (train, test) = data.split(0.8, 5);
    let mut rf = RandomForest::new(24, 10, 7);
    rf.fit(&train);

    let importances = permutation_importance(&rf, &test, 11);
    let mut by_importance: Vec<(usize, f64)> =
        importances.into_iter().enumerate().collect();
    by_importance.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("\n== top features by random-forest permutation importance ==");
    for (i, imp) in by_importance.iter().take(10) {
        println!("{:<38} {:>8.3}", FEATURE_NAMES[*i], imp);
    }

    println!(
        "\nnote: the two views need not agree — effect size measures marginal\n\
         separation, permutation importance measures what the fitted model\n\
         leans on after interactions (Sections III-B-1 and IV-E context)."
    );
}
