//! Automatic patch-pattern analysis: classify a PatchDB security-patch
//! sample into the 12 Table V categories with the rule-based taxonomy and
//! score it against the corpus's ground truth — the "automatic patch
//! analysis" use case of Section V.
//!
//! ```sh
//! cargo run --release --example classify_patterns
//! ```

use std::collections::HashMap;

use patchdb::{classify_patch, BuildOptions, PatchDb, PatchCategory, ALL_CATEGORIES};

fn main() {
    let report = PatchDb::build(&BuildOptions::tiny(9));
    let db = &report.db;
    println!("dataset: {}\n", db.stats());

    let mut per_cat: HashMap<PatchCategory, (usize, usize)> = HashMap::new(); // (hits, total)
    let mut confusion: HashMap<(PatchCategory, PatchCategory), usize> = HashMap::new();
    let mut correct = 0usize;
    let mut total = 0usize;

    for record in db.security_patches() {
        let Some(truth) = record.truth_category else { continue };
        let predicted = classify_patch(&record.patch);
        total += 1;
        let slot = per_cat.entry(truth).or_insert((0, 0));
        slot.1 += 1;
        if predicted == truth {
            correct += 1;
            slot.0 += 1;
        } else {
            *confusion.entry((truth, predicted)).or_insert(0) += 1;
        }
    }

    println!("== per-category recall of the rule-based classifier ==");
    println!("{:<40} {:>6} {:>8}", "category", "n", "recall");
    for c in ALL_CATEGORIES {
        if let Some((hits, n)) = per_cat.get(&c) {
            println!(
                "{:<40} {:>6} {:>7.0}%",
                c.label(),
                n,
                100.0 * *hits as f64 / (*n).max(1) as f64
            );
        }
    }
    println!(
        "\noverall agreement with ground truth: {}/{} = {:.1}%",
        correct,
        total,
        100.0 * correct as f64 / total.max(1) as f64
    );

    // The most common confusions, for error analysis.
    let mut worst: Vec<_> = confusion.into_iter().collect();
    worst.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    println!("\n== top confusions (truth → predicted) ==");
    for ((t, p), n) in worst.into_iter().take(5) {
        println!("{:>3}× type {} → type {}", n, t.type_id(), p.type_id());
    }
}
