//! Quickstart: build a miniature PatchDB end to end and look around.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use patchdb::{BuildOptions, PatchDb};

fn main() {
    // A small forge so the example finishes in seconds; use
    // `BuildOptions::default_scale` for the paper-shaped corpus.
    let options = BuildOptions::tiny(42);
    println!(
        "building PatchDB against a synthetic forge ({} repos, ~{} commits)...",
        options.corpus.n_repos,
        options.corpus.expected_commits()
    );

    let report = PatchDb::build(&options);
    let db = &report.db;
    println!("\n== dataset ==\n{}", db.stats());

    println!("\n== augmentation rounds (Table II shape) ==");
    println!("{:<10} {:>6} {:>13} {:>11} {:>9} {:>7}", "pool", "round", "search range", "candidates", "verified", "ratio");
    for r in &report.rounds {
        println!(
            "{:<10} {:>6} {:>13} {:>11} {:>9} {:>6.0}%",
            r.pool, r.round, r.search_range, r.candidates, r.verified_security,
            100.0 * r.ratio
        );
    }
    println!(
        "(wild pool: {} commits; human verification effort: {} candidates)",
        report.wild_total, report.verification_effort
    );

    // Every natural patch is a real unified diff; print one.
    if let Some(example) = db.wild.first() {
        println!("\n== a wild-based security patch ({}) ==", example.commit.short());
        println!("{}", example.patch.to_unified_string());
    }

    // And the synthetic dataset derives from natural patches.
    if let Some(synth) = db.synthetic.iter().find(|s| s.is_security) {
        println!(
            "== a synthetic variant (derived from {}) ==",
            synth.derived_from.short()
        );
        for line in synth.patch.to_unified_string().lines().take(25) {
            println!("{line}");
        }
    }

    // The whole dataset serializes to JSON like the real PatchDB release.
    let json = db.to_json().expect("serializable");
    println!("\nJSON export: {} bytes", json.len());
}
