//! Quickstart: build a miniature PatchDB end to end and look around.
//!
//! ```sh
//! cargo run --release --example quickstart            # full tour
//! cargo run --release --example quickstart -- --quiet # headline numbers only
//! cargo run --release --example quickstart -- --trace # + NLS pruning telemetry
//! ```

use patchdb::{BuildOptions, PatchDb};
use patchdb_rt::obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let trace = args.iter().any(|a| a == "--trace");
    if trace {
        obs::set_enabled(true);
    }

    // A small forge so the example finishes in seconds; use
    // `BuildOptions::default_scale` for the paper-shaped corpus.
    let options = BuildOptions::tiny(42);
    if !quiet {
        println!(
            "building PatchDB against a synthetic forge ({} repos, ~{} commits)...",
            options.corpus.n_repos,
            options.corpus.expected_commits()
        );
    }

    let report = PatchDb::build(&options);
    let db = &report.db;
    println!("\n== dataset ==\n{}", db.stats());

    println!("\n== augmentation rounds (Table II shape) ==");
    println!("{:<10} {:>6} {:>13} {:>11} {:>9} {:>7}", "pool", "round", "search range", "candidates", "verified", "ratio");
    for r in &report.rounds {
        println!(
            "{:<10} {:>6} {:>13} {:>11} {:>9} {:>6.0}%",
            r.pool, r.round, r.search_range, r.candidates, r.verified_security,
            100.0 * r.ratio
        );
    }
    println!(
        "(wild pool: {} commits; human verification effort: {} candidates)",
        report.wild_total, report.verification_effort
    );

    // With --trace, the build telemetry carries per-round NLS counters:
    // how many distance computations the index bounds (whole cells,
    // quantized rejects) and the norm bound skipped outright.
    if let Some(telemetry) = &report.telemetry {
        println!("\n== NLS pruning efficiency (per round) ==");
        for r in &report.rounds {
            let counter = |suffix: &str| {
                telemetry.trace.counter(&format!("nls.round{:02}.{suffix}", r.round))
            };
            if let (Some(evaluated), Some(pruned)) =
                (counter("dist_evaluated"), counter("pruned_norm"))
            {
                let skipped = pruned
                    + counter("cells_skipped").unwrap_or(0)
                    + counter("quant_rejects").unwrap_or(0);
                let total = evaluated + skipped;
                let avoided =
                    if total == 0 { 0.0 } else { 100.0 * skipped as f64 / total as f64 };
                println!(
                    "round {:02} [{}]: {evaluated} distances evaluated, {skipped} skipped \
                     by index/norm bounds ({avoided:.1}% of comparisons avoided)",
                    r.round, r.pool
                );
            }
        }
    }

    if !quiet {
        // Every natural patch is a real unified diff; print one.
        if let Some(example) = db.wild.first() {
            println!("\n== a wild-based security patch ({}) ==", example.commit.short());
            println!("{}", example.patch.to_unified_string());
        }

        // And the synthetic dataset derives from natural patches.
        if let Some(synth) = db.synthetic.iter().find(|s| s.is_security) {
            println!(
                "== a synthetic variant (derived from {}) ==",
                synth.derived_from.short()
            );
            for line in synth.patch.to_unified_string().lines().take(25) {
                println!("{line}");
            }
        }
    }

    // The whole dataset serializes to JSON like the real PatchDB release.
    let json = db.to_json().expect("serializable");
    println!("\nJSON export: {} bytes", json.len());
}
