//! Wild-dataset augmentation in detail: run the nearest link search loop
//! against a forge and compare its hit rate with brute-force screening —
//! the efficiency argument at the heart of the paper (Tables II & III).
//!
//! ```sh
//! cargo run --release --example augment_wild
//! ```

use std::collections::HashSet;

use patchdb::FeatureVector;
use patchdb_corpus::{CorpusConfig, GitHubForge, VerificationOracle};
use patchdb_features::extract;
use patchdb_mine::{collect_wild, mine_nvd, sample_wild};
use patchdb_nls::{augment_rounds, brute_force_candidates, PoolSpec};

fn main() {
    let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(6_000, 7));
    let mined = mine_nvd(&forge);
    println!(
        "mined {} NVD security patches from {} repositories",
        mined.patches.len(),
        forge.repos().len()
    );

    let wild = collect_wild(&forge, &mined.claimed_ids());
    let pool = sample_wild(&wild, 3_000, 99);
    println!("wild pool: {} unlabeled commits", pool.len());

    // Feature space over the pool.
    let features: Vec<FeatureVector> = pool
        .iter()
        .map(|w| {
            let change = forge.materialize(w.commit);
            let patch = change.patch.retain_c_files().unwrap_or(change.patch);
            extract(&patch, Some(&w.repo_context()))
        })
        .collect();
    let contexts: std::collections::HashMap<&str, patchdb_features::RepoContext> = forge
        .repos()
        .iter()
        .map(|r| (r.name.as_str(), patchdb_features::RepoContext {
            total_files: r.total_files, total_functions: r.total_functions }))
        .collect();
    let seed: Vec<FeatureVector> = mined
        .patches
        .iter()
        .map(|m| extract(&m.patch, contexts.get(m.repo.as_str())))
        .collect();

    // Three rounds of nearest-link augmentation with a 2%-error 3-expert
    // oracle.
    let oracle = VerificationOracle::new(0.02, 5);
    let pools = vec![PoolSpec {
        name: "Set I".into(),
        members: (0..pool.len()).collect(),
        rounds: 3,
    }];
    let (rounds, sec_idx, nonsec_idx) =
        augment_rounds(&seed, &features, &pools, |i| oracle.verify(pool[i].commit));

    println!("\nround  range  candidates  verified  ratio");
    for r in &rounds {
        println!(
            "{:>5}  {:>5}  {:>10}  {:>8}  {:>4.0}%",
            r.round, r.search_range, r.candidates, r.verified_security,
            100.0 * r.ratio
        );
    }
    println!(
        "\nnearest link search: {} security patches from {} verifications",
        sec_idx.len(),
        sec_idx.len() + nonsec_idx.len()
    );

    // Brute force on the same budget.
    let budget = sec_idx.len() + nonsec_idx.len();
    let bf = brute_force_candidates(pool.len(), budget, 123);
    let bf_oracle = VerificationOracle::new(0.02, 5);
    let bf_hits = bf.iter().filter(|&&i| bf_oracle.verify(pool[i].commit)).count();
    println!(
        "brute force search:  {} security patches from {} verifications",
        bf_hits, budget
    );

    let nls_rate = sec_idx.len() as f64 / budget as f64;
    let bf_rate = bf_hits as f64 / budget as f64;
    println!(
        "\nefficiency: NLS {:.0}% vs brute force {:.0}% → {:.1}× less human effort per patch",
        100.0 * nls_rate,
        100.0 * bf_rate,
        nls_rate / bf_rate.max(1e-9)
    );

    // Double-check against sealed ground truth.
    let truly_sec: HashSet<usize> = (0..pool.len())
        .filter(|&i| pool[i].commit.truth.is_security)
        .collect();
    println!(
        "(ground truth: {} of {} pool commits are security patches — base rate {:.0}%)",
        truly_sec.len(),
        pool.len(),
        100.0 * truly_sec.len() as f64 / pool.len() as f64
    );
}
