//! Wild-dataset augmentation in detail: run the nearest link search loop
//! against a forge and compare its hit rate with brute-force screening —
//! the efficiency argument at the heart of the paper (Tables II & III).
//!
//! ```sh
//! cargo run --release --example augment_wild             # full comparison
//! cargo run --release --example augment_wild -- --quiet  # headline numbers only
//! cargo run --release --example augment_wild -- --trace  # + per-round pruning stats
//! ```

use std::collections::HashSet;

use patchdb::FeatureVector;
use patchdb_corpus::{CorpusConfig, GitHubForge, VerificationOracle};
use patchdb_features::extract;
use patchdb_mine::{collect_wild, mine_nvd, sample_wild};
use patchdb_nls::{augment_rounds, brute_force_candidates, PoolSpec};
use patchdb_rt::obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let trace = args.iter().any(|a| a == "--trace");
    if trace {
        obs::set_enabled(true);
        // This example drives `augment_rounds` directly (no `PatchDb::build`
        // around it to reset the registry), so start from a clean slate.
        obs::reset();
    }

    let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(6_000, 7));
    let mined = mine_nvd(&forge);
    if !quiet {
        println!(
            "mined {} NVD security patches from {} repositories",
            mined.patches.len(),
            forge.repos().len()
        );
    }

    let wild = collect_wild(&forge, &mined.claimed_ids());
    let pool = sample_wild(&wild, 3_000, 99);
    if !quiet {
        println!("wild pool: {} unlabeled commits", pool.len());
    }

    // Feature space over the pool.
    let features: Vec<FeatureVector> = pool
        .iter()
        .map(|w| {
            let change = forge.materialize(w.commit);
            let patch = change.patch.retain_c_files().unwrap_or(change.patch);
            extract(&patch, Some(&w.repo_context()))
        })
        .collect();
    let contexts: std::collections::HashMap<&str, patchdb_features::RepoContext> = forge
        .repos()
        .iter()
        .map(|r| (r.name.as_str(), patchdb_features::RepoContext {
            total_files: r.total_files, total_functions: r.total_functions }))
        .collect();
    let seed: Vec<FeatureVector> = mined
        .patches
        .iter()
        .map(|m| extract(&m.patch, contexts.get(m.repo.as_str())))
        .collect();

    // Three rounds of nearest-link augmentation with a 2%-error 3-expert
    // oracle.
    let oracle = VerificationOracle::new(0.02, 5);
    let pools = vec![PoolSpec {
        name: "Set I".into(),
        members: (0..pool.len()).collect(),
        rounds: 3,
    }];
    let (rounds, sec_idx, nonsec_idx) =
        augment_rounds(&seed, &features, &pools, |i| oracle.verify(pool[i].commit));

    println!("\nround  range  candidates  verified  ratio");
    for r in &rounds {
        println!(
            "{:>5}  {:>5}  {:>10}  {:>8}  {:>4.0}%",
            r.round, r.search_range, r.candidates, r.verified_security,
            100.0 * r.ratio
        );
    }
    println!(
        "\nnearest link search: {} security patches from {} verifications",
        sec_idx.len(),
        sec_idx.len() + nonsec_idx.len()
    );

    // With --trace, per-round counters show how much work the index
    // bounds (whole cells, quantized rejects) and the norm-bound pruning
    // saved the distance kernel on each pass.
    if trace {
        let telemetry = obs::report();
        println!("\nNLS pruning efficiency:");
        for r in &rounds {
            let counter =
                |suffix: &str| telemetry.counter(&format!("nls.round{:02}.{suffix}", r.round));
            if let (Some(evaluated), Some(pruned)) =
                (counter("dist_evaluated"), counter("pruned_norm"))
            {
                let skipped = pruned
                    + counter("cells_skipped").unwrap_or(0)
                    + counter("quant_rejects").unwrap_or(0);
                let total = evaluated + skipped;
                let avoided =
                    if total == 0 { 0.0 } else { 100.0 * skipped as f64 / total as f64 };
                println!(
                    "  round {:02}: {evaluated} distances evaluated, {skipped} skipped \
                     by index/norm bounds ({avoided:.1}% of comparisons avoided)",
                    r.round
                );
            }
        }
    }

    // Brute force on the same budget.
    let budget = sec_idx.len() + nonsec_idx.len();
    let bf = brute_force_candidates(pool.len(), budget, 123);
    let bf_oracle = VerificationOracle::new(0.02, 5);
    let bf_hits = bf.iter().filter(|&&i| bf_oracle.verify(pool[i].commit)).count();
    println!(
        "brute force search:  {} security patches from {} verifications",
        bf_hits, budget
    );

    let nls_rate = sec_idx.len() as f64 / budget as f64;
    let bf_rate = bf_hits as f64 / budget as f64;
    println!(
        "\nefficiency: NLS {:.0}% vs brute force {:.0}% → {:.1}× less human effort per patch",
        100.0 * nls_rate,
        100.0 * bf_rate,
        nls_rate / bf_rate.max(1e-9)
    );

    // Double-check against sealed ground truth.
    if !quiet {
        let truly_sec: HashSet<usize> = (0..pool.len())
            .filter(|&i| pool[i].commit.truth.is_security)
            .collect();
        println!(
            "(ground truth: {} of {} pool commits are security patches — base rate {:.0}%)",
            truly_sec.len(),
            pool.len(),
            100.0 * truly_sec.len() as f64 / pool.len() as f64
        );
    }
}
