//! The observability contract of a traced build: `BuildTelemetry` covers
//! all five pipeline stages as a properly nested span tree, carries the
//! per-round NLS prune/k-best counters, and serializes to a
//! schema-valid `TRACE_build.json` document.
//!
//! These tests live in their own binary: they flip the process-global
//! trace toggle, and `cargo test` runs integration binaries in separate
//! processes, so the other suites never observe the flip. Within this
//! binary the tests share one traced build through a `OnceLock`.

use std::sync::OnceLock;

use patchdb::{BuildOptions, BuildReport, BuildTelemetry, Json, PatchDb};
use patchdb_rt::obs;

fn traced_report() -> &'static BuildReport {
    static REPORT: OnceLock<BuildReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        obs::set_enabled(true);
        let report = PatchDb::build(&BuildOptions::tiny(7));
        obs::set_enabled(false);
        assert!(report.telemetry.is_some(), "traced build lost its telemetry");
        report
    })
}

fn telemetry() -> &'static BuildTelemetry {
    traced_report().telemetry.as_ref().expect("telemetry present")
}

#[test]
fn span_tree_covers_all_five_stages() {
    let trace = &telemetry().trace;
    let build = trace.find_span("build").expect("root `build` span");
    let stages: Vec<&str> = build.children.iter().map(|s| s.name.as_str()).collect();
    for stage in ["mine_nvd", "collect_wild", "augment", "assemble", "synthesize"] {
        assert!(stages.contains(&stage), "stage {stage} missing from {stages:?}");
    }
    // The augment stage nests the per-round spans, which nest the NLS
    // phases — three levels below the root.
    let augment = build.children.iter().find(|s| s.name == "augment").expect("augment stage");
    assert!(!augment.children.is_empty(), "augment stage has no round spans");
    let round = &augment.children[0];
    assert!(round.name.starts_with("round "), "unexpected round span {:?}", round.name);
    let phases: Vec<&str> = round.children.iter().map(|s| s.name.as_str()).collect();
    assert!(phases.contains(&"nls.init"), "round span lacks nls.init: {phases:?}");
    assert!(phases.contains(&"nls.assign"), "round span lacks nls.assign: {phases:?}");
}

#[test]
fn per_round_and_kbest_counters_are_present() {
    let report = traced_report();
    let trace = &telemetry().trace;
    // One pair of round-scoped prune counters per Table II round.
    for r in &report.rounds {
        let evaluated = format!("nls.round{:02}.dist_evaluated", r.round);
        let pruned = format!("nls.round{:02}.pruned_norm", r.round);
        assert!(trace.counter(&evaluated).is_some(), "missing {evaluated}");
        assert!(trace.counter(&pruned).is_some(), "missing {pruned}");
    }
    // Collision resolution: every link was a k-best hit or a rescan.
    let links = trace.counter("nls.links").expect("nls.links");
    let hits = trace.counter("nls.kbest_hits").unwrap_or(0);
    let rescans = trace.counter("nls.rescans").unwrap_or(0);
    assert_eq!(hits + rescans, links, "kbest hits + rescans must equal links");
    let candidates: u64 = report.rounds.iter().map(|r| r.candidates as u64).sum();
    assert_eq!(links, candidates, "links must equal Table II candidates");
    // The init pass did real work and the norm bound pruned something.
    assert!(trace.counter("nls.dist_evaluated").unwrap_or(0) > 0);
    assert!(trace.counter("nls.pruned_norm").unwrap_or(0) > 0);
}

/// The scan accounting partition: every candidate column of every scan
/// lands in exactly one of `dist_evaluated` / `pruned_norm` /
/// `masked_skipped` / `cells_skipped` / `quant_rejects`, so per round
///
/// ```text
/// evaluated + pruned + masked + cells_skipped + quant_rejects
///     == (init rows + rescans) × pool_rows
/// ```
///
/// — each init row and each rescan is one full sweep of the pool, and
/// nothing is counted twice or dropped. (`exact_rerank` and the
/// early-exit tally annotate `evaluated` candidates and sit outside the
/// partition.)
#[test]
fn per_round_scan_accounting_is_exhaustive() {
    let report = traced_report();
    let trace = &telemetry().trace;
    assert!(!report.rounds.is_empty());
    for r in &report.rounds {
        let c = |suffix: &str| {
            let name = format!("nls.round{:02}.{suffix}", r.round);
            trace.counter(&name).unwrap_or_else(|| panic!("missing {name}"))
        };
        let scanned = c("dist_evaluated")
            + c("pruned_norm")
            + c("masked_skipped")
            + c("cells_skipped")
            + c("quant_rejects");
        let sweeps = c("rows") + c("rescans");
        let pool_rows = c("pool_rows");
        assert_eq!(
            scanned,
            sweeps * pool_rows,
            "round {:02}: accounting leak (sweeps={sweeps} pool_rows={pool_rows})",
            r.round
        );
        // Each init pass sweeps one row per security patch — that's the
        // round's candidate count.
        assert_eq!(c("rows"), r.candidates as u64, "round {:02}: init row count", r.round);
        // The default build runs the quantized index: the fast paths
        // must actually fire (cells skipped and/or quantized rejects),
        // and every evaluated candidate there was an exact re-rank.
        assert!(
            c("cells_skipped") + c("quant_rejects") > 0,
            "round {:02}: index fast paths never fired",
            r.round
        );
        assert!(c("exact_rerank") <= c("dist_evaluated"), "round {:02}", r.round);
    }
}

#[test]
fn stage_counters_match_the_dataset() {
    let report = traced_report();
    let trace = &telemetry().trace;
    let stats = report.db.stats();
    assert_eq!(trace.counter("build.nvd_records"), Some(stats.nvd_security as u64));
    assert_eq!(trace.counter("build.wild_records"), Some(stats.wild_security as u64));
    assert_eq!(trace.counter("build.nonsecurity_records"), Some(stats.non_security as u64));
    assert_eq!(
        trace.counter("build.synthetic_records"),
        Some((stats.synthetic_security + stats.synthetic_non_security) as u64),
    );
    assert_eq!(trace.counter("build.wild_total"), Some(report.wild_total as u64));
    assert_eq!(
        trace.counter("augment.candidates"),
        Some(report.verification_effort as u64),
    );
}

/// The serialized document is what the `check-bench-json` validator
/// accepts: schema tag, nesting spans with non-negative durations,
/// unique counter names, histograms whose buckets sum to their count.
#[test]
fn trace_json_is_schema_valid() {
    let json = telemetry().to_json();
    let text = json.to_pretty_string();
    let parsed = Json::parse(&text).expect("trace JSON re-parses");
    assert_eq!(
        parsed.get("schema").and_then(Json::as_str),
        Some(BuildTelemetry::SCHEMA),
        "missing/wrong schema tag"
    );

    fn check_span(s: &Json) -> usize {
        assert!(s.get("name").and_then(Json::as_str).is_some(), "span lacks name");
        let ns = s.get("ns").and_then(Json::as_f64).expect("span lacks ns");
        assert!(ns >= 0.0, "negative span duration");
        let children = s.get("children").and_then(|c| c.as_arr()).expect("span lacks children");
        1 + children.iter().map(check_span).sum::<usize>()
    }
    let spans = parsed.get("spans").and_then(|s| s.as_arr()).expect("spans array");
    let total: usize = spans.iter().map(check_span).sum();
    assert!(total >= 6, "expected root + 5 stages, got {total} spans");

    let Some(Json::Obj(counters)) = parsed.get("counters") else {
        panic!("counters object missing")
    };
    let mut names: Vec<&str> = counters.iter().map(|(n, _)| n.as_str()).collect();
    let before = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), before, "duplicate counter names");
    for (name, v) in counters {
        let v = v.as_f64().expect("counter value numeric");
        assert!(v >= 0.0 && v.fract() == 0.0, "counter {name} = {v} not a non-negative integer");
    }

    let Some(Json::Obj(hists)) = parsed.get("histograms") else {
        panic!("histograms object missing")
    };
    for (name, h) in hists {
        let count = h.get("count").and_then(Json::as_f64).expect("hist count");
        let buckets = h.get("buckets").and_then(|b| b.as_arr()).expect("hist buckets");
        let sum: f64 = buckets.iter().map(|b| b.as_f64().expect("numeric bucket")).sum();
        assert_eq!(sum, count, "histogram {name}: buckets don't sum to count");
    }
}
