//! Cross-crate integration tests: the full PatchDB construction pipeline
//! at test scale, exercising every subsystem together.

use patchdb::{BuildOptions, PatchDb};

fn build() -> patchdb::BuildReport {
    PatchDb::build(&BuildOptions::tiny(28))
}

#[test]
fn full_pipeline_produces_every_component() {
    let report = build();
    let s = report.db.stats();
    assert!(s.nvd_security > 0);
    assert!(s.wild_security > 0);
    assert!(s.non_security > 0);
    assert!(s.synthetic_security > 0);
    assert!(s.synthetic_non_security > 0);
}

#[test]
fn every_natural_patch_round_trips_through_text() {
    let report = build();
    for record in report.db.security_patches().take(100) {
        let text = record.patch.to_unified_string();
        let back = patch_core::Patch::parse(&text).expect("natural patch parses");
        assert_eq!(back, record.patch);
    }
}

#[test]
fn every_natural_patch_is_c_only_and_valid() {
    let report = build();
    for record in report.db.security_patches() {
        assert!(record.patch.files.iter().all(|f| f.is_c_family()));
        assert!(record.patch.validate().is_ok(), "{}", record.commit);
    }
}

#[test]
fn nearest_link_beats_base_rate_end_to_end() {
    let report = build();
    let mean: f64 =
        report.rounds.iter().map(|r| r.ratio).sum::<f64>() / report.rounds.len().max(1) as f64;
    // tiny corpus has a 15% base security rate; NLS must beat it even at
    // this scale (pools are small enough that rounds partially exhaust
    // the clusters, so the margin is modest — the bench scale shows 3×).
    assert!(mean > 0.15, "mean NLS ratio {mean} not above the base rate");
}

#[test]
fn synthetic_patches_contain_variant_markers_and_parse() {
    let report = build();
    for s in report.db.synthetic.iter().take(50) {
        let text = s.patch.to_unified_string();
        assert!(text.contains("_SYS_"), "missing variant marker:\n{text}");
        assert!(patch_core::Patch::parse(&text).is_ok());
    }
}

#[test]
fn features_are_finite_everywhere() {
    let report = build();
    for r in report.db.security_patches().chain(report.db.non_security.iter()) {
        assert!(r.features.is_finite());
    }
    for s in &report.db.synthetic {
        assert!(s.features.is_finite());
    }
}

#[test]
fn dataset_json_round_trips() {
    let report = build();
    let json = report.db.to_json().expect("serializes");
    let back = PatchDb::from_json(&json).expect("deserializes");
    assert_eq!(back.stats(), report.db.stats());
    assert_eq!(back.nvd[0].commit, report.db.nvd[0].commit);
}

#[test]
fn taxonomy_agrees_with_ground_truth_majority() {
    let report = build();
    let mut hits = 0usize;
    let mut total = 0usize;
    for r in report.db.security_patches() {
        if let Some(t) = r.truth_category {
            total += 1;
            if patchdb::classify_patch(&r.patch) == t {
                hits += 1;
            }
        }
    }
    let acc = hits as f64 / total.max(1) as f64;
    assert!(acc > 0.7, "taxonomy accuracy {acc} over {total} patches");
}

#[test]
fn builds_are_deterministic_across_processes() {
    // Same options, fresh objects: byte-identical wild membership.
    let a = build();
    let b = build();
    assert_eq!(
        a.db.wild.iter().map(|r| r.commit).collect::<Vec<_>>(),
        b.db.wild.iter().map(|r| r.commit).collect::<Vec<_>>()
    );
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.verified_security, y.verified_security);
    }
}
