//! Bit-determinism of the whole pipeline: the same `BuildOptions` must
//! produce byte-identical datasets, statistics, round tables, and JSON
//! exports on every run — the property the hermetic `patchdb-rt` runtime
//! exists to guarantee (no external RNG or serializer to drift).

use patchdb::{BuildOptions, IndexMode, NlsConfig, PatchDb};

/// Two builds from the same seed agree on every headline statistic.
#[test]
fn repeated_builds_have_identical_stats() {
    let a = PatchDb::build(&BuildOptions::tiny(1234));
    let b = PatchDb::build(&BuildOptions::tiny(1234));
    assert_eq!(a.db.stats(), b.db.stats());
    assert_eq!(a.wild_total, b.wild_total);
    assert_eq!(a.verification_effort, b.verification_effort);
}

/// Two builds from the same seed produce the same Table II rounds,
/// including the floating-point ratios, bit for bit.
#[test]
fn repeated_builds_have_identical_rounds() {
    let a = PatchDb::build(&BuildOptions::tiny(1234));
    let b = PatchDb::build(&BuildOptions::tiny(1234));
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.pool, rb.pool);
        assert_eq!(ra.round, rb.round);
        assert_eq!(ra.search_range, rb.search_range);
        assert_eq!(ra.candidates, rb.candidates);
        assert_eq!(ra.verified_security, rb.verified_security);
        assert_eq!(ra.ratio.to_bits(), rb.ratio.to_bits());
    }
}

/// The JSON export is byte-identical across runs, and survives a
/// load → re-export round trip unchanged (canonical form).
#[test]
fn json_export_is_byte_identical_and_canonical() {
    let a = PatchDb::build(&BuildOptions::tiny(1234));
    let b = PatchDb::build(&BuildOptions::tiny(1234));
    let ja = a.db.to_json().expect("export a");
    let jb = b.db.to_json().expect("export b");
    assert_eq!(ja, jb, "two builds exported different JSON");

    let reloaded = PatchDb::from_json(&ja).expect("reload");
    let jc = reloaded.to_json().expect("re-export");
    assert_eq!(ja, jc, "load → export round trip changed bytes");
}

/// The thread count steers wall time only: builds under
/// `PATCHDB_THREADS=1` and `PATCHDB_THREADS=8` export byte-identical
/// JSON. (The env var is process-global, so this test serializes the two
/// builds itself rather than relying on test-runner ordering; the other
/// tests in this file are thread-count agnostic by the same property, so
/// a concurrently observed override is harmless.)
#[test]
fn thread_count_does_not_change_output() {
    let run_with = |threads: &str| {
        std::env::set_var("PATCHDB_THREADS", threads);
        let report = PatchDb::build(&BuildOptions::tiny(1234));
        std::env::remove_var("PATCHDB_THREADS");
        report
    };
    let single = run_with("1");
    let many = run_with("8");
    assert_eq!(
        single.db.to_json().expect("export single-threaded"),
        many.db.to_json().expect("export multi-threaded"),
        "thread count changed output bytes"
    );
    assert_eq!(single.verification_effort, many.verification_effort);
    assert_eq!(single.rounds.len(), many.rounds.len());
    for (ra, rb) in single.rounds.iter().zip(&many.rounds) {
        assert_eq!(ra.ratio.to_bits(), rb.ratio.to_bits());
    }
}

/// Tracing observes the build; it never steers it. A `PATCHDB_TRACE=1`
/// build (via the equivalent programmatic toggle — the env var is read
/// once per process, so flipping it here wouldn't take) and an untraced
/// build export byte-identical JSON, stats and rounds; only the
/// `telemetry` attachment differs. Tests in this binary run
/// concurrently, so a neighbor build may incidentally get traced while
/// the toggle is on — harmless by exactly the property this test pins.
#[test]
fn trace_toggle_does_not_change_output() {
    let off = PatchDb::build(&BuildOptions::tiny(1234));
    patchdb_rt::obs::set_enabled(true);
    let on = PatchDb::build(&BuildOptions::tiny(1234));
    patchdb_rt::obs::set_enabled(false);

    assert!(on.telemetry.is_some(), "traced build lost its telemetry");
    assert_eq!(
        off.db.to_json().expect("export untraced"),
        on.db.to_json().expect("export traced"),
        "tracing changed output bytes"
    );
    assert_eq!(off.db.stats(), on.db.stats());
    assert_eq!(off.wild_total, on.wild_total);
    assert_eq!(off.verification_effort, on.verification_effort);
    assert_eq!(off.rounds.len(), on.rounds.len());
    for (ra, rb) in off.rounds.iter().zip(&on.rounds) {
        assert_eq!(ra.pool, rb.pool);
        assert_eq!(ra.candidates, rb.candidates);
        assert_eq!(ra.verified_security, rb.verified_security);
        assert_eq!(ra.ratio.to_bits(), rb.ratio.to_bits());
    }
}

/// The NLS index modes steer wall time only: builds through the plain
/// scan, the partitioned index, and the quantized index export
/// byte-identical JSON and bit-identical round tables. This is the
/// pipeline-level face of the byte-identity contract the property suites
/// pin at the search level.
#[test]
fn index_mode_does_not_change_output() {
    let build_with = |mode: IndexMode| {
        PatchDb::build(&BuildOptions::tiny(1234).nls(NlsConfig::auto().index(mode)))
    };
    let scan = build_with(IndexMode::Scan);
    for mode in [IndexMode::Partitioned, IndexMode::Quantized] {
        let indexed = build_with(mode);
        assert_eq!(
            scan.db.to_json().expect("export scan"),
            indexed.db.to_json().expect("export indexed"),
            "{mode:?} changed output bytes"
        );
        assert_eq!(scan.verification_effort, indexed.verification_effort, "{mode:?}");
        assert_eq!(scan.rounds.len(), indexed.rounds.len(), "{mode:?}");
        for (ra, rb) in scan.rounds.iter().zip(&indexed.rounds) {
            assert_eq!(ra.search_range, rb.search_range, "{mode:?}");
            assert_eq!(ra.candidates, rb.candidates, "{mode:?}");
            assert_eq!(ra.verified_security, rb.verified_security, "{mode:?}");
            assert_eq!(ra.ratio.to_bits(), rb.ratio.to_bits(), "{mode:?}");
        }
    }
}

/// `IndexMode::Quantized` at `PATCHDB_THREADS=1` vs `8` produces
/// byte-identical stats, rounds and JSON — the deterministic k-means
/// seeding, the thread-invariant quantizer fit, and the order-preserving
/// parallel scans compose into a thread-invariant end-to-end build.
#[test]
fn quantized_index_is_thread_invariant() {
    let run_with = |threads: &str| {
        std::env::set_var("PATCHDB_THREADS", threads);
        let report = PatchDb::build(
            &BuildOptions::tiny(1234).nls(NlsConfig::auto().index(IndexMode::Quantized)),
        );
        std::env::remove_var("PATCHDB_THREADS");
        report
    };
    let single = run_with("1");
    let many = run_with("8");
    assert_eq!(single.db.stats(), many.db.stats());
    assert_eq!(
        single.db.to_json().expect("export single-threaded"),
        many.db.to_json().expect("export multi-threaded"),
        "thread count changed quantized-index output bytes"
    );
    assert_eq!(single.verification_effort, many.verification_effort);
    assert_eq!(single.rounds.len(), many.rounds.len());
    for (ra, rb) in single.rounds.iter().zip(&many.rounds) {
        assert_eq!(ra.ratio.to_bits(), rb.ratio.to_bits());
    }
}

/// Different seeds must actually change the dataset (the determinism
/// above is not just a constant function).
#[test]
fn different_seeds_differ() {
    let a = PatchDb::build(&BuildOptions::tiny(1234));
    let b = PatchDb::build(&BuildOptions::tiny(4321));
    assert_ne!(
        a.db.to_json().unwrap(),
        b.db.to_json().unwrap(),
        "seed is ignored by the pipeline"
    );
}
