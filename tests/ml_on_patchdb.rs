//! Integration of the ML substrates with the constructed dataset: the
//! Table VI / Table IV machinery must work end to end at test scale.

use patchdb::{BuildOptions, PatchDb, PatchRecord};
use patchdb_ml::{evaluate, Classifier, Dataset, RandomForest};
use patchdb_nn::{encode_patch, patch_token_texts, RnnClassifier, RnnConfig, Vocabulary};

fn build() -> patchdb::BuildReport {
    PatchDb::build(&BuildOptions::tiny(777))
}

fn feature_dataset(pos: &[&PatchRecord], neg: &[&PatchRecord]) -> Dataset {
    let rows: Vec<Vec<f64>> = pos
        .iter()
        .chain(neg.iter())
        .map(|r| r.features.as_slice().to_vec())
        .collect();
    let labels: Vec<bool> = std::iter::repeat(true)
        .take(pos.len())
        .chain(std::iter::repeat(false).take(neg.len()))
        .collect();
    Dataset::new(rows, labels).unwrap()
}

#[test]
fn random_forest_identifies_security_patches() {
    let report = build();
    let db = &report.db;
    let pos: Vec<&PatchRecord> = db.security_patches().collect();
    let neg: Vec<&PatchRecord> = db.non_security.iter().collect();
    let data = feature_dataset(&pos, &neg);
    let (train, test) = data.split(0.8, 5);

    let mut rf = RandomForest::new(24, 10, 3);
    rf.fit(&train);
    let m = evaluate(&rf, &test);
    // The cleaned negative set consists of NLS-selected hard negatives
    // (mostly shape twins), so anything clearly above chance demonstrates
    // learning; on these hard pairs precision matters most.
    assert!(m.accuracy() > 0.55, "accuracy {}", m.accuracy());
}

#[test]
fn rnn_learns_on_real_patch_tokens() {
    let report = build();
    let db = &report.db;
    let pos: Vec<&PatchRecord> = db.security_patches().collect();
    // Use easy negatives (features/docs churn) by filtering on message:
    // at test scale the RNN only gets a few epochs.
    let neg: Vec<&PatchRecord> = db.non_security.iter().collect();

    let streams: Vec<Vec<String>> = pos
        .iter()
        .chain(neg.iter())
        .map(|r| patch_token_texts(&r.patch))
        .collect();
    let refs: Vec<&[String]> = streams.iter().map(Vec::as_slice).collect();
    let vocab = Vocabulary::build(refs.iter().copied(), 2048);

    let pairs: Vec<_> = pos
        .iter()
        .map(|r| (encode_patch(&r.patch, &vocab), true))
        .chain(neg.iter().map(|r| (encode_patch(&r.patch, &vocab), false)))
        .collect();
    let (train, test): (Vec<_>, Vec<_>) =
        pairs.into_iter().enumerate().partition(|(i, _)| i % 5 != 0);

    let mut model = RnnClassifier::new(RnnConfig {
        vocab_size: vocab.size().max(64),
        embed_dim: 16,
        hidden_dim: 24,
        epochs: 3,
        lr: 8e-3,
        max_len: 120,
        seed: 4,
    });
    model.train(&train.into_iter().map(|(_, p)| p).collect::<Vec<_>>());

    let correct = test
        .iter()
        .filter(|(_, (seq, label))| model.predict(seq) == *label)
        .count();
    let acc = correct as f64 / test.len().max(1) as f64;
    assert!(acc > 0.55, "RNN accuracy {acc}");
}

#[test]
fn synthetic_data_is_usable_as_training_rows() {
    let report = build();
    let db = &report.db;
    // Mixed natural+synthetic feature training must not blow up and must
    // keep class signal.
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for r in db.security_patches() {
        rows.push(r.features.as_slice().to_vec());
        labels.push(true);
    }
    for r in &db.non_security {
        rows.push(r.features.as_slice().to_vec());
        labels.push(false);
    }
    for s in &db.synthetic {
        rows.push(s.features.as_slice().to_vec());
        labels.push(s.is_security);
    }
    let data = Dataset::new(rows, labels).unwrap();
    let (train, test) = data.split(0.8, 9);
    let mut rf = RandomForest::new(16, 8, 2);
    rf.fit(&train);
    let m = evaluate(&rf, &test);
    assert!(m.accuracy() > 0.55, "accuracy {}", m.accuracy());
}
