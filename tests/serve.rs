//! Loopback integration tests of `patchdb-serve`: endpoint round-trips,
//! 503 backpressure at a saturated admission queue, graceful-drain
//! shutdown, metrics monotonicity, and worker-count determinism.
//!
//! The tiny dataset is built exactly once, before any server starts:
//! `PatchDb::build` resets the global `rt::obs` registry when tracing is
//! enabled, and `Server::start` enables tracing — a build racing a live
//! server would wipe its counters mid-test.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use patchdb::prelude::*;
use patchdb_rt::json::Json;
use patchdb_serve::{client, ServeConfig, ServeIndex, Server};

fn shared_db() -> &'static PatchDb {
    static DB: OnceLock<PatchDb> = OnceLock::new();
    DB.get_or_init(|| PatchDb::build(&BuildOptions::tiny(17).synthesize(false)).db)
}

fn start(config: ServeConfig) -> Server {
    Server::start(ServeIndex::build(shared_db().clone()), &config).expect("server binds")
}

fn ephemeral() -> ServeConfig {
    ServeConfig::default().addr("127.0.0.1:0")
}

/// The body of a real record as an identify/classify request.
fn diff_body(record: &PatchRecord) -> String {
    format!("commit {}\n{}", record.commit, record.patch.to_unified_string())
}

#[test]
fn endpoints_round_trip_on_loopback() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();
    let db = shared_db();

    let health = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!((health.status, health.body_text().as_str()), (200, "ok\n"));

    let stats = client::request(addr, "GET", "/v1/stats", b"").unwrap();
    assert_eq!(stats.status, 200);
    let stats_json = Json::parse(&stats.body_text()).expect("stats is JSON");
    assert_eq!(
        stats_json.get("nvd_security").and_then(Json::as_f64),
        Some(db.stats().nvd_security as f64)
    );

    let record = db.nvd.first().expect("tiny build has NVD records");
    let body = diff_body(record);

    let identify = client::request(addr, "POST", "/v1/identify", body.as_bytes()).unwrap();
    assert_eq!(identify.status, 200, "{}", identify.body_text());
    let identify_json = Json::parse(&identify.body_text()).unwrap();
    let score = identify_json.get("score").and_then(Json::as_f64).expect("score field");
    assert!((0.0..=1.0).contains(&score));
    assert_eq!(
        identify_json.get("security").and_then(Json::as_bool),
        Some(score >= 0.5)
    );

    let classify = client::request(addr, "POST", "/v1/classify", body.as_bytes()).unwrap();
    assert_eq!(classify.status, 200);
    let classify_json = Json::parse(&classify.body_text()).unwrap();
    assert!(classify_json.get("type_id").and_then(Json::as_f64).is_some());
    assert!(classify_json.get("label").and_then(Json::as_str).is_some());

    let scan =
        client::request(addr, "POST", "/v1/scan", b"void unrelated(void) { }\n").unwrap();
    assert_eq!(scan.status, 200);
    let scan_json = Json::parse(&scan.body_text()).unwrap();
    assert!(scan_json.get("matches").is_some());

    let hex = record.commit.to_string();
    let patch = client::request(addr, "GET", &format!("/v1/patch/{}", &hex[..12]), b"").unwrap();
    assert_eq!(patch.status, 200);
    let patch_json = Json::parse(&patch.body_text()).unwrap();
    assert_eq!(patch_json.get("commit").and_then(Json::as_str), Some(hex.as_str()));

    // Error paths: unknown route, wrong method, unparseable body.
    assert_eq!(client::request(addr, "GET", "/v1/nope", b"").unwrap().status, 404);
    assert_eq!(client::request(addr, "GET", "/v1/identify", b"").unwrap().status, 405);
    assert_eq!(
        client::request(addr, "POST", "/v1/identify", b"not a diff").unwrap().status,
        400
    );

    server.shutdown();
}

/// A connection that has been accepted but sends no bytes: it pins
/// whatever stage of the server is reading from it.
fn stall(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));
    stream
}

#[test]
fn saturated_admission_queue_sheds_with_503() {
    let server = start(ephemeral().threads(1).max_inflight(1).deadline_ms(30_000));
    let addr = server.addr();

    // One stalled connection occupies the single worker; a second fills
    // the single admission slot. Everything past that must be shed.
    let worker_hog = stall(addr);
    let queue_hog = stall(addr);

    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = Vec::new();
    shed.read_to_end(&mut raw).expect("read the shed response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503"), "expected 503, got: {text}");
    assert!(text.contains("Retry-After:"), "503 lacks Retry-After: {text}");

    drop(worker_hog);
    drop(queue_hog);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let server = start(ephemeral().threads(1).max_inflight(4).deadline_ms(30_000));
    let addr = server.addr();

    // `held` is in the worker (reading, no bytes yet); `queued` has a
    // complete request already admitted behind it.
    let mut held = stall(addr);
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // Complete the held request after shutdown began: it was admitted,
    // so it must still be answered, and so must the queued one.
    held.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    for (name, mut stream) in [("held", held), ("queued", queued)] {
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 200") && text.ends_with("ok\n"),
            "{name} was not drained: {text}"
        );
    }
    shutdown.join().expect("shutdown thread");
}

#[test]
fn metrics_accumulate_monotonically() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();

    let accepted = |body: &str| {
        body.lines()
            .find_map(|l| l.strip_prefix("patchdb_counter{name=\"serve.accepted\"} "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("serve.accepted counter in /metrics")
    };
    let before_body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let before = accepted(&before_body);
    for _ in 0..5 {
        assert_eq!(client::request(addr, "GET", "/healthz", b"").unwrap().status, 200);
    }
    let after_body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let after = accepted(&after_body);
    // The registry is process-global, so concurrent tests may add more —
    // but counters never go down, and our five requests are in there.
    assert!(after >= before + 5, "accepted went {before} -> {after}");
    assert!(
        after_body.contains("patchdb_hist_p99{name=\"serve.healthz.ns\"}"),
        "healthz latency histogram missing:\n{after_body}"
    );
    server.shutdown();
}

#[test]
fn responses_identical_at_1_and_8_workers() {
    let one = start(ephemeral().threads(1));
    let eight = start(ephemeral().threads(8));
    let db = shared_db();

    let mut requests: Vec<(&str, String, Vec<u8>)> =
        vec![("GET", "/v1/stats".into(), Vec::new())];
    for record in db.records().take(12) {
        requests.push(("POST", "/v1/identify".into(), diff_body(record).into_bytes()));
        requests.push(("POST", "/v1/classify".into(), diff_body(record).into_bytes()));
        requests.push((
            "GET",
            format!("/v1/patch/{}", record.commit),
            Vec::new(),
        ));
    }
    for (method, path, body) in &requests {
        let a = client::request(one.addr(), method, path, body).unwrap();
        let b = client::request(eight.addr(), method, path, body).unwrap();
        assert_eq!(a.status, b.status, "{method} {path}");
        assert_eq!(
            a.body_text(),
            b.body_text(),
            "{method} {path} differs across worker counts"
        );
    }
    one.shutdown();
    eight.shutdown();
}
