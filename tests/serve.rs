//! Loopback integration tests of `patchdb-serve`: endpoint round-trips,
//! 503 backpressure at the connection cap, keep-alive reuse and its
//! caps (idle timeout, per-connection request limit), pipelined
//! ordering, adversarial wire framing (trickle, oversized headers,
//! half-close, mid-pipeline hangup), a 10k-idle-connection soak,
//! graceful-drain shutdown, metrics monotonicity, request-scoped
//! telemetry (stage clocks, debug rings, access log), failure-mode
//! classification, worker-count/transport-mode determinism, and the
//! tracing surface (X-Patchdb id headers, /debug/trace lookup,
//! per-shard attribution, the time-series store, and the SLO engine).
//!
//! The tiny dataset is built exactly once, before any server starts:
//! `PatchDb::build` resets the global `rt::obs` registry when tracing is
//! enabled, and `Server::start` enables tracing — a build racing a live
//! server would wipe its counters mid-test.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use patchdb::prelude::*;
use patchdb_rt::json::Json;
use patchdb_serve::client::{self, Client};
use patchdb_serve::{ReloadSource, ServeConfig, ServeIndex, Server, ShardedIndex};

fn shared_db() -> &'static PatchDb {
    static DB: OnceLock<PatchDb> = OnceLock::new();
    DB.get_or_init(|| PatchDb::build(&BuildOptions::tiny(17).synthesize(false)).db)
}

fn start(config: ServeConfig) -> Server {
    Server::start(ServeIndex::build(shared_db().clone()), &config).expect("server binds")
}

fn ephemeral() -> ServeConfig {
    ServeConfig::default().addr("127.0.0.1:0")
}

/// The body of a real record as an identify/classify request.
fn diff_body(record: &PatchRecord) -> String {
    format!("commit {}\n{}", record.commit, record.patch.to_unified_string())
}

#[test]
fn endpoints_round_trip_on_loopback() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();
    let db = shared_db();

    let health = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.body_text().starts_with("ok gen=1 up="),
        "healthz body: {}",
        health.body_text()
    );

    let stats = client::request(addr, "GET", "/v1/stats", b"").unwrap();
    assert_eq!(stats.status, 200);
    let stats_json = Json::parse(&stats.body_text()).expect("stats is JSON");
    assert_eq!(
        stats_json.get("nvd_security").and_then(Json::as_f64),
        Some(db.stats().nvd_security as f64)
    );

    let record = db.nvd.first().expect("tiny build has NVD records");
    let body = diff_body(record);

    let identify = client::request(addr, "POST", "/v1/identify", body.as_bytes()).unwrap();
    assert_eq!(identify.status, 200, "{}", identify.body_text());
    let identify_json = Json::parse(&identify.body_text()).unwrap();
    let score = identify_json.get("score").and_then(Json::as_f64).expect("score field");
    assert!((0.0..=1.0).contains(&score));
    assert_eq!(
        identify_json.get("security").and_then(Json::as_bool),
        Some(score >= 0.5)
    );

    let classify = client::request(addr, "POST", "/v1/classify", body.as_bytes()).unwrap();
    assert_eq!(classify.status, 200);
    let classify_json = Json::parse(&classify.body_text()).unwrap();
    assert!(classify_json.get("type_id").and_then(Json::as_f64).is_some());
    assert!(classify_json.get("label").and_then(Json::as_str).is_some());

    let scan =
        client::request(addr, "POST", "/v1/scan", b"void unrelated(void) { }\n").unwrap();
    assert_eq!(scan.status, 200);
    let scan_json = Json::parse(&scan.body_text()).unwrap();
    assert!(scan_json.get("matches").is_some());

    let hex = record.commit.to_string();
    let patch = client::request(addr, "GET", &format!("/v1/patch/{}", &hex[..12]), b"").unwrap();
    assert_eq!(patch.status, 200);
    let patch_json = Json::parse(&patch.body_text()).unwrap();
    assert_eq!(patch_json.get("commit").and_then(Json::as_str), Some(hex.as_str()));

    // Error paths: unknown route, wrong method, unparseable body.
    assert_eq!(client::request(addr, "GET", "/v1/nope", b"").unwrap().status, 404);
    assert_eq!(client::request(addr, "GET", "/v1/identify", b"").unwrap().status, 405);
    assert_eq!(
        client::request(addr, "POST", "/v1/identify", b"not a diff").unwrap().status,
        400
    );

    server.shutdown();
}

/// A connection that has been accepted but sends no bytes. With the
/// event loop a silent connection costs no worker — it just occupies a
/// connection slot.
fn stall(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    std::thread::sleep(Duration::from_millis(100));
    stream
}

#[test]
fn connection_cap_sheds_with_503() {
    let server = start(ephemeral().threads(1).max_conns(2).deadline_ms(30_000));
    let addr = server.addr();

    // Two idle connections fill the cap; the third is answered 503 at
    // accept — without the server reading a single request byte.
    let hog_a = stall(addr);
    let hog_b = stall(addr);

    let mut shed = TcpStream::connect(addr).unwrap();
    shed.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = Vec::new();
    shed.read_to_end(&mut raw).expect("read the shed response");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 503"), "expected 503, got: {text}");
    assert!(text.contains("Retry-After:"), "503 lacks Retry-After: {text}");
    assert!(text.contains("Connection: close"), "shed must close: {text}");

    // Freeing a slot restores service on a fresh connection (give the
    // loop a beat to collect the EOF before reconnecting).
    drop(hog_a);
    std::thread::sleep(Duration::from_millis(200));
    let health = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);

    drop(hog_b);
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_admitted_work() {
    let server = start(ephemeral().threads(1).max_inflight(4).deadline_ms(30_000));
    let addr = server.addr();

    // `held` is in the worker (reading, no bytes yet); `queued` has a
    // complete request already admitted behind it.
    let mut held = stall(addr);
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // Complete the held request after shutdown began: it was admitted,
    // so it must still be answered, and so must the queued one.
    held.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    for (name, mut stream) in [("held", held), ("queued", queued)] {
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = String::from_utf8_lossy(&raw);
        assert!(
            text.starts_with("HTTP/1.1 200") && text.contains("ok gen=1 up="),
            "{name} was not drained: {text}"
        );
    }
    shutdown.join().expect("shutdown thread");
}

#[test]
fn metrics_accumulate_monotonically() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();

    let accepted = |body: &str| {
        body.lines()
            .find_map(|l| l.strip_prefix("patchdb_counter{name=\"serve.accepted\"} "))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("serve.accepted counter in /metrics")
    };
    let before_body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let before = accepted(&before_body);
    for _ in 0..5 {
        assert_eq!(client::request(addr, "GET", "/healthz", b"").unwrap().status, 200);
    }
    let after_body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let after = accepted(&after_body);
    // The registry is process-global, so concurrent tests may add more —
    // but counters never go down, and our five requests are in there.
    assert!(after >= before + 5, "accepted went {before} -> {after}");
    assert!(
        after_body.contains("patchdb_hist_p99{name=\"serve.healthz.ns\"}"),
        "healthz latency histogram missing:\n{after_body}"
    );
    server.shutdown();
}

/// Reads one `patchdb_counter` value off a `/metrics` scrape; a counter
/// that has never been touched is 0.
fn counter_in(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("patchdb_counter{{name=\"{name}\"}} ")))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Polls `/metrics` until `name` reaches at least `want` (the registry
/// is updated by worker threads we cannot join from here).
fn await_counter(addr: std::net::SocketAddr, name: &str, want: u64) -> u64 {
    let mut last = 0;
    for _ in 0..100 {
        let body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
        last = counter_in(&body, name);
        if last >= want {
            return last;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    last
}

#[test]
fn deadline_and_disconnect_classify_separately() {
    // Short deadline so a stalled reader trips it quickly; the registry
    // is process-global, so assert on deltas, not absolutes.
    let server = start(ephemeral().threads(2).deadline_ms(300));
    let addr = server.addr();
    let before_body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let before_deadline = counter_in(&before_body, "serve.deadline_expired");
    let before_read = counter_in(&before_body, "serve.read_failed");

    // Slow loris: a partial request line, then silence. The read
    // deadline fires and the server hangs up without a response.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"GET /heal").unwrap();
    loris.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut raw = Vec::new();
    loris.read_to_end(&mut raw).expect("server closes the lorised socket");
    assert!(raw.is_empty(), "a deadline-expired read got a response: {raw:?}");

    // Disconnector: a partial request, then a clean hangup mid-header.
    let mut gone = TcpStream::connect(addr).unwrap();
    gone.write_all(b"POST /v1/identify HTTP/1.1\r\nContent-Le").unwrap();
    drop(gone);

    let deadline = await_counter(addr, "serve.deadline_expired", before_deadline + 1);
    let read = await_counter(addr, "serve.read_failed", before_read + 1);
    assert!(
        deadline >= before_deadline + 1,
        "deadline_expired stuck at {deadline} (started {before_deadline})"
    );
    assert!(
        read >= before_read + 1,
        "read_failed stuck at {read} (started {before_read})"
    );
    server.shutdown();
}

#[test]
fn metrics_report_windows_and_gauges_under_load() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();
    for _ in 0..8 {
        assert_eq!(client::request(addr, "GET", "/healthz", b"").unwrap().status, 200);
    }
    let body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();

    // Windowed quantiles over the trailing 60 s cover the burst we just
    // sent (the registry is global, so counts only grow).
    let count_60 = body
        .lines()
        .find_map(|l| {
            l.strip_prefix(
                "patchdb_window_count{name=\"serve.request.total_ns\",window_s=\"60\"} ",
            )
        })
        .and_then(|v| v.parse::<u64>().ok())
        .expect("windowed request count in /metrics");
    assert!(count_60 >= 8, "60s window count {count_60} misses the burst");
    for line in [
        "patchdb_window_p50{name=\"serve.request.total_ns\",window_s=\"60\"}",
        "patchdb_window_p99{name=\"serve.request.total_ns\",window_s=\"60\"}",
        "patchdb_window_rate{name=\"serve.request.total_ns\",window_s=\"1\"}",
        "patchdb_window_p99{name=\"serve.healthz.total_ns\",window_s=\"10\"}",
    ] {
        assert!(body.lines().any(|l| l.starts_with(line)), "missing {line}:\n{body}");
    }

    // The scrape itself is in flight while the snapshot is taken, so the
    // live gauge must show at least this one request.
    let inflight = body
        .lines()
        .find_map(|l| l.strip_prefix("patchdb_gauge{name=\"serve.inflight\"} "))
        .and_then(|v| v.parse::<i64>().ok())
        .expect("serve.inflight gauge in /metrics");
    assert!(inflight >= 1, "scrape saw inflight {inflight}");
    assert!(
        body.lines().any(|l| l.starts_with("patchdb_gauge{name=\"serve.queue_depth\"} ")),
        "queue_depth gauge missing:\n{body}"
    );
    // The scrape's own connection is open while the snapshot is taken.
    let open_conns = body
        .lines()
        .find_map(|l| l.strip_prefix("patchdb_gauge{name=\"serve.open_conns\"} "))
        .and_then(|v| v.parse::<i64>().ok())
        .expect("serve.open_conns gauge in /metrics");
    assert!(open_conns >= 1, "scrape saw open_conns {open_conns}");
    server.shutdown();
}

#[test]
fn debug_requests_expose_ids_and_stages() {
    // slow_ms(0) makes every request a slow exemplar, so /debug/slow has
    // content without needing an artificially slow endpoint. One worker
    // keeps ring order identical to admission order.
    let server = start(ephemeral().threads(1).slow_ms(0).debug_ring(64));
    let addr = server.addr();
    let record = shared_db().nvd.first().expect("tiny build has NVD records");
    for _ in 0..3 {
        assert_eq!(client::request(addr, "GET", "/healthz", b"").unwrap().status, 200);
    }
    let body = diff_body(record);
    assert_eq!(
        client::request(addr, "POST", "/v1/identify", body.as_bytes()).unwrap().status,
        200
    );

    let debug = client::request(addr, "GET", "/debug/requests", b"").unwrap();
    assert_eq!(debug.status, 200);
    let json = Json::parse(&debug.body_text()).expect("/debug/requests is JSON");
    let requests = json.get("requests").and_then(Json::as_arr).expect("requests array");
    assert_eq!(requests.len(), 4, "{}", debug.body_text());
    assert_eq!(json.get("dropped").and_then(Json::as_f64), Some(0.0));

    let mut last_id = 0.0;
    for request in requests {
        let id = request.get("id").and_then(Json::as_f64).expect("request id");
        assert!(id > last_id, "ids not strictly increasing: {id} after {last_id}");
        last_id = id;
        let total = request.get("total_ns").and_then(Json::as_f64).expect("total_ns");
        let mut stage_sum = 0.0;
        for stage in
            ["accept_ns", "queue_ns", "parse_ns", "batch_ns", "compute_ns", "write_ns"]
        {
            let v = request.get(stage).and_then(Json::as_f64);
            stage_sum += v.unwrap_or_else(|| panic!("missing stage {stage}"));
        }
        assert!(
            stage_sum <= total,
            "stages sum to {stage_sum} > total {total}"
        );
        assert_eq!(request.get("status").and_then(Json::as_f64), Some(200.0));
    }
    // The identify request banked real batcher wait.
    let identify = requests.last().unwrap();
    assert_eq!(identify.get("endpoint").and_then(Json::as_str), Some("identify"));
    assert!(identify.get("batch_ns").and_then(Json::as_f64).unwrap() > 0.0);

    // `?n=` caps the returned tail; the ring itself is untouched.
    let tail = client::request(addr, "GET", "/debug/requests?n=2", b"").unwrap();
    let tail_json = Json::parse(&tail.body_text()).unwrap();
    assert_eq!(tail_json.get("requests").and_then(Json::as_arr).unwrap().len(), 2);

    // Every request beat the 0 ms threshold, so /debug/slow saw them too.
    let slow = client::request(addr, "GET", "/debug/slow", b"").unwrap();
    assert_eq!(slow.status, 200);
    let slow_json = Json::parse(&slow.body_text()).unwrap();
    assert!(!slow_json.get("requests").and_then(Json::as_arr).unwrap().is_empty());

    assert_eq!(client::request(addr, "POST", "/debug/requests", b"").unwrap().status, 405);
    assert_eq!(client::request(addr, "POST", "/debug/slow", b"").unwrap().status, 405);
    server.shutdown();
}

#[test]
fn responses_identical_at_1_and_8_workers() {
    let one = start(ephemeral().threads(1));
    let eight = start(ephemeral().threads(8));
    // A third server with the full telemetry surface switched on: the
    // access log and exemplar capture must never change response bytes.
    let log_path = std::env::temp_dir()
        .join(format!("patchdb_access_{}.jsonl", std::process::id()));
    let logged = start(
        ephemeral()
            .threads(8)
            .slow_ms(0)
            .access_log(log_path.display().to_string()),
    );
    let db = shared_db();

    let mut requests: Vec<(&str, String, Vec<u8>)> =
        vec![("GET", "/v1/stats".into(), Vec::new())];
    for record in db.records().take(12) {
        requests.push(("POST", "/v1/identify".into(), diff_body(record).into_bytes()));
        requests.push(("POST", "/v1/classify".into(), diff_body(record).into_bytes()));
        requests.push((
            "GET",
            format!("/v1/patch/{}", record.commit),
            Vec::new(),
        ));
    }
    // Transport must not change bytes either: drive every server over
    // (1) one-shot `Connection: close` requests, (2) a persistent
    // keep-alive connection, then (3) one fully pipelined batch.
    let timeout = Duration::from_secs(30);
    let mut ka_one = Client::connect(one.addr(), timeout).unwrap();
    let mut ka_eight = Client::connect(eight.addr(), timeout).unwrap();
    let mut ka_logged = Client::connect(logged.addr(), timeout).unwrap();
    let mut close_replies = Vec::new();
    for (method, path, body) in &requests {
        let a = client::request(one.addr(), method, path, body).unwrap();
        let b = client::request(eight.addr(), method, path, body).unwrap();
        let c = client::request(logged.addr(), method, path, body).unwrap();
        assert_eq!(a.status, b.status, "{method} {path}");
        assert_eq!(
            a.body_text(),
            b.body_text(),
            "{method} {path} differs across worker counts"
        );
        assert_eq!((a.status, a.body_text()), (c.status, c.body_text()),
            "{method} {path} differs with the access log enabled");
        for (name, ka) in
            [("one", &mut ka_one), ("eight", &mut ka_eight), ("logged", &mut ka_logged)]
        {
            let k = ka.send(method, path, body).unwrap();
            assert_eq!(
                (k.status, &k.body),
                (a.status, &a.body),
                "{method} {path} differs on keep-alive ({name})"
            );
        }
        close_replies.push(a);
    }
    let batch: Vec<(&str, &str, &[u8])> =
        requests.iter().map(|(m, p, b)| (*m, p.as_str(), b.as_slice())).collect();
    for (name, server) in [("one", &one), ("eight", &eight), ("logged", &logged)] {
        let mut pipe = Client::connect(server.addr(), timeout).unwrap();
        let replies = pipe.pipeline(&batch).unwrap();
        assert_eq!(replies.len(), close_replies.len(), "pipeline reply count ({name})");
        for ((reply, expect), (method, path, _)) in
            replies.iter().zip(&close_replies).zip(&requests)
        {
            assert_eq!(
                (reply.status, &reply.body),
                (expect.status, &expect.body),
                "{method} {path} differs when pipelined ({name})"
            );
        }
    }

    // The debug endpoints carry wall-clock timings, so bytes differ by
    // construction; what must be worker-count independent is what was
    // served: the multiset of (method, path, status) triples.
    let projection = |server: &Server| -> Vec<(String, String, f64)> {
        let reply =
            client::request(server.addr(), "GET", "/debug/requests?n=999", b"").unwrap();
        assert_eq!(reply.status, 200);
        let json = Json::parse(&reply.body_text()).unwrap();
        let mut triples: Vec<(String, String, f64)> = json
            .get("requests")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| {
                (
                    r.get("method").and_then(Json::as_str).unwrap().to_owned(),
                    r.get("path").and_then(Json::as_str).unwrap().to_owned(),
                    r.get("status").and_then(Json::as_f64).unwrap(),
                )
            })
            .collect();
        triples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        triples
    };
    // One projection per server: a second scrape would see the first
    // debug request itself in the ring.
    let (p_one, p_eight, p_logged) =
        (projection(&one), projection(&eight), projection(&logged));
    assert_eq!(p_one, p_eight, "served work differs across workers");
    assert_eq!(p_one, p_logged, "served work differs when logged");
    for server in [&one, &eight, &logged] {
        assert_eq!(
            client::request(server.addr(), "GET", "/debug/slow", b"").unwrap().status,
            200
        );
    }

    one.shutdown();
    eight.shutdown();
    logged.shutdown(); // joins the workers: every access-log line is flushed

    // The log saw every request: the driven list once per transport
    // mode plus our two debug reads, each line JSON with the id and
    // stage fields, timestamps non-decreasing in file order.
    let log = std::fs::read_to_string(&log_path).expect("access log written");
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 3 * requests.len() + 2, "access log line count");
    let mut last_ts = 0.0;
    let mut ids = std::collections::BTreeSet::new();
    for line in &lines {
        let json = Json::parse(line).expect("access-log line is JSON");
        let ts = json.get("ts_ms").and_then(Json::as_f64).expect("ts_ms");
        assert!(ts >= last_ts, "timestamps regressed: {ts} after {last_ts}");
        last_ts = ts;
        assert!(
            ids.insert(json.get("id").and_then(Json::as_f64).unwrap() as u64),
            "duplicate request id in access log"
        );
        assert!(json.get("compute_ns").and_then(Json::as_f64).is_some());
    }
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn keep_alive_reuses_one_connection_and_honors_the_request_cap() {
    let server = start(ephemeral().threads(2).max_requests_per_conn(3));
    let addr = server.addr();

    let mut ka = Client::connect(addr, Duration::from_secs(10)).unwrap();
    for _ in 0..3 {
        let reply = ka.send("GET", "/healthz", b"").unwrap();
        assert_eq!(reply.status, 200);
        assert!(reply.body_text().starts_with("ok gen=1 up="), "{}", reply.body_text());
    }
    // The third response carried `Connection: close` and the server hung
    // up; a fourth exchange on the same socket must fail.
    let refused = ka.send("GET", "/healthz", b"");
    assert!(refused.is_err(), "request over the per-conn cap got: {refused:?}");

    // An uncapped server keeps answering on one socket indefinitely.
    let open = start(ephemeral().threads(2));
    let mut ka = Client::connect(open.addr(), Duration::from_secs(10)).unwrap();
    for i in 0..32 {
        let reply = ka.send("GET", "/healthz", b"").unwrap();
        assert_eq!(reply.status, 200, "keep-alive request #{i}");
    }
    drop(ka);
    open.shutdown();
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_time_out() {
    let server = start(ephemeral().threads(1).idle_timeout_ms(200));
    let addr = server.addr();
    let before_body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let before = counter_in(&before_body, "serve.idle_closed");

    let mut ka = Client::connect(addr, Duration::from_secs(10)).unwrap();
    assert_eq!(ka.send("GET", "/healthz", b"").unwrap().status, 200);
    // Sit idle for several timeout periods (plus wheel-tick slack): the
    // server reaps the connection and the next exchange fails.
    std::thread::sleep(Duration::from_millis(800));
    let reaped = ka.send("GET", "/healthz", b"");
    assert!(reaped.is_err(), "idle-timed-out connection got: {reaped:?}");

    let after = await_counter(addr, "serve.idle_closed", before + 1);
    assert!(after >= before + 1, "idle_closed stuck at {after} (started {before})");
    server.shutdown();
}

#[test]
fn pipelined_responses_arrive_in_request_order() {
    let server = start(ephemeral().threads(8));
    let addr = server.addr();
    let record = shared_db().nvd.first().expect("tiny build has NVD records");
    let body = diff_body(record).into_bytes();
    let hex = record.commit.to_string();
    let patch_path = format!("/v1/patch/{}", &hex[..12]);
    let batch: Vec<(&str, &str, &[u8])> = vec![
        ("GET", "/healthz", b""),
        ("GET", "/v1/stats", b""),
        ("GET", "/v1/nope", b""),
        ("POST", "/v1/classify", &body),
        ("GET", patch_path.as_str(), b""),
        ("GET", "/healthz", b""),
    ];

    // Ground truth one request at a time, then the whole batch written
    // before any response is read: same bytes, same order.
    let expected: Vec<_> = batch
        .iter()
        .map(|(m, p, b)| client::request(addr, m, p, b).unwrap())
        .collect();
    assert_eq!(expected[2].status, 404, "probe batch lost its 404");
    let mut pipe = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let got = pipe.pipeline(&batch).unwrap();
    assert_eq!(got.len(), expected.len());
    for (i, (reply, expect)) in got.iter().zip(&expected).enumerate() {
        let (method, path, _) = batch[i];
        assert_eq!(
            (reply.status, &reply.body),
            (expect.status, &expect.body),
            "pipelined reply #{i} ({method} {path}) out of order or altered"
        );
    }
    drop(pipe);
    server.shutdown();
}

#[test]
fn half_closed_pipeline_still_gets_all_responses() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();

    // Three pipelined requests, then FIN on the write side: the server
    // must answer all three before closing its end.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    for _ in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("responses after half-close");
    let text = String::from_utf8_lossy(&raw);
    assert_eq!(
        text.matches("HTTP/1.1 200 OK").count(),
        3,
        "half-closed pipeline answered: {text}"
    );
    assert_eq!(text.matches("ok gen=1 up=").count(), 3, "{text}");
    server.shutdown();
}

#[test]
fn oversized_header_flood_answers_431() {
    let server = start(ephemeral().threads(1));
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Fill the header budget exactly (no terminator), let the server
    // drain it, then push it over the line. Two phases keep the server's
    // receive queue empty at close time, so the 431 is not lost to RST.
    let flood = vec![b'A'; 16 * 1024];
    stream.write_all(&flood).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    stream.write_all(b"AAAA").unwrap();

    let mut raw = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&chunk[..n]),
            Err(_) => break, // RST after the response bytes is acceptable
        }
    }
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 431"), "expected 431, got: {text}");
    assert!(text.contains("Connection: close"), "431 must close: {text}");
    server.shutdown();
}

#[test]
fn trickled_request_bytes_still_complete() {
    let server = start(ephemeral().threads(1));
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.set_nodelay(true).unwrap();
    // One byte per segment: the incremental parser reassembles without
    // a worker ever seeing the partial request.
    for byte in b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n" {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("trickled request answered");
    let text = String::from_utf8_lossy(&raw);
    assert!(text.starts_with("HTTP/1.1 200"), "trickle got: {text}");
    assert!(text.contains("ok gen=1 up="), "trickle body: {text}");
    server.shutdown();
}

#[test]
fn mid_pipeline_hangup_leaves_the_server_healthy() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();

    // Two pipelined requests, then an immediate hangup without reading a
    // byte. The server must absorb the dead connection without leaking
    // its in-flight work.
    let mut rude = TcpStream::connect(addr).unwrap();
    rude.write_all(
        b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\nGET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n",
    )
    .unwrap();
    drop(rude);
    std::thread::sleep(Duration::from_millis(200));

    let health = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_text().starts_with("ok gen=1 up="), "{}", health.body_text());
    server.shutdown();
}

/// Resident-set size of this process in kilobytes.
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                l.strip_prefix("VmRSS:")
                    .and_then(|v| v.trim().trim_end_matches(" kB").trim().parse().ok())
            })
        })
        .unwrap_or(0)
}

/// Polls `/metrics` until the `serve.open_conns` gauge drops to at most
/// `want`.
fn await_open_conns_at_most(addr: std::net::SocketAddr, want: i64) -> i64 {
    let mut last = i64::MAX;
    for _ in 0..200 {
        let body = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
        last = body
            .lines()
            .find_map(|l| l.strip_prefix("patchdb_gauge{name=\"serve.open_conns\"} "))
            .and_then(|v| v.parse().ok())
            .unwrap_or(i64::MAX);
        if last <= want {
            return last;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    last
}

#[test]
fn ten_thousand_idle_connections_stay_responsive() {
    let server = start(
        ephemeral().threads(1).max_conns(10_240).idle_timeout_ms(120_000),
    );
    let addr = server.addr();
    let rss_before = vm_rss_kb();

    // The held client-side sockets live in a child process so their file
    // descriptors count against the child's RLIMIT_NOFILE, not ours
    // (this process already holds the 10k server-side ends).
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_patchdb-idle-conns"))
        .arg(addr.to_string())
        .arg("10000")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::inherit())
        .spawn()
        .expect("spawn the connection holder");
    let mut holder_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    holder_out.read_line(&mut line).expect("holder reports");
    assert_eq!(line.trim(), "HELD 10000", "holder failed: {line}");

    // With 10k idle connections held open, the server must still answer
    // promptly and account for every one of them.
    let t0 = Instant::now();
    let health =
        client::request_timeout(addr, "GET", "/healthz", b"", Duration::from_secs(10))
            .expect("/healthz under 10k idle conns");
    assert_eq!(health.status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "/healthz took {:?} under idle load",
        t0.elapsed()
    );
    let metrics =
        client::request_timeout(addr, "GET", "/metrics", b"", Duration::from_secs(10))
            .expect("/metrics under 10k idle conns")
            .body_text();
    let open = metrics
        .lines()
        .find_map(|l| l.strip_prefix("patchdb_gauge{name=\"serve.open_conns\"} "))
        .and_then(|v| v.parse::<i64>().ok())
        .expect("open_conns gauge");
    assert!(open >= 10_000, "open_conns reported {open} with 10k held");

    // Per-connection state is a parser buffer and some bookkeeping —
    // 10k idle connections must not cost hundreds of megabytes.
    let rss_after = vm_rss_kb();
    let delta_kb = rss_after.saturating_sub(rss_before);
    assert!(
        delta_kb < 256 * 1024,
        "10k idle conns grew RSS by {delta_kb} kB ({rss_before} -> {rss_after})"
    );

    // Closing the child's stdin releases all 10k at once; the loop reaps
    // them before shutdown so the drain has nothing to wait for.
    drop(child.stdin.take());
    child.wait().expect("holder exits");
    let open = await_open_conns_at_most(addr, 8);
    assert!(open <= 8, "connections not reaped after holder exit: {open}");
    server.shutdown();
}

/// One raw `Connection: close` exchange split into status line, lowered
/// header pairs, and body bytes. The `client` helper frames responses by
/// `Content-Length`, which a HEAD reply (full `Content-Length`, empty
/// body) would desync — so HEAD tests read the raw close-mode stream.
fn raw_close(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
) -> (String, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read close-mode response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status = lines.next().expect("status line").to_string();
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(": ").unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.to_ascii_lowercase(), v.to_string())
        })
        .collect();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], key: &str) -> &'a str {
    headers
        .iter()
        .find_map(|(k, v)| (k == key).then_some(v.as_str()))
        .unwrap_or_else(|| panic!("no {key} header in {headers:?}"))
}

#[test]
fn head_mirrors_get_headers_with_an_empty_body() {
    let server = start(ephemeral().threads(2));
    let addr = server.addr();

    // Stable endpoints: HEAD must carry the GET entity's exact headers.
    for path in ["/healthz", "/v1/stats"] {
        let (g_status, g_headers, g_body) = raw_close(addr, "GET", path);
        let (h_status, h_headers, h_body) = raw_close(addr, "HEAD", path);
        assert_eq!(g_status, h_status, "{path}");
        assert!(h_body.is_empty(), "HEAD {path} carried a body");
        assert_eq!(
            header(&h_headers, "content-length"),
            g_body.len().to_string(),
            "HEAD {path} Content-Length must describe the GET entity"
        );
        assert_eq!(
            header(&g_headers, "content-type"),
            header(&h_headers, "content-type"),
            "{path}"
        );
    }

    // Live endpoints change length between exchanges; assert the shape.
    for path in ["/metrics", "/debug/requests", "/debug/flight"] {
        let (status, headers, body) = raw_close(addr, "HEAD", path);
        assert!(status.starts_with("HTTP/1.1 200"), "HEAD {path}: {status}");
        assert!(body.is_empty(), "HEAD {path} carried a body");
        let len: usize = header(&headers, "content-length").parse().unwrap();
        assert!(len > 0, "HEAD {path} advertised an empty entity");
    }

    // Content types: Prometheus exposition for /metrics, JSON for debug.
    let (_, metrics_headers, _) = raw_close(addr, "GET", "/metrics");
    assert_eq!(header(&metrics_headers, "content-type"), "text/plain; version=0.0.4");
    for path in ["/debug/requests", "/debug/slow", "/debug/flight"] {
        let (_, headers, _) = raw_close(addr, "GET", path);
        assert_eq!(header(&headers, "content-type"), "application/json", "{path}");
    }

    // HEAD routes like GET, so a POST-only endpoint answers 405.
    let (status, _, _) = raw_close(addr, "HEAD", "/v1/identify");
    assert!(status.starts_with("HTTP/1.1 405"), "HEAD /v1/identify: {status}");
    server.shutdown();
}

/// Reads one `patchdb_gauge` value off a `/metrics` scrape.
fn gauge_in(body: &str, name: &str) -> Option<i64> {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("patchdb_gauge{{name=\"{name}\"}} ")))
        .and_then(|v| v.parse().ok())
}

#[test]
fn identify_cache_and_batch_gauges_are_exported() {
    // Index swaps (exercised by the reload test) zero the cache gauges;
    // serialize so a concurrent swap cannot race this test's scrape.
    let _guard = obs_lock().lock().unwrap();
    let server = start(ephemeral().threads(2));
    let addr = server.addr();
    let record = shared_db().nvd.first().expect("tiny build has NVD records");
    let body = diff_body(record);
    assert_eq!(
        client::request(addr, "POST", "/v1/identify", body.as_bytes()).unwrap().status,
        200
    );

    let metrics = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    let entries = gauge_in(&metrics, "serve.identify.cache_entries")
        .expect("cache_entries gauge after an identify");
    assert!(entries >= 1, "cache_entries = {entries} after a cached identify");
    let bytes = gauge_in(&metrics, "serve.identify.cache_bytes")
        .expect("cache_bytes gauge after an identify");
    assert!(bytes >= 1, "cache_bytes = {bytes} after a cached identify");
    // The batcher zeroes its depth after every take; the gauge must
    // exist (the identify above passed through the batch queue).
    let depth = gauge_in(&metrics, "serve.batch.queue_depth")
        .expect("batch queue_depth gauge after an identify");
    assert!(depth >= 0, "queue_depth = {depth}");
    server.shutdown();
}

/// The flight/sampler toggles are process-global; tests that flip or
/// depend on them serialize here so a `flight(false)` server starting
/// mid-test cannot blind another test's journal.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[test]
fn debug_flight_and_profile_round_trip() {
    let _guard = obs_lock().lock().unwrap();
    let server = start(ephemeral().threads(2)); // recorder + sampler on by default
    let addr = server.addr();
    let record = shared_db().nvd.first().expect("tiny build has NVD records");
    let body = diff_body(record);
    for _ in 0..4 {
        assert_eq!(
            client::request(addr, "POST", "/v1/identify", body.as_bytes())
                .unwrap()
                .status,
            200
        );
    }

    // The journal renders as a Chrome trace-event document and saw this
    // server's queue transitions and loop ticks.
    let flight = client::request(addr, "GET", "/debug/flight", b"").unwrap();
    assert_eq!(flight.status, 200);
    let json = Json::parse(&flight.body_text()).expect("/debug/flight is JSON");
    let events = json.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
    assert!(!events.is_empty(), "flight journal empty after traffic");
    for event in events {
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(event.get("ph").and_then(Json::as_str).is_some());
        assert!(event.get("ts").and_then(Json::as_f64).is_some());
        assert!(event.get("tid").and_then(Json::as_f64).is_some());
    }
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
    for expected in ["serve.queue.push", "serve.queue.pop", "loop.tick"] {
        assert!(names.contains(&expected), "no {expected} event in {names:?}");
    }
    // A windowed view still parses (it may be empty if the machine
    // stalls, so only the shape is asserted).
    let windowed = client::request(addr, "GET", "/debug/flight?ms=60000", b"").unwrap();
    assert_eq!(windowed.status, 200);
    Json::parse(&windowed.body_text())
        .expect("windowed /debug/flight is JSON")
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("windowed traceEvents");

    // An on-demand profile: blocks one worker for a second, samples the
    // rest of the pool serving this very request.
    let profile = client::request_timeout(
        addr,
        "GET",
        "/debug/profile?seconds=1&hz=50",
        b"",
        Duration::from_secs(15),
    )
    .unwrap();
    assert_eq!(profile.status, 200);
    let pjson = Json::parse(&profile.body_text()).expect("/debug/profile is JSON");
    assert_eq!(pjson.get("schema").and_then(Json::as_str), Some("patchdb-profile/v1"));
    assert_eq!(pjson.get("hz").and_then(Json::as_f64), Some(50.0));
    let samples = pjson.get("samples").and_then(Json::as_f64).expect("samples");
    assert!(samples >= 5.0, "a 1 s profile at 50 Hz took {samples} samples");
    let folded = pjson.get("folded").and_then(Json::as_str).expect("folded");
    for line in folded.lines() {
        let (path, count) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!path.is_empty());
        assert!(count.parse::<u64>().unwrap() > 0);
    }
    assert!(pjson.get("self_top").and_then(Json::as_arr).is_some());

    assert_eq!(client::request(addr, "POST", "/debug/flight", b"").unwrap().status, 405);
    assert_eq!(client::request(addr, "POST", "/debug/profile", b"").unwrap().status, 405);
    server.shutdown();
}

#[test]
fn observability_toggles_never_change_response_bytes() {
    let _guard = obs_lock().lock().unwrap();
    // Start the dark server first: the toggles are process-global, so
    // the `on` server's start leaves both enabled while traffic runs.
    let off = start(ephemeral().threads(4).flight(false).sampler(false));
    let on = start(ephemeral().threads(4));
    let db = shared_db();

    let mut requests: Vec<(&str, String, Vec<u8>)> =
        vec![("GET", "/v1/stats".into(), Vec::new())];
    for record in db.records().take(8) {
        requests.push(("POST", "/v1/identify".into(), diff_body(record).into_bytes()));
        requests.push(("POST", "/v1/classify".into(), diff_body(record).into_bytes()));
        requests.push(("GET", format!("/v1/patch/{}", record.commit), Vec::new()));
    }
    let expected: Vec<_> = requests
        .iter()
        .map(|(m, p, b)| client::request(off.addr(), m, p, b).unwrap())
        .collect();

    // Drive the instrumented server while a live profile scrape walks
    // its stacks: recorder, mirroring, and sampling may observe, never
    // steer.
    let on_addr = on.addr();
    let profiler = std::thread::spawn(move || {
        client::request_timeout(
            on_addr,
            "GET",
            "/debug/profile?seconds=1&hz=97",
            b"",
            Duration::from_secs(15),
        )
    });
    for pass in 0..2 {
        for ((method, path, body), want) in requests.iter().zip(&expected) {
            let got = client::request(on_addr, method, path, body).unwrap();
            assert_eq!(
                (got.status, &got.body),
                (want.status, &want.body),
                "{method} {path} differs with recorder+sampler live (pass {pass})"
            );
        }
    }
    let profile = profiler.join().unwrap().expect("profile scrape");
    assert_eq!(profile.status, 200);
    off.shutdown();
    on.shutdown();
}

/// Fires every public endpoint (success and error paths) at two servers
/// and requires byte-identical `(status, body)` pairs.
fn assert_servers_identical(
    a: std::net::SocketAddr,
    b: std::net::SocketAddr,
    label: &str,
) {
    let db = shared_db();
    let mut requests: Vec<(&str, String, Vec<u8>)> = vec![
        ("GET", "/healthz".into(), Vec::new()),
        ("GET", "/v1/stats".into(), Vec::new()),
        ("POST", "/v1/scan".into(), b"void unrelated(void) { }\n".to_vec()),
        ("GET", "/v1/nope".into(), Vec::new()),
        ("GET", "/v1/identify".into(), Vec::new()),
        ("POST", "/v1/identify".into(), b"not a diff".to_vec()),
        ("GET", "/v1/patch/ffffffffffff".into(), Vec::new()),
    ];
    for record in db.records().take(10) {
        requests.push(("POST", "/v1/identify".into(), diff_body(record).into_bytes()));
        requests.push(("POST", "/v1/classify".into(), diff_body(record).into_bytes()));
        requests.push(("GET", format!("/v1/patch/{}", record.commit), Vec::new()));
    }
    // Scan with real pre-patch code so signatures actually match.
    for record in db.security_patches().take(5) {
        let before: String = record
            .patch
            .hunks()
            .flat_map(|h| h.old_lines().into_iter().map(|l| l.to_owned() + "\n"))
            .collect();
        requests.push(("POST", "/v1/scan".into(), before.into_bytes()));
    }
    for (method, path, body) in &requests {
        let ra = client::request(a, method, path, body).unwrap();
        let rb = client::request(b, method, path, body).unwrap();
        if path == "/healthz" {
            // The uptime stamp is wall-clock relative to each server's
            // own start; compare everything before ` up=`.
            let cut = |body: &[u8]| {
                let text = String::from_utf8_lossy(body).into_owned();
                text.split(" up=").next().unwrap_or_default().to_owned()
            };
            assert_eq!(
                (ra.status, cut(&ra.body)),
                (rb.status, cut(&rb.body)),
                "{label}: {method} {path} diverged"
            );
            continue;
        }
        assert_eq!(
            (ra.status, &ra.body),
            (rb.status, &rb.body),
            "{label}: {method} {path} diverged"
        );
    }
}

#[test]
fn snapshot_boot_answers_byte_identically_to_fresh_build() {
    let snap_path = std::env::temp_dir()
        .join(format!("patchdb_snap_{}.snapshot", std::process::id()));
    ServeIndex::build(shared_db().clone())
        .save_snapshot(&snap_path)
        .expect("snapshot written");
    let fresh = start(ephemeral().threads(2));
    let booted = Server::start(
        ServeIndex::load_snapshot(&snap_path).expect("snapshot loads"),
        &ephemeral().threads(2),
    )
    .expect("server binds");
    assert_servers_identical(fresh.addr(), booted.addr(), "snapshot boot");
    fresh.shutdown();
    booted.shutdown();
    let _ = std::fs::remove_file(&snap_path);
}

#[test]
fn four_shard_server_answers_byte_identically_to_one_shard() {
    let one = start(ephemeral().threads(2));
    let four = Server::start(
        ShardedIndex::from_index(ServeIndex::build(shared_db().clone()), 4),
        &ephemeral().threads(2),
    )
    .expect("server binds");
    assert_servers_identical(one.addr(), four.addr(), "4-shard scatter-gather");
    one.shutdown();
    four.shutdown();
}

#[test]
fn reload_swaps_generations_under_live_traffic() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    // Swaps zero the identify-cache gauges; serialize with the tests
    // that scrape them.
    let _guard = obs_lock().lock().unwrap();
    // Persist the dataset so /admin/reload has a source to rebuild from.
    let db_path = std::env::temp_dir()
        .join(format!("patchdb_reload_{}.json", std::process::id()));
    std::fs::write(&db_path, shared_db().to_json().expect("dataset serializes")).unwrap();
    let server = start(
        ephemeral()
            .threads(4)
            .reload_from(ReloadSource::Dataset(db_path.display().to_string())),
    );
    let addr = server.addr();
    let body = diff_body(shared_db().nvd.first().expect("tiny build has NVD records"));
    // Reloads rebuild from the same dataset, so identify answers must
    // stay byte-identical across every generation.
    let reference = client::request(addr, "POST", "/v1/identify", body.as_bytes())
        .expect("reference identify");
    assert_eq!(reference.status, 200, "{}", reference.body_text());

    // Continuous traffic across every swap — two keep-alive workers
    // with mixed GET/POST, one pipelining identify bursts. Each worker
    // panics on the first non-200 (or byte-diverged) reply, so a
    // dropped or failed request fails the test.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic: Vec<_> = (0..3)
        .map(|worker| {
            let stop = Arc::clone(&stop);
            let body = body.clone();
            let reference = reference.body.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut conn: Option<Client> = None;
                while !stop.load(Ordering::SeqCst) {
                    let ka = match conn.as_mut() {
                        Some(ka) => ka,
                        None => conn.insert(
                            Client::connect(addr, Duration::from_secs(10))
                                .expect("connect mid-swap"),
                        ),
                    };
                    if worker == 2 {
                        let burst: Vec<(&str, &str, &[u8])> = (0..8)
                            .map(|_| ("POST", "/v1/identify", body.as_bytes()))
                            .collect();
                        let replies =
                            ka.pipeline(&burst).expect("pipelined burst failed mid-swap");
                        for reply in replies {
                            assert_eq!(reply.status, 200, "{}", reply.body_text());
                            assert_eq!(
                                reply.body, reference,
                                "pipelined identify diverged across a swap"
                            );
                            served += 1;
                        }
                    } else {
                        let (method, path, payload): (&str, &str, &[u8]) = match served % 3
                        {
                            0 => ("GET", "/v1/stats", b""),
                            1 => ("POST", "/v1/identify", body.as_bytes()),
                            _ => ("GET", "/healthz", b""),
                        };
                        let reply = ka
                            .send(method, path, payload)
                            .expect("keep-alive request failed mid-swap");
                        assert_eq!(
                            reply.status,
                            200,
                            "{method} {path} failed during a swap: {}",
                            reply.body_text()
                        );
                        if path == "/v1/identify" {
                            assert_eq!(
                                reply.body, reference,
                                "identify diverged across a swap"
                            );
                        }
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Three copy-on-write swaps while the traffic threads hammer away.
    for expected_gen in 2..=4u64 {
        let reply = client::request(addr, "POST", "/admin/reload", b"").expect("reload");
        assert_eq!(reply.status, 200, "{}", reply.body_text());
        let json = Json::parse(&reply.body_text()).expect("reload reply is JSON");
        assert_eq!(json.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            json.get("generation").and_then(Json::as_f64),
            Some(expected_gen as f64)
        );
    }
    stop.store(true, Ordering::SeqCst);
    let served: u64 = traffic
        .into_iter()
        .map(|t| t.join().expect("zero failed requests across swaps"))
        .sum();
    assert!(served > 0, "traffic threads never got a request through");

    // The new generation is visible everywhere it is surfaced.
    let health = client::request(addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body_text().starts_with("ok gen=4 up="), "{}", health.body_text());
    let metrics = client::request(addr, "GET", "/metrics", b"").unwrap().body_text();
    assert_eq!(gauge_in(&metrics, "serve.index.generation"), Some(4));
    assert!(
        counter_in(&metrics, "serve.index.swaps") >= 3,
        "swap counter after three reloads: {metrics}"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&db_path);
}

/// Like [`raw_close`] but with a request body and caller-chosen extra
/// headers — the shape trace-propagation tests need.
fn raw_exchange(
    addr: std::net::SocketAddr,
    method: &str,
    path: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> (String, Vec<(String, String)>, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n");
    for (key, value) in extra {
        head.push_str(&format!("{key}: {value}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read close-mode response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&raw)));
    let head = String::from_utf8_lossy(&raw[..split]).to_string();
    let body = raw[split + 4..].to_vec();
    let mut lines = head.lines();
    let status = lines.next().expect("status line").to_string();
    let headers = lines
        .map(|l| {
            let (k, v) = l.split_once(": ").unwrap_or_else(|| panic!("bad header {l:?}"));
            (k.to_ascii_lowercase(), v.to_string())
        })
        .collect();
    (status, headers, body)
}

#[test]
fn every_response_carries_request_and_trace_ids() {
    let server = start(ephemeral().threads(1));
    let addr = server.addr();

    // Success, not-found, and method-error responses all carry both
    // headers, and the derived trace id is the request id in 16 hex
    // digits.
    for (path, want) in [("/healthz", "200"), ("/v1/nope", "404"), ("/v1/identify", "405")] {
        let (status, headers, _) = raw_close(addr, "GET", path);
        assert!(status.contains(want), "GET {path}: {status}");
        let id: u64 = header(&headers, "x-patchdb-request-id")
            .parse()
            .unwrap_or_else(|_| panic!("GET {path}: request id is not an integer"));
        assert!(id >= 1, "GET {path}: request id {id}");
        let trace = header(&headers, "x-patchdb-trace-id");
        assert_eq!(trace, format!("{id:016x}"), "GET {path}: derived trace shape");
    }

    // Ids are admission-ordered: a later request gets a larger id.
    let (_, first, _) = raw_close(addr, "GET", "/healthz");
    let (_, second, _) = raw_close(addr, "GET", "/healthz");
    let a: u64 = header(&first, "x-patchdb-request-id").parse().unwrap();
    let b: u64 = header(&second, "x-patchdb-request-id").parse().unwrap();
    assert!(b > a, "request ids not increasing: {a} then {b}");
    server.shutdown();
}

#[test]
fn client_trace_ids_round_trip_and_are_queryable() {
    // The tracing toggle is process-global; serialize with the test
    // that switches it off.
    let _guard = obs_lock().lock().unwrap();
    let server = start(ephemeral().threads(1).debug_ring(64));
    let addr = server.addr();

    // A valid client trace id is echoed on the response...
    let (status, headers, _) =
        raw_exchange(addr, "GET", "/v1/stats", &[("X-Patchdb-Trace-Id", "it-trace-1")], b"");
    assert!(status.contains("200"), "{status}");
    assert_eq!(header(&headers, "x-patchdb-trace-id"), "it-trace-1");

    // ...and its record is queryable by that id.
    let reply = client::request(addr, "GET", "/debug/trace/it-trace-1", b"").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let json = Json::parse(&reply.body_text()).expect("/debug/trace is JSON");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("patchdb-trace-request/v1")
    );
    assert_eq!(json.get("trace_id").and_then(Json::as_str), Some("it-trace-1"));
    assert_eq!(json.get("supplied").and_then(Json::as_bool), Some(true));
    let request = json.get("request").expect("embedded request record");
    assert_eq!(request.get("path").and_then(Json::as_str), Some("/v1/stats"));
    assert_eq!(request.get("generation").and_then(Json::as_f64), Some(1.0));
    let total = request.get("total_ns").and_then(Json::as_f64).expect("total_ns");
    let stages: f64 = ["accept_ns", "queue_ns", "parse_ns", "batch_ns", "compute_ns", "write_ns"]
        .iter()
        .map(|s| request.get(s).and_then(Json::as_f64).expect("stage"))
        .sum();
    assert!(stages <= total, "stages {stages} exceed total {total}");

    // A client trace id is also echoed into the error envelope body.
    let (status, _, body) = raw_exchange(
        addr,
        "POST",
        "/v1/identify",
        &[("X-Patchdb-Trace-Id", "it-trace-err")],
        b"not a diff",
    );
    assert!(status.contains("400"), "{status}");
    let envelope = Json::parse(&String::from_utf8_lossy(&body)).expect("error envelope");
    assert_eq!(
        envelope.get("error").and_then(|e| e.get("trace_id")).and_then(Json::as_str),
        Some("it-trace-err")
    );

    // An invalid header value (spaces) is ignored: the response falls
    // back to the derived id and never fails the request.
    let (status, headers, _) =
        raw_exchange(addr, "GET", "/healthz", &[("X-Patchdb-Trace-Id", "not valid!")], b"");
    assert!(status.contains("200"), "{status}");
    let id: u64 = header(&headers, "x-patchdb-request-id").parse().unwrap();
    assert_eq!(header(&headers, "x-patchdb-trace-id"), format!("{id:016x}"));

    // An unknown trace id is a 404 with the standard envelope.
    let miss = client::request(addr, "GET", "/debug/trace/никогда", b"").unwrap();
    assert_eq!(miss.status, 404);
    server.shutdown();
}

#[test]
fn tracing_toggle_never_changes_response_bytes() {
    let _guard = obs_lock().lock().unwrap();
    let db = shared_db();
    let record = db.nvd.first().expect("tiny build has NVD records");
    let body = diff_body(record).into_bytes();
    let requests: Vec<(&str, String, Vec<u8>)> = vec![
        ("GET", "/healthz".into(), Vec::new()),
        ("GET", "/v1/stats".into(), Vec::new()),
        ("GET", "/v1/nope".into(), Vec::new()),
        ("POST", "/v1/identify".into(), b"not a diff".to_vec()),
        ("POST", "/v1/identify".into(), body.clone()),
        ("POST", "/v1/classify".into(), body),
    ];
    // The tracing switch is process-global, so the two servers are
    // driven one after the other: the whole `dark` conversation happens
    // while tracing is off, then `lit`'s start() turns it back on. Both
    // see the identical request sequence, so even the X-Patchdb ids
    // match — the full response bytes must be equal.
    let dark = start(ephemeral().threads(1).tracing(false));
    let dark_replies: Vec<_> = requests
        .iter()
        .map(|(m, p, b)| raw_exchange(dark.addr(), m, p, &[], b))
        .collect();
    dark.shutdown();

    let lit = start(ephemeral().threads(1));
    for ((method, path, payload), want) in requests.iter().zip(&dark_replies) {
        let got = raw_exchange(lit.addr(), method, path, &[], payload);
        if path == "/healthz" {
            assert_eq!(got.0, want.0, "{method} {path} status diverged");
            continue; // the uptime stamp is wall-clock, not workload
        }
        assert_eq!(
            &got, want,
            "{method} {path}: response bytes differ between tracing off and on"
        );
    }
    lit.shutdown();
}

#[test]
fn four_shard_trace_attributes_per_shard_compute() {
    let _guard = obs_lock().lock().unwrap();
    let server = Server::start(
        ShardedIndex::from_index(ServeIndex::build(shared_db().clone()), 4),
        &ephemeral().threads(2).debug_ring(64),
    )
    .expect("server binds");
    let addr = server.addr();

    // A signature scan scatter-gathers across all four shards inside
    // the request's compute stage.
    let (status, _, _) = raw_exchange(
        addr,
        "POST",
        "/v1/scan",
        &[("X-Patchdb-Trace-Id", "shard-trace-1")],
        b"void unrelated(void) { }\n",
    );
    assert!(status.contains("200"), "{status}");

    let reply = client::request(addr, "GET", "/debug/trace/shard-trace-1", b"").unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let json = Json::parse(&reply.body_text()).unwrap();
    let request = json.get("request").expect("request record");
    let shards = request.get("shards").and_then(Json::as_arr).expect("per-shard spans");
    assert_eq!(shards.len(), 4, "one span per shard: {}", reply.body_text());
    let spans: Vec<f64> = shards.iter().map(|s| s.as_f64().expect("span ns")).collect();
    let compute = request.get("compute_ns").and_then(Json::as_f64).expect("compute_ns");
    let sum: f64 = spans.iter().sum();
    assert!(
        sum <= compute,
        "shard spans sum to {sum} ns > compute stage {compute} ns"
    );
    let spread = spans.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - spans.iter().cloned().fold(f64::INFINITY, f64::min);
    assert_eq!(
        request.get("shard_imbalance_ns").and_then(Json::as_f64),
        Some(spread),
        "imbalance must be the max-min spread of the recorded spans"
    );
    server.shutdown();
}

#[test]
fn debug_timeseries_and_slo_round_trip() {
    let _guard = obs_lock().lock().unwrap();
    let server = start(ephemeral().threads(2));
    let addr = server.addr();
    for _ in 0..4 {
        assert_eq!(client::request(addr, "GET", "/healthz", b"").unwrap().status, 200);
    }
    // The event loop samples the registry into the time-series store
    // once per second; wait out two ticks so the series has points.
    std::thread::sleep(Duration::from_millis(2500));

    let reply = client::request(
        addr,
        "GET",
        "/debug/timeseries?metric=serve.accepted&secs=60",
        b"",
    )
    .unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body_text());
    let json = Json::parse(&reply.body_text()).expect("/debug/timeseries is JSON");
    assert_eq!(json.get("schema").and_then(Json::as_str), Some("patchdb-timeseries/v1"));
    assert_eq!(json.get("metric").and_then(Json::as_str), Some("serve.accepted"));
    let points = json.get("points").and_then(Json::as_arr).expect("points array");
    assert!(!points.is_empty(), "no samples after two loop ticks");
    let mut last_s = f64::NEG_INFINITY;
    for p in points {
        let s = p.get("s").and_then(Json::as_f64).expect("second stamp");
        assert!(s > last_s, "seconds not strictly increasing");
        last_s = s;
        assert!(p.get("v").and_then(Json::as_f64).expect("value") >= 0.0);
    }

    // Parameter errors are envelope errors, not panics.
    assert_eq!(client::request(addr, "GET", "/debug/timeseries", b"").unwrap().status, 400);
    assert_eq!(
        client::request(addr, "GET", "/debug/timeseries?metric=no.such.series", b"")
            .unwrap()
            .status,
        404
    );

    let slo = client::request(addr, "GET", "/debug/slo", b"").unwrap();
    assert_eq!(slo.status, 200, "{}", slo.body_text());
    let slo_json = Json::parse(&slo.body_text()).expect("/debug/slo is JSON");
    assert_eq!(slo_json.get("schema").and_then(Json::as_str), Some("patchdb-slo/v1"));
    let rules = slo_json.get("rules").and_then(Json::as_arr).expect("rules array");
    let names: Vec<&str> =
        rules.iter().filter_map(|r| r.get("name").and_then(Json::as_str)).collect();
    assert!(names.contains(&"identify_latency_p99"), "{names:?}");
    assert!(names.contains(&"availability"), "{names:?}");
    for rule in rules {
        let budget =
            rule.get("budget_remaining_pct").and_then(Json::as_f64).expect("budget");
        assert!((0.0..=100.0).contains(&budget), "budget {budget} out of range");
        let windows = rule.get("windows").and_then(Json::as_arr).expect("windows");
        assert_eq!(windows.len(), 2, "5m and 1h burn windows");
        for w in windows {
            assert!(w.get("burn_rate").and_then(Json::as_f64).expect("burn") >= 0.0);
        }
    }
    // Only healthz traffic ran: nothing burned the availability budget.
    let availability = rules
        .iter()
        .find(|r| r.get("name").and_then(Json::as_str) == Some("availability"))
        .unwrap();
    assert_eq!(
        availability.get("budget_remaining_pct").and_then(Json::as_f64),
        Some(100.0),
        "healthz-only traffic must not burn availability budget"
    );

    for path in ["/debug/timeseries", "/debug/slo", "/debug/trace/x"] {
        assert_eq!(client::request(addr, "POST", path, b"").unwrap().status, 405, "{path}");
    }
    server.shutdown();
}

#[test]
fn latency_windows_survive_a_reload() {
    let _guard = obs_lock().lock().unwrap();
    let db_path = std::env::temp_dir()
        .join(format!("patchdb_window_reload_{}.json", std::process::id()));
    std::fs::write(&db_path, shared_db().to_json().expect("dataset serializes")).unwrap();
    let server = start(
        ephemeral()
            .threads(2)
            .reload_from(ReloadSource::Dataset(db_path.display().to_string())),
    );
    let addr = server.addr();
    for _ in 0..6 {
        assert_eq!(client::request(addr, "GET", "/healthz", b"").unwrap().status, 200);
    }
    let window_count = |body: &str| {
        body.lines()
            .find_map(|l| {
                l.strip_prefix(
                    "patchdb_window_count{name=\"serve.request.total_ns\",window_s=\"60\"} ",
                )
            })
            .and_then(|v| v.parse::<u64>().ok())
            .expect("windowed request count in /metrics")
    };
    let before =
        window_count(&client::request(addr, "GET", "/metrics", b"").unwrap().body_text());
    assert!(before >= 6, "window missed the warm-up burst: {before}");

    let reload = client::request(addr, "POST", "/admin/reload", b"").unwrap();
    assert_eq!(reload.status, 200, "{}", reload.body_text());

    // An index swap replaces the generation, never the telemetry: the
    // 60 s latency window must still hold the pre-reload requests.
    let after =
        window_count(&client::request(addr, "GET", "/metrics", b"").unwrap().body_text());
    assert!(
        after >= before,
        "60s window lost samples across a reload: {before} -> {after}"
    );
    server.shutdown();
    let _ = std::fs::remove_file(&db_path);
}

#[test]
fn error_responses_share_the_json_envelope() {
    let server = start(ephemeral().threads(1));
    let addr = server.addr();
    let cases: Vec<(&str, &str, Vec<u8>, u16, &str)> = vec![
        ("GET", "/v1/nope", Vec::new(), 404, "not_found"),
        ("GET", "/v1/identify", Vec::new(), 405, "method_not_allowed"),
        ("GET", "/admin/reload", Vec::new(), 405, "method_not_allowed"),
        ("POST", "/v1/identify", b"not a diff".to_vec(), 400, "bad_request"),
        ("POST", "/v1/classify", vec![0xff, 0xfe], 400, "bad_request"),
        ("GET", "/v1/patch/ffffffffffff", Vec::new(), 404, "not_found"),
        // No reload source configured on this server.
        ("POST", "/admin/reload", Vec::new(), 409, "usage"),
    ];
    for (method, path, body, status, code) in cases {
        let reply = client::request(addr, method, path, &body).unwrap();
        assert_eq!(reply.status, status, "{method} {path}: {}", reply.body_text());
        let json = Json::parse(&reply.body_text())
            .unwrap_or_else(|e| panic!("{method} {path} not JSON ({e}): {}", reply.body_text()));
        let error = json.get("error").expect("envelope has an error object");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some(code),
            "{method} {path}"
        );
        let message = error.get("message").and_then(Json::as_str).expect("message field");
        assert!(!message.is_empty(), "{method} {path} has an empty message");
    }
    server.shutdown();
}
