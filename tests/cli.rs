//! End-to-end tests of the `patchdb` CLI binary: build → export → every
//! read-only subcommand over the exported JSON.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/debug/patchdb, next to the test executable's parent dir.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/
    p.push("patchdb");
    p
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("patchdb binary runs (build with `cargo build --bins` first)");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

fn build_db(path: &std::path::Path) {
    let (ok, text) = run(&[
        "build",
        "--tiny",
        "--seed",
        "77",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "build failed:\n{text}");
    assert!(text.contains("round"), "missing round table:\n{text}");
    assert!(path.exists());
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join("patchdb-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.json");
    build_db(&db);
    let db_str = db.to_str().unwrap();

    let (ok, text) = run(&["stats", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("category distribution"), "{text}");

    let (ok, text) = run(&["classify", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("agreement with ground truth"), "{text}");

    let (ok, text) = run(&["patterns", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("fix patterns across"), "{text}");

    let (ok, text) = run(&["analyze", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("top discriminative"), "{text}");

    // Scan a target file that is a clone of nothing.
    let target = dir.join("target.c");
    std::fs::write(&target, "void empty(void) { }\n").unwrap();
    let (ok, text) = run(&["scan", db_str, target.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("vulnerable-signature hits"), "{text}");
}

#[test]
fn cli_rejects_bad_usage() {
    let (ok, text) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("usage:"), "{text}");

    let (ok, text) = run(&["stats", "/no/such/file.json"]);
    assert!(!ok);
    assert!(text.contains("error:"), "{text}");

    let (ok, text) = run(&["build", "--bogus-flag"]);
    assert!(!ok);
    assert!(text.contains("unknown flag"), "{text}");
}
