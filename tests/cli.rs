//! End-to-end tests of the `patchdb` CLI binary: build → export → every
//! read-only subcommand over the exported JSON.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // target/debug/patchdb, next to the test executable's parent dir.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/
    p.push("patchdb");
    p
}

fn run(args: &[&str]) -> (bool, String) {
    let (code, text) = run_coded(args);
    (code == 0, text)
}

/// Like [`run`], but exposing the exact exit code: `0` success, `2`
/// usage mistakes, `1` runtime failures.
fn run_coded(args: &[&str]) -> (i32, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("patchdb binary runs (build with `cargo build --bins` first)");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().unwrap_or(-1), text)
}

fn build_db(path: &std::path::Path) {
    let (ok, text) = run(&[
        "build",
        "--tiny",
        "--seed",
        "77",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "build failed:\n{text}");
    assert!(text.contains("round"), "missing round table:\n{text}");
    assert!(path.exists());
}

#[test]
fn cli_full_workflow() {
    let dir = std::env::temp_dir().join("patchdb-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("db.json");
    build_db(&db);
    let db_str = db.to_str().unwrap();

    let (ok, text) = run(&["stats", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("category distribution"), "{text}");

    let (ok, text) = run(&["classify", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("agreement with ground truth"), "{text}");

    let (ok, text) = run(&["patterns", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("fix patterns across"), "{text}");

    let (ok, text) = run(&["analyze", db_str]);
    assert!(ok, "{text}");
    assert!(text.contains("top discriminative"), "{text}");

    // Scan a target file that is a clone of nothing.
    let target = dir.join("target.c");
    std::fs::write(&target, "void empty(void) { }\n").unwrap();
    let (ok, text) = run(&["scan", db_str, target.to_str().unwrap()]);
    assert!(ok, "{text}");
    assert!(text.contains("vulnerable-signature hits"), "{text}");
}

#[test]
fn cli_rejects_bad_usage() {
    // Usage mistakes exit 2 and point at the usage text.
    let (code, text) = run_coded(&["frobnicate"]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("usage:"), "{text}");

    let (code, text) = run_coded(&["build", "--bogus-flag"]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("unknown flag"), "{text}");

    let (code, text) = run_coded(&["serve"]);
    assert_eq!(code, 2, "{text}");
    assert!(text.contains("usage: patchdb serve"), "{text}");

    // Runtime failures (the command was well-formed) exit 1.
    let (code, text) = run_coded(&["stats", "/no/such/file.json"]);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("error:"), "{text}");
}

#[test]
fn cli_help_and_version() {
    let (code, text) = run_coded(&["--help"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("usage: patchdb <command>"), "{text}");
    assert!(text.contains("serve"), "{text}");

    let (code, text) = run_coded(&["help", "serve"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("--max-inflight"), "{text}");

    let (code, text) = run_coded(&["build", "--help"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("--no-synth"), "{text}");

    let (code, text) = run_coded(&["--version"]);
    assert_eq!(code, 0, "{text}");
    assert!(text.starts_with("patchdb "), "{text}");
}
