//! Golden-file tests: the Table II round composition and Table V
//! pattern distribution of a fixed-seed build are rendered to text and
//! compared byte-for-byte against files under `tests/golden/`.
//!
//! On intentional pipeline changes, regenerate with:
//!
//! ```sh
//! PATCHDB_UPDATE_GOLDEN=1 cargo test --test golden
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use patchdb::{BuildOptions, PatchDb, ALL_CATEGORIES};

const GOLDEN_SEED: u64 = 1234;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `rendered` against the golden file, or rewrites the golden
/// file when `PATCHDB_UPDATE_GOLDEN` is set.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("PATCHDB_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with PATCHDB_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with PATCHDB_UPDATE_GOLDEN=1"
    );
}

/// Table II — round-by-round augmentation composition.
#[test]
fn table2_round_composition_matches_golden() {
    let report = PatchDb::build(&BuildOptions::tiny(GOLDEN_SEED));
    let mut out = String::new();
    writeln!(out, "# Table II round composition, BuildOptions::tiny({GOLDEN_SEED})").unwrap();
    writeln!(out, "# pool\tround\tsearch_range\tcandidates\tverified\tratio").unwrap();
    for r in &report.rounds {
        writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{:.6}",
            r.pool, r.round, r.search_range, r.candidates, r.verified_security, r.ratio
        )
        .unwrap();
    }
    assert_golden("table2_rounds.txt", &out);
}

/// Table V — ground-truth pattern distribution of the natural security
/// patches, over the 12-category taxonomy.
#[test]
fn table5_pattern_distribution_matches_golden() {
    let report = PatchDb::build(&BuildOptions::tiny(GOLDEN_SEED));
    let security: Vec<_> = report.db.security_patches().collect();
    let total = security.len().max(1);

    let mut out = String::new();
    writeln!(out, "# Table V pattern distribution, BuildOptions::tiny({GOLDEN_SEED})").unwrap();
    writeln!(out, "# category\tcount\tshare").unwrap();
    for cat in ALL_CATEGORIES {
        let count = security.iter().filter(|r| r.truth_category == Some(cat)).count();
        writeln!(out, "{cat:?}\t{count}\t{:.6}", count as f64 / total as f64).unwrap();
    }
    writeln!(out, "total\t{}\t1.000000", security.len()).unwrap();
    assert_golden("table5_patterns.txt", &out);
}
