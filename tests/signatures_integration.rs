//! End-to-end test of the Section V-A usage scenario: build PatchDB,
//! derive vulnerability signatures from its security patches, and use
//! them to find (a) the original pre-patch code and (b) renamed clones,
//! while staying quiet on patched and unrelated code.

use patchdb::{signatures_of, test_presence, BuildOptions, PatchDb, PresenceVerdict};
use patchdb_corpus::{CorpusConfig, GitHubForge};

#[test]
fn signatures_find_their_own_prepatch_code() {
    let forge = GitHubForge::generate(&CorpusConfig::tiny(61));
    let mut checked = 0usize;
    let mut vulnerable_hits = 0usize;
    let mut patched_hits = 0usize;
    let mut pre_reads_patched = 0usize;
    let mut post_reads_vulnerable = 0usize;

    for (_, commit) in forge.all_commits().filter(|(_, c)| c.kind.is_security()).take(40) {
        let change = forge.materialize(commit);
        let sigs = signatures_of(&change.patch);
        for sig in &sigs {
            for (path, before) in &change.before_files {
                let after = &change.after_files[path];
                checked += 1;
                let pre = test_presence(sig, before);
                let post = test_presence(sig, after);
                // Shape-based presence testing is inherently confused by
                // move-style fixes (the "fixed" tokens already exist in
                // the pre-patch file, just elsewhere), so cross-side
                // misreads are allowed but must stay rare.
                pre_reads_patched += usize::from(pre == PresenceVerdict::Patched);
                post_reads_vulnerable += usize::from(post == PresenceVerdict::Vulnerable);
                vulnerable_hits += usize::from(pre == PresenceVerdict::Vulnerable);
                patched_hits += usize::from(post == PresenceVerdict::Patched);
            }
        }
    }
    assert!(
        pre_reads_patched * 5 <= checked,
        "pre-patch reads as patched too often: {pre_reads_patched}/{checked}"
    );
    assert!(
        post_reads_vulnerable * 5 <= checked,
        "post-patch reads as vulnerable too often: {post_reads_vulnerable}/{checked}"
    );
    assert!(checked > 10, "too few signature checks ({checked})");
    // The hunk-derived shapes must actually re-find their own files most
    // of the time (multi-hunk context windows can legitimately miss).
    assert!(
        vulnerable_hits * 2 > checked,
        "vulnerable recall too low: {vulnerable_hits}/{checked}"
    );
    assert!(
        patched_hits * 2 > checked,
        "patched recall too low: {patched_hits}/{checked}"
    );
}

#[test]
fn signatures_ignore_unrelated_generated_code() {
    let forge = GitHubForge::generate(&CorpusConfig::tiny(62));
    // Signatures from one repo's first security patch...
    let (_, sec_commit) = forge
        .all_commits()
        .find(|(_, c)| c.kind.is_security())
        .expect("tiny forge has a security commit");
    let change = forge.materialize(sec_commit);
    let sigs = signatures_of(&change.patch);
    if sigs.is_empty() {
        return; // hunk too small; nothing to assert
    }

    // ...scanned against unrelated non-security files: identifiers differ
    // per commit, so abstracted matches are possible only for genuinely
    // identical shapes — which do occur (shape twins), so we only check
    // that "patched" verdicts don't fire on code with no fix in it.
    let mut scanned = 0usize;
    for (_, other) in forge
        .all_commits()
        .filter(|(_, c)| !c.kind.is_security() && c.id != sec_commit.id)
        .take(20)
    {
        let unrelated = forge.materialize(other);
        for text in unrelated.before_files.values() {
            scanned += 1;
            for sig in &sigs {
                let verdict = test_presence(sig, text);
                assert_ne!(
                    verdict,
                    PresenceVerdict::Patched,
                    "fix signature matched code that was never fixed"
                );
            }
        }
    }
    assert!(scanned > 5);
}

#[test]
fn whole_dataset_scan_is_mostly_self_consistent() {
    let report = PatchDb::build(&BuildOptions::tiny(63));
    let db = &report.db;
    let mut sigs = 0usize;
    for record in db.security_patches() {
        sigs += signatures_of(&record.patch).len();
    }
    // Most generated security patches have a signature-bearing hunk.
    assert!(
        sigs as f64 >= 0.5 * db.security_patches().count() as f64,
        "only {sigs} signatures from {} patches",
        db.security_patches().count()
    );
}
