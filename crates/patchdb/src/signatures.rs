//! Patch-enhanced vulnerability signatures and patch-presence testing —
//! the primary usage scenarios of Section V-A-1.
//!
//! A security patch embeds both the vulnerable code (its removed/context
//! lines against the BEFORE version) and the fix (its added lines). From
//! those we derive two signatures:
//!
//! * a **vulnerability signature** — the abstracted token sequence of the
//!   pre-patch hunk — which matches *vulnerable code clones* in unrelated
//!   code (the VUDDY/MVP-style application the paper cites);
//! * a **fix signature** — the abstracted added lines — whose presence in
//!   a target file indicates the patch has been applied (the PDiff/
//!   patch-presence-testing application).
//!
//! Abstraction (identifiers → `VARn`/`FUNCn`, literals → `LITERAL`) makes
//! both robust to renaming, exactly like the hunk-level Levenshtein
//! features of Table I.

use clang_lite::{abstract_tokens, tokenize, tokenize_fragment};
use patch_core::{LineKind, Patch};

/// A signature derived from one hunk of a security patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchSignature {
    /// Commit the signature came from.
    pub commit: patch_core::CommitId,
    /// Abstracted token sequence of the vulnerable (pre-patch) hunk body.
    pub vulnerable: Vec<String>,
    /// Abstracted token sequence of the fixed (post-patch) hunk body.
    pub fixed: Vec<String>,
}

/// Minimum abstracted-token length for a usable signature; shorter hunks
/// match everywhere and only produce noise.
const MIN_SIGNATURE_TOKENS: usize = 8;

/// Derives signatures from a security patch, one per hunk that carries
/// enough signal.
pub fn signatures_of(patch: &Patch) -> Vec<PatchSignature> {
    let mut out = Vec::new();
    for hunk in patch.hunks() {
        let old_text = text_of(hunk, LineKind::Added);
        let new_text = text_of(hunk, LineKind::Removed);
        let vulnerable = abstract_line(&old_text);
        let fixed = abstract_line(&new_text);
        if vulnerable.len() >= MIN_SIGNATURE_TOKENS && fixed.len() >= MIN_SIGNATURE_TOKENS {
            out.push(PatchSignature { commit: patch.commit, vulnerable, fixed });
        }
    }
    out
}

/// The hunk body with lines of `exclude` kind dropped, joined.
fn text_of(hunk: &patch_core::Hunk, exclude: LineKind) -> String {
    hunk.lines
        .iter()
        .filter(|l| l.kind != exclude)
        .map(|l| l.content.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

fn abstract_line(text: &str) -> Vec<String> {
    abstract_tokens(&tokenize_fragment(text, 1))
        .into_iter()
        .map(|t| t.canon)
        .collect()
}

/// Outcome of testing one target file against one signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresenceVerdict {
    /// The vulnerable shape matches and the fix shape does not: the code
    /// is an (unpatched) vulnerable clone.
    Vulnerable,
    /// The fix shape matches: the patch (or an equivalent) is present.
    Patched,
    /// Neither shape matches: the signature does not apply to this code.
    NotApplicable,
}

/// Tests a target file against a signature: vulnerable clone, patched, or
/// not applicable.
///
/// The target is abstracted per *window* anchored at each function (so
/// local renaming inside the target cannot defeat the match), then tested
/// for containment of the vulnerable and fixed shapes.
pub fn test_presence(signature: &PatchSignature, target_source: &str) -> PresenceVerdict {
    // Abstract the whole target once; the signature sequences were
    // abstracted from hunks whose numbering starts fresh, so renumber the
    // target per candidate window start for a fair comparison.
    let toks = tokenize(target_source);
    let texts: Vec<String> = toks.iter().map(|t| t.text.clone()).collect();

    let fixed_hit = window_match(&texts, &signature.fixed);
    if fixed_hit {
        return PresenceVerdict::Patched;
    }
    if window_match(&texts, &signature.vulnerable) {
        return PresenceVerdict::Vulnerable;
    }
    PresenceVerdict::NotApplicable
}

/// Re-abstracts each window of the target so `VARn` numbering aligns with
/// a fresh-start signature, then compares.
fn window_match(target_texts: &[String], needle: &[String]) -> bool {
    if needle.is_empty() || target_texts.len() < needle.len() {
        return false;
    }
    let n = needle.len();
    for start in 0..=(target_texts.len() - n) {
        let window = target_texts[start..start + n].join(" ");
        let abstracted = abstract_line(&window);
        if abstracted == needle {
            return true;
        }
    }
    false
}

/// Scans a set of targets with a signature database; returns
/// `(target index, signature index, verdict)` for every non-NA hit.
pub fn scan_targets(
    signatures: &[PatchSignature],
    targets: &[&str],
) -> Vec<(usize, usize, PresenceVerdict)> {
    let mut out = Vec::new();
    for (ti, target) in targets.iter().enumerate() {
        for (si, sig) in signatures.iter().enumerate() {
            let v = test_presence(sig, target);
            if v != PresenceVerdict::NotApplicable {
                out.push((ti, si, v));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::diff_files;

    const BEFORE: &str = "int parse(struct ctx *c, size_t n) {\n    int i = c->pos;\n    char *buf = c->data;\n    buf[i] = read_byte(c, i);\n    c->pos = i + 1;\n    return 0;\n}\n";
    const AFTER: &str = "int parse(struct ctx *c, size_t n) {\n    int i = c->pos;\n    char *buf = c->data;\n    if (i >= (int)n)\n        return -1;\n    buf[i] = read_byte(c, i);\n    c->pos = i + 1;\n    return 0;\n}\n";

    fn patch() -> Patch {
        Patch::builder("e".repeat(40))
            .message("fix oob")
            .file(diff_files("p.c", BEFORE, AFTER, 3))
            .build()
    }

    #[test]
    fn signature_extraction() {
        let sigs = signatures_of(&patch());
        assert_eq!(sigs.len(), 1);
        assert!(sigs[0].vulnerable.len() >= MIN_SIGNATURE_TOKENS);
        // The fix shape contains the guard's `if`.
        assert!(sigs[0].fixed.contains(&"if".to_owned()));
    }

    #[test]
    fn unpatched_clone_is_flagged_vulnerable() {
        let sigs = signatures_of(&patch());
        // A renamed clone of the BEFORE code.
        let clone = BEFORE
            .replace("buf", "frame")
            .replace("read_byte", "next_octet")
            .replace("int i ", "int k ")
            .replace("[i]", "[k]")
            .replace("(c, i)", "(c, k)")
            .replace("i + 1", "k + 1");
        assert_eq!(test_presence(&sigs[0], &clone), PresenceVerdict::Vulnerable);
    }

    #[test]
    fn patched_clone_is_flagged_patched() {
        let sigs = signatures_of(&patch());
        let clone = AFTER.replace("buf", "frame").replace("read_byte", "next_octet");
        assert_eq!(test_presence(&sigs[0], &clone), PresenceVerdict::Patched);
    }

    #[test]
    fn unrelated_code_is_not_applicable() {
        let sigs = signatures_of(&patch());
        let other = "void blink(void) {\n    led_on();\n    sleep(1);\n    led_off();\n}\n";
        assert_eq!(test_presence(&sigs[0], other), PresenceVerdict::NotApplicable);
    }

    #[test]
    fn tiny_hunks_yield_no_signatures() {
        let p = Patch::builder("f".repeat(40))
            .file(diff_files("q.c", "int x;\n", "int y;\n", 0))
            .build();
        assert!(signatures_of(&p).is_empty());
    }

    #[test]
    fn scan_reports_hits_per_target() {
        let sigs = signatures_of(&patch());
        let vulnerable = BEFORE.replace("buf", "frame");
        let unrelated = "void noop(void) {}\n";
        let hits = scan_targets(&sigs, &[&vulnerable, unrelated]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], (0, 0, PresenceVerdict::Vulnerable));
    }

    #[test]
    fn corpus_generated_patches_yield_signatures() {
        use patchdb_corpus::{CorpusConfig, GitHubForge};
        let forge = GitHubForge::generate(&CorpusConfig::tiny(44));
        let mut total = 0;
        for (_, c) in forge.all_commits().filter(|(_, c)| c.kind.is_security()) {
            let change = forge.materialize(c);
            total += signatures_of(&change.patch).len();
        }
        assert!(total > 5, "only {total} signatures from a whole tiny forge");
    }
}
