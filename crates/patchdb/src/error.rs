//! The unified error type of the `patchdb` public API.
//!
//! Every fallible path a consumer touches — loading a dataset, parsing
//! its JSON, validating its shape, running the query server, driving the
//! CLI — funnels into one [`enum@Error`], so callers write a single
//! `Result<_, patchdb::Error>` plumbing instead of juggling
//! `Box<dyn Error>`, `JsonError`, `io::Error` and bare `String`s. The
//! enum is `#[non_exhaustive]`: downstream matches need a catch-all arm,
//! which lets future PRs add variants without a breaking release.

use std::fmt;

use patchdb_rt::json::JsonError;

/// Any error the `patchdb` crate (or its CLI) surfaces.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An underlying I/O failure (reading a dataset file, binding a
    /// socket, writing an export).
    Io(std::io::Error),
    /// Input that is not valid JSON at all.
    Parse(JsonError),
    /// Well-formed JSON whose shape does not match the PatchDB schema.
    Schema(String),
    /// A query-server failure (bad configuration, worker pool fault).
    Serve(String),
    /// A command-line usage mistake (unknown flag, missing operand).
    /// The CLI maps this to exit code 2; every other variant exits 1.
    Usage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Parse(e) => write!(f, "invalid JSON: {e}"),
            Error::Schema(msg) => write!(f, "dataset shape mismatch: {msg}"),
            Error::Serve(msg) => write!(f, "serve error: {msg}"),
            Error::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<JsonError> for Error {
    fn from(e: JsonError) -> Self {
        Error::Parse(e)
    }
}

impl Error {
    /// Constructs a [`Error::Usage`] from anything displayable.
    pub fn usage(msg: impl fmt::Display) -> Self {
        Error::Usage(msg.to_string())
    }

    /// Constructs a [`Error::Serve`] from anything displayable.
    pub fn serve(msg: impl fmt::Display) -> Self {
        Error::Serve(msg.to_string())
    }

    /// Whether this is a usage error (the CLI's exit-code-2 class).
    pub fn is_usage(&self) -> bool {
        matches!(self, Error::Usage(_))
    }

    /// A stable machine-readable tag for this variant, used as the
    /// `error.code` field of the query server's JSON error envelope.
    pub fn code(&self) -> &'static str {
        match self {
            Error::Io(_) => "io",
            Error::Parse(_) => "parse",
            Error::Schema(_) => "schema",
            Error::Serve(_) => "serve",
            Error::Usage(_) => "usage",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_prefix_the_failing_layer() {
        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("i/o error"));
        assert!(Error::Schema("nvd missing".into()).to_string().contains("shape mismatch"));
        assert!(Error::serve("pool died").to_string().contains("serve error"));
        // Usage messages print bare: the CLI prepends its own context.
        assert_eq!(Error::usage("unknown flag --x").to_string(), "unknown flag --x");
    }

    #[test]
    fn sources_chain_for_wrapped_errors() {
        use std::error::Error as _;
        let io = Error::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        assert!(Error::Schema("x".into()).source().is_none());
        let parse = Error::from(JsonError::new("bad token"));
        assert!(parse.source().is_some());
        assert!(parse.is_usage() == false && Error::usage("u").is_usage());
    }
}
