//! The end-to-end PatchDB construction pipeline (Fig. 1).

use std::collections::HashMap;

use patch_core::Patch;
use patchdb_corpus::{CorpusConfig, GitHubForge, VerificationOracle};
use patchdb_features::{extract, FeatureVector, RepoContext};
use patchdb_mine::{collect_wild, mine_nvd, sample_wild, WildCommit};
use patchdb_nls::{augment_rounds_with, AugmentationRound, NlsConfig, PoolSpec};
use patchdb_rt::json::Json;
use patchdb_rt::obs::{self, TraceReport};
use patchdb_rt::par;
use patchdb_synth::{synthesize, SynthOptions};

use crate::dataset::{PatchDb, PatchRecord, Source, SyntheticRecord};

/// One unlabeled wild pool in the augmentation plan (a Table II "Set").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPlan {
    /// Display name.
    pub name: String,
    /// Number of wild commits sampled into the pool.
    pub size: usize,
    /// Augmentation rounds to run over it.
    pub rounds: usize,
}

/// Options for [`PatchDb::build`].
///
/// Construct via [`BuildOptions::tiny`] or [`BuildOptions::default_scale`]
/// and refine with the fluent setters — the struct is `#[non_exhaustive]`
/// so new knobs can land without breaking downstream literals:
///
/// ```rust
/// use patchdb::BuildOptions;
///
/// let options = BuildOptions::tiny(42).synthesize(false).threads(2);
/// assert!(!options.synthesize);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BuildOptions {
    /// Synthetic-forge configuration.
    pub corpus: CorpusConfig,
    /// The augmentation plan (Sets I–III in the paper).
    pub pools: Vec<PoolPlan>,
    /// Per-expert verification error rate (0 = perfect experts).
    pub expert_error: f64,
    /// Whether to build the synthetic dataset too.
    pub synthesize: bool,
    /// Cap on synthetic patches per natural patch.
    pub synth_cap: usize,
    /// Pipeline seed (sampling, oracle).
    pub seed: u64,
    /// Worker-thread override for the parallel pipeline stages; `None`
    /// defers to `PATCHDB_THREADS` / available parallelism. Output bytes
    /// are identical at every thread count.
    pub threads: Option<usize>,
    /// Nearest-link-search configuration for the augmentation stage;
    /// `None` uses [`NlsConfig::auto`]. Output bytes are identical for
    /// every configuration — the index modes only change wall time.
    pub nls: Option<NlsConfig>,
}

impl BuildOptions {
    /// The paper's protocol at ~1/20 scale: a ~20K-commit forge, Set I of
    /// 5K with three rounds, Sets II and III of 7K with one round each.
    pub fn default_scale(seed: u64) -> Self {
        BuildOptions {
            corpus: CorpusConfig::default_scale(seed),
            pools: vec![
                PoolPlan { name: "Set I".into(), size: 5_000, rounds: 3 },
                PoolPlan { name: "Set II".into(), size: 7_000, rounds: 1 },
                PoolPlan { name: "Set III".into(), size: 7_000, rounds: 1 },
            ],
            expert_error: 0.02,
            synthesize: true,
            synth_cap: 4,
            seed,
            threads: None,
            nls: None,
        }
    }

    /// A fast configuration for tests and the quickstart example.
    pub fn tiny(seed: u64) -> Self {
        BuildOptions {
            corpus: CorpusConfig {
                n_repos: 30,
                mean_commits_per_repo: 80,
                ..CorpusConfig::default_scale(seed)
            },
            pools: vec![
                PoolPlan { name: "Set I".into(), size: 800, rounds: 2 },
                PoolPlan { name: "Set II".into(), size: 1_200, rounds: 1 },
            ],
            expert_error: 0.0,
            synthesize: true,
            synth_cap: 2,
            seed,
            threads: None,
            nls: None,
        }
    }

    /// Replaces the synthetic-forge configuration.
    pub fn corpus(mut self, corpus: CorpusConfig) -> Self {
        self.corpus = corpus;
        self
    }

    /// Replaces the augmentation plan.
    pub fn pools(mut self, pools: Vec<PoolPlan>) -> Self {
        self.pools = pools;
        self
    }

    /// Sets the per-expert verification error rate.
    pub fn expert_error(mut self, rate: f64) -> Self {
        self.expert_error = rate;
        self
    }

    /// Enables or disables the synthetic dataset.
    pub fn synthesize(mut self, on: bool) -> Self {
        self.synthesize = on;
        self
    }

    /// Sets the cap on synthetic patches per natural patch.
    pub fn synth_cap(mut self, cap: usize) -> Self {
        self.synth_cap = cap;
        self
    }

    /// Sets the pipeline seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins the worker-thread count for the parallel pipeline stages
    /// (overriding `PATCHDB_THREADS`); `0` clamps to `1`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Replaces the augmentation-stage NLS configuration (index mode,
    /// cell/probe knobs, pruning). A [`BuildOptions::threads`] override
    /// still wins over the config's own thread count.
    pub fn nls(mut self, config: NlsConfig) -> Self {
        self.nls = Some(config);
        self
    }
}

/// Everything the construction produced.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BuildReport {
    /// The assembled dataset.
    pub db: PatchDb,
    /// Per-round Table II rows.
    pub rounds: Vec<AugmentationRound>,
    /// Size of the wild pool the sets were sampled from.
    pub wild_total: usize,
    /// Commits the oracle was asked to verify (human effort).
    pub verification_effort: usize,
    /// Span tree + metrics of this build, present iff tracing was on
    /// (`PATCHDB_TRACE=1` or `obs::set_enabled(true)`) when the build
    /// started. Purely observational: the dataset bytes are identical
    /// with or without it.
    pub telemetry: Option<BuildTelemetry>,
}

/// The observability section of a [`BuildReport`]: a snapshot of the
/// `rt::obs` registry taken right after the build's root span closed.
#[derive(Debug, Clone)]
pub struct BuildTelemetry {
    /// Spans, counters and histograms recorded during the build.
    pub trace: TraceReport,
}

impl BuildTelemetry {
    /// Schema tag stamped into [`BuildTelemetry::to_json`], dispatched on
    /// by the `check-bench-json` validator.
    pub const SCHEMA: &'static str = "patchdb-trace/v1";

    /// Serializes as the `TRACE_build.json` document: stable key order,
    /// durations only (never timestamps-of-day).
    pub fn to_json(&self) -> Json {
        let Json::Obj(mut fields) = self.trace.to_json() else {
            unreachable!("TraceReport::to_json returns an object");
        };
        let mut all = vec![("schema".to_owned(), Json::Str(Self::SCHEMA.to_owned()))];
        all.append(&mut fields);
        Json::Obj(all)
    }
}

impl PatchDb {
    /// Runs the full construction pipeline against a synthetic forge.
    pub fn build(options: &BuildOptions) -> BuildReport {
        let forge = GitHubForge::generate(&options.corpus);
        Self::build_on(&forge, options)
    }

    /// Runs the pipeline against an existing forge (lets callers reuse one
    /// forge across experiments).
    ///
    /// The per-commit materialize+extract pass and the synthesis pass fan
    /// out across `PATCHDB_THREADS` workers (order-preserving, so output
    /// is byte-identical at any thread count); the verification oracle is
    /// always consulted serially, in deterministic candidate order.
    pub fn build_on(forge: &GitHubForge, options: &BuildOptions) -> BuildReport {
        // One build owns the whole trace: start from an empty registry so
        // the report covers exactly this run. With tracing off this is
        // two relaxed loads and nothing else.
        let tracing = obs::enabled();
        if tracing {
            obs::reset();
        }
        let build_span = obs::span("build");

        let threads = options.threads.unwrap_or_else(|| par::configured_threads(16));
        let contexts: HashMap<&str, RepoContext> = forge
            .repos()
            .iter()
            .map(|r| {
                (
                    r.name.as_str(),
                    RepoContext { total_files: r.total_files, total_functions: r.total_functions },
                )
            })
            .collect();

        // ── Step 1: the NVD-based dataset.
        let stage = obs::span("mine_nvd");
        let mined = mine_nvd(forge);
        let mut nvd_records = Vec::with_capacity(mined.patches.len());
        for m in &mined.patches {
            let ctx = contexts.get(m.repo.as_str());
            let truth = forge
                .find_commit(&m.repo, &m.commit)
                .and_then(|(_, c)| c.kind.category());
            nvd_records.push(PatchRecord {
                commit: m.commit,
                repo: m.repo.clone(),
                cve_id: Some(m.cve_id.clone()),
                message: m.patch.message.clone(),
                features: extract(&m.patch, ctx),
                patch: m.patch.clone(),
                source: Source::Nvd,
                truth_category: truth,
            });
        }

        obs::counter_add("build.nvd_records", nvd_records.len() as u64);
        drop(stage);

        // ── Step 2: wild collection and pool sampling.
        let stage = obs::span("collect_wild");
        let wild = collect_wild(forge, &mined.claimed_ids());
        let total_pool: usize = options.pools.iter().map(|p| p.size).sum();
        let sampled = sample_wild(&wild, total_pool.min(wild.len()), options.seed ^ 0x9e37);

        // Features for every pooled wild commit (cleaned patches; commits
        // with no C/C++ content keep their raw patch features). Each
        // commit is materialized exactly once here and the cleaned patch
        // kept, so record assembly below never re-materializes.
        let universe: Vec<&WildCommit> = sampled.iter().collect();
        let prepared: Vec<(FeatureVector, Patch)> = par::map_chunked(&sampled, threads, |w| {
            let change = forge.materialize(w.commit);
            let patch = change.patch.retain_c_files().unwrap_or(change.patch);
            (extract(&patch, Some(&w.repo_context())), patch)
        });
        let (universe_features, universe_patches): (Vec<FeatureVector>, Vec<Patch>) =
            prepared.into_iter().unzip();

        // Carve the universe into the configured pools, in order.
        let mut pools = Vec::new();
        let mut cursor = 0usize;
        for plan in &options.pools {
            let end = (cursor + plan.size).min(universe.len());
            pools.push(PoolSpec {
                name: plan.name.clone(),
                members: (cursor..end).collect(),
                rounds: plan.rounds,
            });
            cursor = end;
        }
        obs::counter_add("build.wild_total", wild.len() as u64);
        obs::counter_add("build.sampled", sampled.len() as u64);
        drop(stage);

        // ── Step 3: nearest-link augmentation with expert verification.
        let stage = obs::span("augment");
        let oracle = VerificationOracle::new(options.expert_error, options.seed ^ 0x0c1e);
        let seed_features: Vec<FeatureVector> =
            nvd_records.iter().map(|r| r.features).collect();
        let mut nls_cfg = options.nls.clone().unwrap_or_else(NlsConfig::auto);
        if let Some(t) = options.threads {
            nls_cfg.threads = t.max(1);
        }
        let (rounds, sec_idx, nonsec_idx) =
            augment_rounds_with(&seed_features, &universe_features, &pools, &nls_cfg, |i| {
                oracle.verify(universe[i].commit)
            });
        drop(stage);

        // ── Record assembly for the augmented sets (synthesis below
        // consumes these records, so assembly runs first).
        let stage = obs::span("assemble");
        let to_record = |i: usize, source: Source| -> PatchRecord {
            let w = universe[i];
            let patch = universe_patches[i].clone();
            PatchRecord {
                commit: w.commit.id,
                repo: w.repo.name.clone(),
                cve_id: None,
                message: patch.message.clone(),
                features: universe_features[i],
                patch,
                source,
                truth_category: w.commit.kind.category(),
            }
        };
        let wild_records: Vec<PatchRecord> =
            sec_idx.iter().map(|&i| to_record(i, Source::Wild)).collect();
        let nonsec_records: Vec<PatchRecord> =
            nonsec_idx.iter().map(|&i| to_record(i, Source::NonSecurity)).collect();
        obs::counter_add("build.wild_records", wild_records.len() as u64);
        obs::counter_add("build.nonsecurity_records", nonsec_records.len() as u64);
        drop(stage);

        // ── Step 4: the synthetic dataset. Each source record is an
        // independent synthesis job; fan them out in input order (the
        // flattened result is then identical to the serial loop).
        let stage = obs::span("synthesize");
        let mut synthetic = Vec::new();
        if options.synthesize {
            let synth_opts = SynthOptions {
                max_per_patch: options.synth_cap,
                ..SynthOptions::default()
            };
            let jobs: Vec<(&PatchRecord, bool)> = nvd_records
                .iter()
                .chain(&wild_records)
                .map(|r| (r, true))
                .chain(nonsec_records.iter().map(|r| (r, false)))
                .collect();
            let batches: Vec<Vec<SyntheticRecord>> =
                par::map_chunked(&jobs, threads, |&(record, is_security)| {
                    let Some((_, commit)) = forge.find_commit(&record.repo, &record.commit)
                    else {
                        return Vec::new();
                    };
                    let change = forge.materialize(commit);
                    synthesize(
                        &record.patch,
                        &change.before_files,
                        &change.after_files,
                        &synth_opts,
                    )
                    .into_iter()
                    .map(|s| {
                        let features = extract(&s.patch, contexts.get(record.repo.as_str()));
                        SyntheticRecord {
                            patch: s.patch,
                            derived_from: record.commit,
                            is_security,
                            features,
                        }
                    })
                    .collect()
                });
            synthetic = batches.into_iter().flatten().collect();
        }
        obs::counter_add("build.synthetic_records", synthetic.len() as u64);
        drop(stage);

        let effort = oracle.effort();
        drop(build_span); // close the root before snapshotting its duration
        let telemetry = tracing.then(|| BuildTelemetry { trace: obs::report() });
        BuildReport {
            db: PatchDb {
                nvd: nvd_records,
                wild: wild_records,
                non_security: nonsec_records,
                synthetic,
            },
            rounds,
            wild_total: wild.len(),
            verification_effort: effort,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BuildReport {
        PatchDb::build(&BuildOptions::tiny(9))
    }

    #[test]
    fn pipeline_produces_all_components() {
        let r = report();
        let s = r.db.stats();
        assert!(s.nvd_security > 10, "nvd {}", s.nvd_security);
        assert!(s.wild_security > 10, "wild {}", s.wild_security);
        assert!(s.non_security > 20, "nonsec {}", s.non_security);
        assert!(s.synthetic_security > 0);
        assert!(s.synthetic_non_security > 0);
        assert_eq!(r.rounds.len(), 3);
    }

    #[test]
    fn nvd_records_carry_cves_wild_ones_do_not() {
        let r = report();
        assert!(r.db.nvd.iter().all(|p| p.cve_id.is_some()));
        assert!(r.db.wild.iter().all(|p| p.cve_id.is_none()));
    }

    #[test]
    fn augmentation_beats_base_rate() {
        let r = report();
        // Base security rate in the tiny corpus is 8%; the nearest link
        // rounds must do substantially better on average.
        let mean_ratio: f64 =
            r.rounds.iter().map(|x| x.ratio).sum::<f64>() / r.rounds.len() as f64;
        assert!(mean_ratio > 0.16, "mean NLS ratio {mean_ratio}");
    }

    #[test]
    fn wild_records_are_truly_security_with_perfect_oracle() {
        let r = report();
        // tiny options use a perfect oracle, so every wild record has a
        // ground-truth category.
        assert!(r.db.wild.iter().all(|p| p.truth_category.is_some()));
        assert!(r.db.non_security.iter().all(|p| p.truth_category.is_none()));
    }

    #[test]
    fn effort_equals_candidates() {
        let r = report();
        let candidates: usize = r.rounds.iter().map(|x| x.candidates).sum();
        assert_eq!(r.verification_effort, candidates);
    }

    #[test]
    fn build_is_deterministic() {
        let a = PatchDb::build(&BuildOptions::tiny(4));
        let b = PatchDb::build(&BuildOptions::tiny(4));
        assert_eq!(a.db.stats(), b.db.stats());
        assert_eq!(
            a.db.wild.iter().map(|p| p.commit).collect::<Vec<_>>(),
            b.db.wild.iter().map(|p| p.commit).collect::<Vec<_>>()
        );
    }

    #[test]
    fn builder_setters_compose_and_threads_pin_output() {
        let options = BuildOptions::tiny(4)
            .synthesize(false)
            .expert_error(0.5)
            .synth_cap(9)
            .seed(11)
            .threads(0); // clamps to 1
        assert!(!options.synthesize);
        assert_eq!(options.expert_error, 0.5);
        assert_eq!(options.synth_cap, 9);
        assert_eq!(options.seed, 11);
        assert_eq!(options.threads, Some(1));

        let one = PatchDb::build(&BuildOptions::tiny(4).synthesize(false).threads(1));
        let eight = PatchDb::build(&BuildOptions::tiny(4).synthesize(false).threads(8));
        assert_eq!(
            one.db.to_json().unwrap(),
            eight.db.to_json().unwrap(),
            "thread count leaked into output bytes"
        );
    }
}

