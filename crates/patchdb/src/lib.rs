//! # patchdb
//!
//! The top of the reproduction: construct **PatchDB** — the NVD-based,
//! wild-based, and synthetic security-patch datasets of the DSN 2021
//! paper — end to end against the synthetic forge, and analyze it.
//!
//! The construction pipeline (Fig. 1):
//!
//! 1. mine the NVD for `Patch`-tagged GitHub commits (`patchdb-mine`);
//! 2. collect the wild commit pool and iteratively augment the security
//!    set with **nearest link search** plus simulated expert verification
//!    (`patchdb-nls`), growing the wild-based dataset;
//! 3. oversample natural patches at the source level into the synthetic
//!    dataset (`patchdb-synth`).
//!
//! ```rust,no_run
//! use patchdb::{BuildOptions, PatchDb};
//!
//! let options = BuildOptions::default_scale(42);
//! let report = PatchDb::build(&options);
//! let db = &report.db;
//! println!(
//!     "PatchDB: {} NVD + {} wild security patches, {} non-security, {} synthetic",
//!     db.nvd.len(), db.wild.len(), db.non_security.len(), db.synthetic.len()
//! );
//! # let _ = report;
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
mod patterns;
mod pipeline;
pub mod prelude;
mod signatures;
mod taxonomy;

pub use dataset::{DatasetStats, PatchDb, PatchRecord, Source, SyntheticRecord};
pub use error::Error;
pub use patterns::{mine_fix_patterns, pattern_frequencies, FixPattern};
pub use signatures::{
    scan_targets, signatures_of, test_presence, PatchSignature, PresenceVerdict,
};
pub use pipeline::{BuildOptions, BuildReport, BuildTelemetry, PoolPlan};
pub use taxonomy::{classify_patch, taxonomy_distribution};

// Re-exports so downstream users need only this crate.
pub use patchdb_corpus::{CategoryMix, PatchCategory, ALL_CATEGORIES};
pub use patchdb_features::{FeatureVector, FEATURE_DIM, FEATURE_NAMES};
pub use patchdb_nls::{AugmentationRound, IndexMode, NlsConfig};
pub use patchdb_rt::json::{Json, JsonError};
