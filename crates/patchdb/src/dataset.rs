//! The PatchDB container: records, statistics, and JSON export.

use std::collections::HashMap;
use std::fmt;

use patch_core::{CommitId, Patch};
use patchdb_corpus::PatchCategory;
use patchdb_features::FeatureVector;
use patchdb_rt::json::{FromJson, Json, JsonError, ToJson};

/// Which component of PatchDB a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Mined from NVD `Patch` hyperlinks.
    Nvd,
    /// Found in the wild via nearest link search + verification.
    Wild,
    /// Verified non-security (the cleaned negative set).
    NonSecurity,
}

/// One natural patch in the dataset.
#[derive(Debug, Clone)]
pub struct PatchRecord {
    /// Commit hash — every natural patch is "accessible on GitHub".
    pub commit: CommitId,
    /// Repository the commit lives in.
    pub repo: String,
    /// CVE id, for NVD-sourced records.
    pub cve_id: Option<String>,
    /// Commit message.
    pub message: String,
    /// The cleaned (C/C++-only) patch.
    pub patch: Patch,
    /// Table I features, unweighted.
    pub features: FeatureVector,
    /// Which component the record belongs to.
    pub source: Source,
    /// Ground-truth Table V category (available because the corpus is
    /// synthetic; the real PatchDB has this only for a hand-labeled 5K
    /// subset). `None` for non-security records.
    pub truth_category: Option<PatchCategory>,
}

/// One synthetic patch derived from a natural one.
#[derive(Debug, Clone)]
pub struct SyntheticRecord {
    /// The synthetic patch.
    pub patch: Patch,
    /// Commit id of the natural patch it was derived from.
    pub derived_from: CommitId,
    /// Whether the base patch was a security patch.
    pub is_security: bool,
    /// Table I features of the synthetic patch.
    pub features: FeatureVector,
}

/// The assembled PatchDB.
#[derive(Debug, Clone, Default)]
pub struct PatchDb {
    /// NVD-based security patches.
    pub nvd: Vec<PatchRecord>,
    /// Wild-based security patches (silent fixes found by augmentation).
    pub wild: Vec<PatchRecord>,
    /// Cleaned non-security patches.
    pub non_security: Vec<PatchRecord>,
    /// Synthetic patches (both classes).
    pub synthetic: Vec<SyntheticRecord>,
}

/// Headline counts, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// |NVD-based security patches|.
    pub nvd_security: usize,
    /// |wild-based security patches|.
    pub wild_security: usize,
    /// |cleaned non-security patches|.
    pub non_security: usize,
    /// |synthetic security patches|.
    pub synthetic_security: usize,
    /// |synthetic non-security patches|.
    pub synthetic_non_security: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NVD + {} wild security ({} total), {} non-security, {}+{} synthetic",
            self.nvd_security,
            self.wild_security,
            self.nvd_security + self.wild_security,
            self.non_security,
            self.synthetic_security,
            self.synthetic_non_security
        )
    }
}

impl PatchDb {
    /// Headline counts.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            nvd_security: self.nvd.len(),
            wild_security: self.wild.len(),
            non_security: self.non_security.len(),
            synthetic_security: self.synthetic.iter().filter(|s| s.is_security).count(),
            synthetic_non_security: self.synthetic.iter().filter(|s| !s.is_security).count(),
        }
    }

    /// All natural security patches (NVD + wild).
    pub fn security_patches(&self) -> impl Iterator<Item = &PatchRecord> {
        self.nvd.iter().chain(self.wild.iter())
    }

    /// Ground-truth category histogram over a set of records, normalized.
    pub fn category_distribution<'a, I>(records: I) -> HashMap<PatchCategory, f64>
    where
        I: IntoIterator<Item = &'a PatchRecord>,
    {
        let mut counts: HashMap<PatchCategory, usize> = HashMap::new();
        let mut total = 0usize;
        for r in records {
            if let Some(c) = r.truth_category {
                *counts.entry(c).or_insert(0) += 1;
                total += 1;
            }
        }
        counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total.max(1) as f64))
            .collect()
    }

    /// Serializes the dataset to pretty JSON (the shape the real PatchDB
    /// release ships in).
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` keeps the seed-era signature so
    /// callers' `?` plumbing still works.
    pub fn to_json(&self) -> Result<String, JsonError> {
        Ok(ToJson::to_json(self).to_pretty_string())
    }

    /// Deserializes a dataset from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or a mismatched shape.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        FromJson::from_json(&Json::parse(text)?)
    }
}

patchdb_rt::impl_json_unit_enum!(Source { Nvd, Wild, NonSecurity });
patchdb_rt::impl_to_from_json!(PatchRecord {
    commit,
    repo,
    cve_id,
    message,
    patch,
    features,
    source,
    truth_category,
});
patchdb_rt::impl_to_from_json!(SyntheticRecord { patch, derived_from, is_security, features });
patchdb_rt::impl_to_from_json!(PatchDb { nvd, wild, non_security, synthetic });

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::diff_files;

    fn record(source: Source, cat: Option<PatchCategory>) -> PatchRecord {
        let patch = Patch::builder("a".repeat(40))
            .message("m")
            .file(diff_files("x.c", "a();\n", "b();\n", 3))
            .build();
        PatchRecord {
            commit: patch.commit,
            repo: "r".into(),
            cve_id: None,
            message: "m".into(),
            features: patchdb_features::extract(&patch, None),
            patch,
            source,
            truth_category: cat,
        }
    }

    #[test]
    fn stats_count_by_component() {
        let db = PatchDb {
            nvd: vec![record(Source::Nvd, Some(PatchCategory::BoundCheck))],
            wild: vec![
                record(Source::Wild, Some(PatchCategory::FunctionCall)),
                record(Source::Wild, Some(PatchCategory::NullCheck)),
            ],
            non_security: vec![record(Source::NonSecurity, None)],
            synthetic: vec![],
        };
        let s = db.stats();
        assert_eq!(s.nvd_security, 1);
        assert_eq!(s.wild_security, 2);
        assert_eq!(s.non_security, 1);
        assert_eq!(db.security_patches().count(), 3);
    }

    #[test]
    fn distribution_normalizes() {
        let records = vec![
            record(Source::Nvd, Some(PatchCategory::BoundCheck)),
            record(Source::Nvd, Some(PatchCategory::BoundCheck)),
            record(Source::Nvd, Some(PatchCategory::NullCheck)),
        ];
        let d = PatchDb::category_distribution(&records);
        assert!((d[&PatchCategory::BoundCheck] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[&PatchCategory::NullCheck] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let db = PatchDb {
            nvd: vec![record(Source::Nvd, Some(PatchCategory::Redesign))],
            ..PatchDb::default()
        };
        let json = db.to_json().unwrap();
        let back = PatchDb::from_json(&json).unwrap();
        assert_eq!(back.nvd.len(), 1);
        assert_eq!(back.nvd[0].commit, db.nvd[0].commit);
        assert_eq!(back.nvd[0].patch, db.nvd[0].patch);
    }
}
