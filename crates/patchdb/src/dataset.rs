//! The PatchDB container: records, statistics, and JSON export.

use std::collections::HashMap;
use std::fmt;

use patch_core::{CommitId, Patch};
use patchdb_corpus::PatchCategory;
use patchdb_features::FeatureVector;
use patchdb_rt::json::{FromJson, Json, ToJson};

use crate::error::Error;

/// Which component of PatchDB a record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Mined from NVD `Patch` hyperlinks.
    Nvd,
    /// Found in the wild via nearest link search + verification.
    Wild,
    /// Verified non-security (the cleaned negative set).
    NonSecurity,
}

/// One natural patch in the dataset.
#[derive(Debug, Clone)]
pub struct PatchRecord {
    /// Commit hash — every natural patch is "accessible on GitHub".
    pub commit: CommitId,
    /// Repository the commit lives in.
    pub repo: String,
    /// CVE id, for NVD-sourced records.
    pub cve_id: Option<String>,
    /// Commit message.
    pub message: String,
    /// The cleaned (C/C++-only) patch.
    pub patch: Patch,
    /// Table I features, unweighted.
    pub features: FeatureVector,
    /// Which component the record belongs to.
    pub source: Source,
    /// Ground-truth Table V category (available because the corpus is
    /// synthetic; the real PatchDB has this only for a hand-labeled 5K
    /// subset). `None` for non-security records.
    pub truth_category: Option<PatchCategory>,
}

/// One synthetic patch derived from a natural one.
#[derive(Debug, Clone)]
pub struct SyntheticRecord {
    /// The synthetic patch.
    pub patch: Patch,
    /// Commit id of the natural patch it was derived from.
    pub derived_from: CommitId,
    /// Whether the base patch was a security patch.
    pub is_security: bool,
    /// Table I features of the synthetic patch.
    pub features: FeatureVector,
}

/// The assembled PatchDB.
#[derive(Debug, Clone, Default)]
pub struct PatchDb {
    /// NVD-based security patches.
    pub nvd: Vec<PatchRecord>,
    /// Wild-based security patches (silent fixes found by augmentation).
    pub wild: Vec<PatchRecord>,
    /// Cleaned non-security patches.
    pub non_security: Vec<PatchRecord>,
    /// Synthetic patches (both classes).
    pub synthetic: Vec<SyntheticRecord>,
}

/// Headline counts, for reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// |NVD-based security patches|.
    pub nvd_security: usize,
    /// |wild-based security patches|.
    pub wild_security: usize,
    /// |cleaned non-security patches|.
    pub non_security: usize,
    /// |synthetic security patches|.
    pub synthetic_security: usize,
    /// |synthetic non-security patches|.
    pub synthetic_non_security: usize,
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} NVD + {} wild security ({} total), {} non-security, {}+{} synthetic",
            self.nvd_security,
            self.wild_security,
            self.nvd_security + self.wild_security,
            self.non_security,
            self.synthetic_security,
            self.synthetic_non_security
        )
    }
}

impl PatchDb {
    /// Headline counts.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            nvd_security: self.nvd.len(),
            wild_security: self.wild.len(),
            non_security: self.non_security.len(),
            synthetic_security: self.synthetic.iter().filter(|s| s.is_security).count(),
            synthetic_non_security: self.synthetic.iter().filter(|s| !s.is_security).count(),
        }
    }

    /// All natural security patches (NVD + wild).
    pub fn security_patches(&self) -> impl Iterator<Item = &PatchRecord> {
        self.nvd.iter().chain(self.wild.iter())
    }

    /// Raw ground-truth category counts over a set of records, plus the
    /// number of labeled records. The un-normalized statistic behind
    /// [`PatchDb::category_distribution`]: counts over disjoint record
    /// subsets add, so a sharded index can sum per-shard counts and
    /// normalize once, reproducing the whole-set distribution exactly.
    pub fn category_counts<'a, I>(records: I) -> (HashMap<PatchCategory, usize>, usize)
    where
        I: IntoIterator<Item = &'a PatchRecord>,
    {
        let mut counts: HashMap<PatchCategory, usize> = HashMap::new();
        let mut total = 0usize;
        for r in records {
            if let Some(c) = r.truth_category {
                *counts.entry(c).or_insert(0) += 1;
                total += 1;
            }
        }
        (counts, total)
    }

    /// Ground-truth category histogram over a set of records, normalized.
    pub fn category_distribution<'a, I>(records: I) -> HashMap<PatchCategory, f64>
    where
        I: IntoIterator<Item = &'a PatchRecord>,
    {
        let (counts, total) = Self::category_counts(records);
        counts
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total.max(1) as f64))
            .collect()
    }

    /// Serializes the dataset to pretty JSON (the shape the real PatchDB
    /// release ships in).
    ///
    /// # Errors
    ///
    /// Infallible today; the `Result` keeps the seed-era signature so
    /// callers' `?` plumbing still works.
    pub fn to_json(&self) -> Result<String, Error> {
        Ok(ToJson::to_json(self).to_pretty_string())
    }

    /// Deserializes a dataset from JSON.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] when the text is not JSON at all;
    /// [`Error::Schema`] when it is JSON of the wrong shape.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        let json = Json::parse(text).map_err(Error::Parse)?;
        FromJson::from_json(&json).map_err(|e| Error::Schema(e.to_string()))
    }

    /// Every natural record — NVD, wild, and non-security — in stable
    /// component order. Synthetic records are excluded (they have no
    /// commit of their own; see [`SyntheticRecord::derived_from`]).
    pub fn records(&self) -> impl Iterator<Item = &PatchRecord> {
        self.nvd.iter().chain(self.wild.iter()).chain(self.non_security.iter())
    }

    /// Looks up a natural record by full or prefix commit hex (case
    /// sensitive, at least 4 characters). Returns `None` when nothing
    /// matches or the prefix is ambiguous — the query surface must never
    /// silently pick one of several commits.
    pub fn find_patch(&self, id: &str) -> Option<&PatchRecord> {
        let (hits, first) = self.find_patch_counted(id);
        if hits == 1 { first } else { None }
    }

    /// Prefix lookup that also reports how many records matched: the
    /// match count and the first matching record (if any). A sharded
    /// index sums per-shard counts to decide global uniqueness — a
    /// prefix unique within one shard but matched in another must still
    /// resolve to nothing, exactly as the unsharded lookup would.
    pub fn find_patch_counted(&self, id: &str) -> (usize, Option<&PatchRecord>) {
        if id.len() < 4 {
            return (0, None);
        }
        let mut hits = 0usize;
        let mut first: Option<&PatchRecord> = None;
        for r in self.records() {
            if r.commit.to_string().starts_with(id) {
                hits += 1;
                if first.is_none() {
                    first = Some(r);
                }
            }
        }
        (hits, first)
    }
}

patchdb_rt::impl_json_unit_enum!(Source { Nvd, Wild, NonSecurity });
patchdb_rt::impl_to_from_json!(PatchRecord {
    commit,
    repo,
    cve_id,
    message,
    patch,
    features,
    source,
    truth_category,
});
patchdb_rt::impl_to_from_json!(SyntheticRecord { patch, derived_from, is_security, features });
patchdb_rt::impl_to_from_json!(PatchDb { nvd, wild, non_security, synthetic });

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::diff_files;

    fn record(source: Source, cat: Option<PatchCategory>) -> PatchRecord {
        let patch = Patch::builder("a".repeat(40))
            .message("m")
            .file(diff_files("x.c", "a();\n", "b();\n", 3))
            .build();
        PatchRecord {
            commit: patch.commit,
            repo: "r".into(),
            cve_id: None,
            message: "m".into(),
            features: patchdb_features::extract(&patch, None),
            patch,
            source,
            truth_category: cat,
        }
    }

    #[test]
    fn stats_count_by_component() {
        let db = PatchDb {
            nvd: vec![record(Source::Nvd, Some(PatchCategory::BoundCheck))],
            wild: vec![
                record(Source::Wild, Some(PatchCategory::FunctionCall)),
                record(Source::Wild, Some(PatchCategory::NullCheck)),
            ],
            non_security: vec![record(Source::NonSecurity, None)],
            synthetic: vec![],
        };
        let s = db.stats();
        assert_eq!(s.nvd_security, 1);
        assert_eq!(s.wild_security, 2);
        assert_eq!(s.non_security, 1);
        assert_eq!(db.security_patches().count(), 3);
    }

    #[test]
    fn distribution_normalizes() {
        let records = vec![
            record(Source::Nvd, Some(PatchCategory::BoundCheck)),
            record(Source::Nvd, Some(PatchCategory::BoundCheck)),
            record(Source::Nvd, Some(PatchCategory::NullCheck)),
        ];
        let d = PatchDb::category_distribution(&records);
        assert!((d[&PatchCategory::BoundCheck] - 2.0 / 3.0).abs() < 1e-12);
        assert!((d[&PatchCategory::NullCheck] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn find_patch_resolves_unique_prefixes_only() {
        let db = PatchDb {
            nvd: vec![record(Source::Nvd, Some(PatchCategory::BoundCheck))],
            non_security: vec![record(Source::NonSecurity, None)],
            ..PatchDb::default()
        };
        assert_eq!(db.records().count(), 2);
        let full = db.nvd[0].commit.to_string();
        // Full id and an 8-char prefix resolve; both test records share
        // the same commit ("a"*40), so the shared prefix is ambiguous
        // across components and must return None.
        assert!(db.find_patch(&full).is_none(), "ambiguous across components");
        let only = PatchDb {
            nvd: vec![record(Source::Nvd, Some(PatchCategory::BoundCheck))],
            ..PatchDb::default()
        };
        assert!(only.find_patch(&full).is_some());
        assert!(only.find_patch(&full[..8]).is_some());
        assert!(only.find_patch(&full[..3]).is_none(), "prefix too short");
        assert!(only.find_patch("ffff").is_none(), "no match");
    }

    #[test]
    fn from_json_distinguishes_parse_from_schema_errors() {
        assert!(matches!(PatchDb::from_json("{not json"), Err(Error::Parse(_))));
        assert!(matches!(PatchDb::from_json("{\"nvd\": 3}"), Err(Error::Schema(_))));
    }

    #[test]
    fn json_round_trip() {
        let db = PatchDb {
            nvd: vec![record(Source::Nvd, Some(PatchCategory::Redesign))],
            ..PatchDb::default()
        };
        let json = db.to_json().unwrap();
        let back = PatchDb::from_json(&json).unwrap();
        assert_eq!(back.nvd.len(), 1);
        assert_eq!(back.nvd[0].commit, db.nvd[0].commit);
        assert_eq!(back.nvd[0].patch, db.nvd[0].patch);
    }
}
