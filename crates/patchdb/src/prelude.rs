//! One-line import of the cross-crate surface real consumers use.
//!
//! The CLI, the examples, and the integration tests all need the same
//! dozen names scattered across `patchdb` and its re-exports; `use
//! patchdb::prelude::*;` pulls in exactly that working set:
//!
//! ```rust
//! use patchdb::prelude::*;
//!
//! let report = PatchDb::build(&BuildOptions::tiny(42).synthesize(false));
//! for record in report.db.security_patches() {
//!     let _category = classify_patch(&record.patch);
//!     let _sigs = signatures_of(&record.patch);
//! }
//! ```

pub use crate::dataset::{DatasetStats, PatchDb, PatchRecord, Source, SyntheticRecord};
pub use crate::error::Error;
pub use crate::patterns::{mine_fix_patterns, pattern_frequencies, FixPattern};
pub use crate::pipeline::{BuildOptions, BuildReport, BuildTelemetry, PoolPlan};
pub use crate::signatures::{
    scan_targets, signatures_of, test_presence, PatchSignature, PresenceVerdict,
};
pub use crate::taxonomy::{classify_patch, taxonomy_distribution};

// The cross-crate types those APIs hand out or take in.
pub use patch_core::{CommitId, Patch};
pub use patchdb_corpus::{PatchCategory, ALL_CATEGORIES};
pub use patchdb_features::{extract, FeatureVector, FEATURE_DIM, FEATURE_NAMES};
pub use patchdb_nls::AugmentationRound;
