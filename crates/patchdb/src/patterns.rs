//! Fix-pattern mining (Section V-A-2 / Table VII): summarize how security
//! patches fix their vulnerabilities, beyond the coarse 12-type taxonomy.
//!
//! The paper gives two example patterns discovered by eyeballing PatchDB —
//! race-condition fixes (wrap a vulnerable op in `lock`/`unlock`) and
//! data-leakage fixes (scrub/release the critical value after its last
//! use) — and argues a large dataset enables mining such patterns
//! automatically. This module is that miner: rule-driven recognizers over
//! hunk bodies, extensible with new patterns.

use clang_lite::{tokenize_fragment, TokenKind};
use patch_core::{LineKind, Patch};

/// A recognized fix pattern (Table VII and close cousins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixPattern {
    /// `+lock(cv); … vulnerable_op(cv); … +unlock(cv);` — atomicity added
    /// around an existing operation.
    RaceCondition,
    /// `+memset(cv, …)` / `+free(cv)` after the last use — scrub or
    /// release a critical value to stop leakage.
    DataLeakage,
    /// A guard (`if … return/goto`) inserted before an existing operation.
    GuardedOperation,
    /// An unsafe library call replaced by its bounded counterpart on the
    /// same line shape (`strcpy`→`strlcpy`, `sprintf`→`snprintf`, …).
    SaferCallSwap,
}

impl FixPattern {
    /// Human-readable name.
    pub fn label(self) -> &'static str {
        match self {
            FixPattern::RaceCondition => "race condition (lock/unlock added)",
            FixPattern::DataLeakage => "data leakage (scrub/release added)",
            FixPattern::GuardedOperation => "guarded operation (check inserted)",
            FixPattern::SaferCallSwap => "safer call swap",
        }
    }
}

const LOCK_CALLS: &[&str] =
    &["lock", "mutex_lock", "spin_lock", "spin_lock_bh", "read_lock", "write_lock"];
const UNLOCK_CALLS: &[&str] = &[
    "unlock", "mutex_unlock", "spin_unlock", "spin_unlock_bh", "read_unlock", "write_unlock",
];
const SCRUB_CALLS: &[&str] =
    &["memset", "memzero_explicit", "free", "kfree", "kzfree", "vfree", "put_ref"];
const UNSAFE_TO_SAFE: &[(&str, &[&str])] = &[
    ("strcpy", &["strlcpy", "strncpy", "strscpy"]),
    ("strcat", &["strlcat", "strncat"]),
    ("sprintf", &["snprintf", "scnprintf"]),
    ("gets", &["fgets"]),
];

/// Mines the fix patterns realized by one security patch. A patch can
/// realize several (e.g. a guard plus a release).
pub fn mine_fix_patterns(patch: &Patch) -> Vec<FixPattern> {
    let mut out = Vec::new();
    for hunk in patch.hunks() {
        let added: Vec<&str> = hunk.added().map(|l| l.content.as_str()).collect();
        let removed: Vec<&str> = hunk.removed().map(|l| l.content.as_str()).collect();
        let context_exists = hunk.lines.iter().any(|l| l.kind == LineKind::Context);

        if has_race_pattern(&added, context_exists) {
            push_unique(&mut out, FixPattern::RaceCondition);
        }
        if has_scrub_pattern(&added) {
            push_unique(&mut out, FixPattern::DataLeakage);
        }
        if has_guard_pattern(&added) {
            push_unique(&mut out, FixPattern::GuardedOperation);
        }
        if has_safer_swap(&added, &removed) {
            push_unique(&mut out, FixPattern::SaferCallSwap);
        }
    }
    out
}

fn push_unique(v: &mut Vec<FixPattern>, p: FixPattern) {
    if !v.contains(&p) {
        v.push(p);
    }
}

/// Calls whose callee name ends with any of the suffixes.
fn added_calls_with_suffix(lines: &[&str], suffixes: &[&str]) -> usize {
    lines
        .iter()
        .flat_map(|l| {
            let toks = tokenize_fragment(l, 1);
            let mut hits = 0usize;
            for w in toks.windows(2) {
                if w[0].kind == TokenKind::Ident
                    && w[1].is_punct("(")
                    && suffixes.iter().any(|s| {
                        w[0].text == *s || w[0].text.ends_with(&format!("_{s}"))
                    })
                {
                    hits += 1;
                }
            }
            std::iter::once(hits)
        })
        .sum()
}

/// Race pattern: both a lock and an unlock acquired in the added lines,
/// around surviving (context) code.
fn has_race_pattern(added: &[&str], context_exists: bool) -> bool {
    context_exists
        && added_calls_with_suffix(added, LOCK_CALLS) > 0
        && added_calls_with_suffix(added, UNLOCK_CALLS) > 0
}

/// Leakage pattern: a scrub/release call added (and not part of a guard).
fn has_scrub_pattern(added: &[&str]) -> bool {
    added
        .iter()
        .any(|l| !l.trim_start().starts_with("if") && {
            let toks = tokenize_fragment(l, 1);
            toks.windows(2).any(|w| {
                w[0].kind == TokenKind::Ident
                    && w[1].is_punct("(")
                    && SCRUB_CALLS.contains(&w[0].text.as_str())
            })
        })
}

/// Guard pattern: an added `if` whose branch bails (`return`/`goto`).
fn has_guard_pattern(added: &[&str]) -> bool {
    let mut saw_if = false;
    for l in added {
        let t = l.trim_start();
        if t.starts_with("if") && tokenize_fragment(t, 1).first().is_some_and(|tok| {
            matches!(tok.kind, TokenKind::Keyword(clang_lite::Keyword::If))
        }) {
            saw_if = true;
            if t.contains("return") || t.contains("goto") {
                return true;
            }
            continue;
        }
        if saw_if && (t.starts_with("return") || t.starts_with("goto")) {
            return true;
        }
        saw_if = false;
    }
    false
}

/// Safer-swap pattern: a removed unsafe call and an added safe variant.
fn has_safer_swap(added: &[&str], removed: &[&str]) -> bool {
    for (unsafe_call, safe_calls) in UNSAFE_TO_SAFE {
        let removed_unsafe = removed.iter().any(|l| {
            tokenize_fragment(l, 1)
                .windows(2)
                .any(|w| w[0].text == *unsafe_call && w[1].is_punct("("))
        });
        let added_safe = added.iter().any(|l| {
            tokenize_fragment(l, 1).windows(2).any(|w| {
                safe_calls.contains(&w[0].text.as_str()) && w[1].is_punct("(")
            })
        });
        if removed_unsafe && added_safe {
            return true;
        }
    }
    false
}

/// Mines a whole collection and returns `(pattern, count)` sorted by
/// frequency — the summary Section V-A-2 envisions building from PatchDB.
pub fn pattern_frequencies<'a, I>(patches: I) -> Vec<(FixPattern, usize)>
where
    I: IntoIterator<Item = &'a Patch>,
{
    let mut counts: std::collections::HashMap<FixPattern, usize> = std::collections::HashMap::new();
    for p in patches {
        for pat in mine_fix_patterns(p) {
            *counts.entry(pat).or_insert(0) += 1;
        }
    }
    let mut out: Vec<_> = counts.into_iter().collect();
    out.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::diff_files;

    fn patch(before: &str, after: &str) -> Patch {
        Patch::builder("d".repeat(40))
            .file(diff_files("x.c", before, after, 3))
            .build()
    }

    #[test]
    fn detects_race_condition_fix() {
        let p = patch(
            "void f(struct s *cv) {\n    update(cv);\n}\n",
            "void f(struct s *cv) {\n    mutex_lock(&cv->lock);\n    update(cv);\n    mutex_unlock(&cv->lock);\n}\n",
        );
        assert!(mine_fix_patterns(&p).contains(&FixPattern::RaceCondition));
    }

    #[test]
    fn detects_data_leakage_fix() {
        let p = patch(
            "void f(char *key, int n) {\n    use(key);\n    return;\n}\n",
            "void f(char *key, int n) {\n    use(key);\n    memset(key, 0, n);\n    return;\n}\n",
        );
        let pats = mine_fix_patterns(&p);
        assert!(pats.contains(&FixPattern::DataLeakage), "{pats:?}");
    }

    #[test]
    fn detects_guard_fix() {
        let p = patch(
            "int f(int i, int n) {\n    buf[i] = 1;\n    return 0;\n}\n",
            "int f(int i, int n) {\n    if (i >= n)\n        return -1;\n    buf[i] = 1;\n    return 0;\n}\n",
        );
        assert!(mine_fix_patterns(&p).contains(&FixPattern::GuardedOperation));
    }

    #[test]
    fn detects_safer_swap() {
        let p = patch(
            "void f(char *d, char *s) {\n    strcpy(d, s);\n}\n",
            "void f(char *d, char *s) {\n    strlcpy(d, s, sizeof(d));\n}\n",
        );
        assert!(mine_fix_patterns(&p).contains(&FixPattern::SaferCallSwap));
    }

    #[test]
    fn clean_patch_matches_nothing() {
        let p = patch(
            "void f(void) {\n    a();\n}\n",
            "void f(void) {\n    b();\n}\n",
        );
        assert!(mine_fix_patterns(&p).is_empty());
    }

    #[test]
    fn lock_without_unlock_is_not_a_race_fix() {
        let p = patch(
            "void f(struct s *cv) {\n    update(cv);\n}\n",
            "void f(struct s *cv) {\n    mutex_lock(&cv->lock);\n    update(cv);\n}\n",
        );
        assert!(!mine_fix_patterns(&p).contains(&FixPattern::RaceCondition));
    }

    #[test]
    fn frequencies_sort_descending() {
        let guard = patch(
            "int f(int i, int n) {\n    buf[i] = 1;\n    return 0;\n}\n",
            "int f(int i, int n) {\n    if (i >= n)\n        return -1;\n    buf[i] = 1;\n    return 0;\n}\n",
        );
        let swap = patch(
            "void g(char *d, char *s) {\n    strcpy(d, s);\n}\n",
            "void g(char *d, char *s) {\n    strlcpy(d, s, 16);\n}\n",
        );
        let freqs = pattern_frequencies([&guard, &guard.clone(), &swap]);
        assert_eq!(freqs[0].0, FixPattern::GuardedOperation);
        assert_eq!(freqs[0].1, 2);
    }

    #[test]
    fn corpus_race_and_leak_generators_are_recognized() {
        use patchdb_corpus::{CorpusConfig, GitHubForge, PatchCategory};
        let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(2000, 9));
        let mut race = 0;
        let mut leak = 0;
        for (_, c) in forge.all_commits() {
            if c.kind.category() == Some(PatchCategory::FunctionCall) {
                let change = forge.materialize(c);
                let pats = mine_fix_patterns(&change.patch);
                race += usize::from(pats.contains(&FixPattern::RaceCondition));
                leak += usize::from(pats.contains(&FixPattern::DataLeakage));
            }
        }
        assert!(race > 0, "no race-condition fixes recognized");
        assert!(leak > 0, "no data-leakage fixes recognized");
    }
}
