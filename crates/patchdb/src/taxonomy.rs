//! Rule-based classification of security patches into the 12 Table V
//! change-pattern categories — the automatic counterpart of the paper's
//! manual categorization (Section IV-D), usable for the "automatic patch
//! analysis" applications of Section V.
//!
//! Rules fire in a fixed priority order over the patch's added/removed
//! lines; each rule keys on the syntactic evidence Table V describes.

use std::collections::HashMap;

use clang_lite::{tokenize_fragment, Keyword, TokenKind};
use patch_core::Patch;
use patchdb_corpus::{PatchCategory, ALL_CATEGORIES};

/// Classifies one security patch by its code changes.
pub fn classify_patch(patch: &Patch) -> PatchCategory {
    let added: Vec<&str> = patch
        .hunks()
        .flat_map(|h| h.added().map(|l| l.content.as_str()))
        .collect();
    let removed: Vec<&str> = patch
        .hunks()
        .flat_map(|h| h.removed().map(|l| l.content.as_str()))
        .collect();

    // 10: pure statement movement — identical multisets of changed lines.
    if !added.is_empty() && same_multiset(&added, &removed) {
        return PatchCategory::MoveStatement;
    }

    // 11: redesign — large, two-sided rewrites.
    if added.len() >= 5 && removed.len() >= 5 && added.len() + removed.len() >= 12 {
        return PatchCategory::Redesign;
    }

    // 9: jump-statement changes (goto/label error-path rework).
    if touches_jump(&added) || touches_jump(&removed) {
        return PatchCategory::JumpStatement;
    }

    // 1/2/3: check changes — an `if` added or its condition modified.
    if let Some(cat) = check_category(&added, &removed) {
        return cat;
    }

    // 6/7: signature changes.
    if let Some(cat) = signature_category(&added, &removed) {
        return cat;
    }

    // 4/5: declaration / initializer changes.
    if let Some(cat) = declaration_category(&added, &removed) {
        return cat;
    }

    // 8: call-statement changes.
    if call_change(&added, &removed) {
        return PatchCategory::FunctionCall;
    }

    PatchCategory::Others
}

/// Classifies a batch and returns the normalized distribution, every
/// category present (possibly 0), in Table V order.
pub fn taxonomy_distribution<'a, I>(patches: I) -> Vec<(PatchCategory, f64)>
where
    I: IntoIterator<Item = &'a Patch>,
{
    let mut counts: HashMap<PatchCategory, usize> = HashMap::new();
    let mut total = 0usize;
    for p in patches {
        *counts.entry(classify_patch(p)).or_insert(0) += 1;
        total += 1;
    }
    ALL_CATEGORIES
        .iter()
        .map(|c| (*c, *counts.get(c).unwrap_or(&0) as f64 / total.max(1) as f64))
        .collect()
}

fn same_multiset(a: &[&str], b: &[&str]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut x: Vec<String> = a.iter().map(|s| s.trim().to_owned()).collect();
    let mut y: Vec<String> = b.iter().map(|s| s.trim().to_owned()).collect();
    x.sort();
    y.sort();
    x == y
}

fn touches_jump(lines: &[&str]) -> bool {
    lines.iter().any(|l| {
        let toks = tokenize_fragment(l, 1);
        toks.iter().any(|t| t.is_keyword(Keyword::Goto))
            || (toks.len() == 2 && toks[0].is_ident() && toks[1].is_punct(":")) // label
    })
}

/// Distinguishes the three check categories from the condition tokens of
/// added/changed `if` lines:
/// * null checks mention `NULL`/`nullptr` or negate a bare pointer;
/// * bound checks order-compare two identifier quantities;
/// * everything else (constants, macros, state fields, `%`) is an "other
///   sanity check".
fn check_category(added: &[&str], removed: &[&str]) -> Option<PatchCategory> {
    let added_ifs: Vec<&&str> = added.iter().filter(|l| is_if_line(l)).collect();
    if added_ifs.is_empty() {
        return None;
    }
    // A changed (not purely added) check still counts: Table V says "add
    // OR change".
    let _ = removed;

    let mut votes = [0usize; 3]; // null, bound, sanity
    for l in &added_ifs {
        let toks = tokenize_fragment(l, 1);
        let has_null = toks.iter().any(|t| {
            t.text == "NULL" || t.kind == TokenKind::Keyword(Keyword::Nullptr)
        });
        let negates_ident = toks
            .windows(2)
            .any(|w| w[0].is_punct("!") && w[1].kind == TokenKind::Ident);
        if has_null || negates_ident {
            votes[0] += 1;
            continue;
        }
        let rel_between_idents = relational_between_identifiers(&toks);
        if rel_between_idents {
            votes[1] += 1;
        } else {
            votes[2] += 1;
        }
    }
    Some(match votes.iter().enumerate().max_by_key(|(_, v)| **v).expect("3 buckets").0 {
        0 => PatchCategory::NullCheck,
        1 => PatchCategory::BoundCheck,
        _ => PatchCategory::OtherSanityCheck,
    })
}

/// True when a `<,>,<=,>=` compares two lowercase identifier operands
/// (index-vs-length shape) rather than a constant/macro.
fn relational_between_identifiers(toks: &[clang_lite::Token]) -> bool {
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "<" | ">" | "<=" | ">=") {
            let prev = toks[..i].iter().rev().find(|p| {
                p.kind == TokenKind::Ident || p.is_literal()
            });
            let next = toks[i + 1..].iter().find(|p| {
                p.kind == TokenKind::Ident || p.is_literal()
            });
            let identish = |t: &clang_lite::Token| {
                t.kind == TokenKind::Ident && t.text.to_lowercase() == t.text
            };
            if let (Some(a), Some(b)) = (prev, next) {
                if identish(a) && identish(b) {
                    return true;
                }
            }
        }
    }
    false
}

fn is_if_line(line: &str) -> bool {
    tokenize_fragment(line, 1)
        .first()
        .is_some_and(|t| t.is_keyword(Keyword::If))
}

fn signature_category(added: &[&str], removed: &[&str]) -> Option<PatchCategory> {
    for r in removed {
        for a in added {
            if let (Some((rn, rp)), Some((an, ap))) = (signature_parts(r), signature_parts(a)) {
                if rn == an {
                    return Some(if rp != ap {
                        PatchCategory::FunctionParameter
                    } else {
                        PatchCategory::FunctionDeclaration
                    });
                }
            }
        }
    }
    None
}

/// Splits a top-level signature-looking line into (name, params-text).
fn signature_parts(line: &str) -> Option<(String, String)> {
    if line.starts_with([' ', '\t']) {
        return None;
    }
    let toks = tokenize_fragment(line, 1);
    let open = toks.iter().position(|t| t.is_punct("("))?;
    if open == 0 || !toks[open - 1].is_ident() {
        return None;
    }
    let first_ok = matches!(
        toks.first()?.kind,
        TokenKind::Ident | TokenKind::Keyword(_)
    );
    if !first_ok || toks.iter().any(|t| t.is_punct(";")) {
        return None;
    }
    let params: Vec<&str> = toks[open + 1..]
        .iter()
        .take_while(|t| !t.is_punct(")"))
        .map(|t| t.text.as_str())
        .collect();
    Some((toks[open - 1].text.clone(), params.join(" ")))
}

fn declaration_category(added: &[&str], removed: &[&str]) -> Option<PatchCategory> {
    for r in removed {
        for a in added {
            let (Some(rd), Some(ad)) = (decl_parts(r), decl_parts(a)) else { continue };
            if rd.name != ad.name {
                continue;
            }
            if rd.ty != ad.ty || rd.array != ad.array {
                return Some(PatchCategory::VariableDefinition);
            }
            if rd.init != ad.init {
                return Some(PatchCategory::VariableValue);
            }
        }
    }
    None
}

#[derive(PartialEq)]
struct Decl {
    ty: String,
    name: String,
    array: Option<String>,
    init: Option<String>,
}

/// Parses a simple local declaration: `type name [N]? (= init)? ;`.
fn decl_parts(line: &str) -> Option<Decl> {
    let toks = tokenize_fragment(line, 1);
    let first = toks.first()?;
    let is_type_kw = matches!(first.kind, TokenKind::Keyword(kw) if kw.is_type());
    if !is_type_kw {
        return None;
    }
    // Type = leading run of type keywords; then the declared name.
    let mut i = 0;
    while i < toks.len()
        && matches!(toks[i].kind, TokenKind::Keyword(kw) if kw.is_type())
    {
        i += 1;
    }
    // Skip pointer stars.
    while i < toks.len() && toks[i].is_punct("*") {
        i += 1;
    }
    if i >= toks.len() || !toks[i].is_ident() {
        return None;
    }
    let name = toks[i].text.clone();
    let ty: Vec<&str> = toks[..i].iter().map(|t| t.text.as_str()).collect();
    let mut array = None;
    let mut init = None;
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_punct("[") {
        let inner: Vec<&str> = toks[j + 1..]
            .iter()
            .take_while(|t| !t.is_punct("]"))
            .map(|t| t.text.as_str())
            .collect();
        array = Some(inner.join(""));
        j += inner.len() + 2;
    }
    if j < toks.len() && toks[j].is_punct("=") {
        let rest: Vec<&str> = toks[j + 1..]
            .iter()
            .take_while(|t| !t.is_punct(";"))
            .map(|t| t.text.as_str())
            .collect();
        init = Some(rest.join(" "));
    }
    Some(Decl { ty: ty.join(" "), name, array, init })
}

fn call_change(added: &[&str], removed: &[&str]) -> bool {
    let call_line = |l: &&str| -> bool {
        let toks = tokenize_fragment(l, 1);
        toks.windows(2)
            .any(|w| w[0].is_ident() && w[1].is_punct("("))
    };
    added.iter().any(call_line) || removed.iter().any(call_line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::{diff_files, Patch};

    fn patch(before: &str, after: &str) -> Patch {
        Patch::builder("c".repeat(40))
            .file(diff_files("t.c", before, after, 3))
            .build()
    }

    #[test]
    fn detects_bound_check() {
        let p = patch(
            "int f(int i, int n) {\n    buf[i] = 1;\n    return 0;\n}\n",
            "int f(int i, int n) {\n    if (i >= n)\n        return -1;\n    buf[i] = 1;\n    return 0;\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::BoundCheck);
    }

    #[test]
    fn detects_null_check() {
        let p = patch(
            "void f(struct s *p) {\n    use(p);\n}\n",
            "void f(struct s *p) {\n    if (p == NULL)\n        return;\n    use(p);\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::NullCheck);
        let q = patch(
            "void f(struct s *p) {\n    use(p);\n}\n",
            "void f(struct s *p) {\n    if (!p)\n        return;\n    use(p);\n}\n",
        );
        assert_eq!(classify_patch(&q), PatchCategory::NullCheck);
    }

    #[test]
    fn detects_sanity_check() {
        let p = patch(
            "int f(size_t len) {\n    go(len);\n    return 0;\n}\n",
            "int f(size_t len) {\n    if (len > LEN_MAX || len == 0)\n        return -1;\n    go(len);\n    return 0;\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::OtherSanityCheck);
    }

    #[test]
    fn detects_variable_definition_change() {
        let p = patch(
            "int f(void) {\n    int n = get();\n    return n;\n}\n",
            "int f(void) {\n    unsigned int n = get();\n    return n;\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::VariableDefinition);
        let q = patch(
            "int f(void) {\n    char b[16];\n    fill(b);\n    return 0;\n}\n",
            "int f(void) {\n    char b[64];\n    fill(b);\n    return 0;\n}\n",
        );
        assert_eq!(classify_patch(&q), PatchCategory::VariableDefinition);
    }

    #[test]
    fn detects_variable_value_change() {
        let p = patch(
            "int f(void) {\n    char b[16];\n    fill(b);\n    return 0;\n}\n",
            "int f(void) {\n    char b[16] = {0};\n    fill(b);\n    return 0;\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::VariableValue);
    }

    #[test]
    fn detects_signature_changes() {
        let p = patch(
            "int f(struct s *p)\n{\n    return 0;\n}\n",
            "static int f(struct s *p)\n{\n    return 0;\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::FunctionDeclaration);
        let q = patch(
            "int f(struct s *p)\n{\n    return 0;\n}\n",
            "int f(struct s *p, size_t n)\n{\n    return 0;\n}\n",
        );
        assert_eq!(classify_patch(&q), PatchCategory::FunctionParameter);
    }

    #[test]
    fn detects_call_change() {
        let p = patch(
            "void f(char *d, char *s) {\n    strcpy(d, s);\n}\n",
            "void f(char *d, char *s) {\n    strlcpy(d, s, sizeof(d));\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::FunctionCall);
    }

    #[test]
    fn detects_jump_change() {
        let p = patch(
            "int f(void) {\n    if (err())\n        return -1;\n    work();\n    return 0;\n}\n",
            "int f(void) {\n    if (err())\n        goto fail;\n    work();\n    return 0;\nfail:\n    cleanup();\n    return -1;\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::JumpStatement);
    }

    #[test]
    fn detects_move() {
        let p = patch(
            "void f(void) {\n    a();\n    b();\n    init();\n}\n",
            "void f(void) {\n    init();\n    a();\n    b();\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::MoveStatement);
    }

    #[test]
    fn detects_redesign() {
        let before = "int f(void) {\n    a1();\n    a2();\n    a3();\n    a4();\n    a5();\n    a6();\n    return 0;\n}\n";
        let after = "int f(void) {\n    b1();\n    b2();\n    b3();\n    b4();\n    b5();\n    b6();\n    return 1;\n}\n";
        assert_eq!(classify_patch(&patch(before, after)), PatchCategory::Redesign);
    }

    #[test]
    fn falls_back_to_others() {
        let p = patch(
            "int f(int x) {\n    return y[x];\n}\n",
            "int f(int x) {\n    return y[(size_t)x];\n}\n",
        );
        assert_eq!(classify_patch(&p), PatchCategory::Others);
    }

    #[test]
    fn distribution_covers_all_categories() {
        let p = patch("void f(){\n    a();\n}\n", "void f(){\n    b();\n}\n");
        let dist = taxonomy_distribution([&p]);
        assert_eq!(dist.len(), 12);
        let total: f64 = dist.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
