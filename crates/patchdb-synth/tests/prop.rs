//! Property tests for the oversampler: synthetic patches must always
//! apply cleanly to their base version, carry a variant marker, and keep
//! the transformed file structurally parsable. Runs on
//! `patchdb_rt::check`, the in-repo property harness.

use std::collections::HashMap;

use patchdb_rt::check::{check, Gen};

use patch_core::{apply_file_diff, diff_files, Patch};
use patchdb_synth::{synthesize, Side, SynthOptions};

const CASES: u32 = 128;

/// A small C function whose AFTER version gains an `if` guard with a
/// randomized condition and surrounding filler.
fn patched_pair(g: &mut Gen) -> (String, String) {
    const VARS: &[&str] = &["a", "count", "len", "n_items"];
    const OPS: &[&str] = &[">", "<", ">=", "=="];
    const FILLERS: &[&str] = &["mark();", "step(x);", "x++;", "log_it(x);"];
    let var = *g.pick(VARS);
    let op = *g.pick(OPS);
    let fillers = g.usize_in(0, 3);
    let filler = *g.pick(FILLERS);

    let mut body_before = vec![
        "int f(int a, int x) {".to_owned(),
        format!("    int {var}_local = {var};"),
    ];
    for _ in 0..fillers {
        body_before.push(format!("    {filler}"));
    }
    body_before.push("    use(x);".to_owned());
    body_before.push("    return x;".to_owned());
    body_before.push("}".to_owned());

    let mut body_after = body_before.clone();
    let at = body_after.len() - 3;
    body_after.splice(
        at..at,
        [
            format!("    if ({var}_local {op} x)"),
            "        return -1;".to_owned(),
        ],
    );
    (body_before.join("\n") + "\n", body_after.join("\n") + "\n")
}

#[test]
fn synthetic_patches_apply_and_parse() {
    check("synthetic_patches_apply_and_parse", CASES, |g| {
        let (before, after) = patched_pair(g);
        let patch = Patch::builder("9".repeat(40))
            .message("prop fix")
            .file(diff_files("p.c", &before, &after, 3))
            .build();
        let mut b = HashMap::new();
        b.insert("p.c".to_owned(), before.clone());
        let mut a = HashMap::new();
        a.insert("p.c".to_owned(), after.clone());

        let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
        let synths = synthesize(&patch, &b, &a, &opts);
        assert!(!synths.is_empty(), "guarded if must yield variants");

        for s in &synths {
            // Marker present.
            let text = s.patch.to_unified_string();
            assert!(text.contains("_SYS_"), "no marker:\n{text}");
            // Round-trips through the textual form.
            let reparsed = Patch::parse(&text).expect("parsable");
            assert_eq!(&reparsed, &s.patch);
            // Applies cleanly to its base, and the result still has
            // balanced delimiters plus at least one if statement.
            let base = match s.side {
                Side::After => &before,
                Side::Before => &after,
            };
            let out = apply_file_diff(&s.patch.files[0], base).expect("applies");
            let toks = clang_lite::tokenize(&out);
            let open = toks.iter().filter(|t| t.is_punct("(")).count();
            let close = toks.iter().filter(|t| t.is_punct(")")).count();
            assert_eq!(open, close, "unbalanced parens:\n{out}");
            assert!(!clang_lite::find_if_statements(&out).is_empty());
        }
    });
}

/// Variant application is deterministic and produces distinct patches
/// across variants.
#[test]
fn variants_distinct() {
    check("variants_distinct", CASES, |g| {
        let (before, after) = patched_pair(g);
        let patch = Patch::builder("8".repeat(40))
            .file(diff_files("p.c", &before, &after, 3))
            .build();
        let mut b = HashMap::new();
        b.insert("p.c".to_owned(), before);
        let mut a = HashMap::new();
        a.insert("p.c".to_owned(), after);
        let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
        let s1 = synthesize(&patch, &b, &a, &opts);
        let s2 = synthesize(&patch, &b, &a, &opts);
        assert_eq!(s1.len(), s2.len());
        let mut texts: Vec<String> = s1.iter().map(|s| s.patch.to_unified_string()).collect();
        let n = texts.len();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), n, "duplicate synthetic patches");
    });
}
