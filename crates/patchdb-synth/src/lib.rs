//! # patchdb-synth
//!
//! PatchDB's source-level patch oversampling (Section III-C, Fig. 4/5):
//! given a natural patch and the file contents before/after it, locate the
//! `if` statements the patch touches and apply one of eight
//! functionality-preserving control-flow variants, producing *synthetic*
//! patches that enrich the dataset's control-flow variety.
//!
//! Modifying the AFTER version merges extra edits forward into the patch;
//! modifying the BEFORE version merges the *inverse* edits (Section
//! III-C-3). Either way the synthetic patch is recomputed as a plain diff
//! of the (possibly modified) file pair, so it is always well-formed and
//! applies cleanly.
//!
//! ```rust
//! use patchdb_synth::{synthesize, SynthOptions};
//! use std::collections::HashMap;
//!
//! let before = "int f(int a) {\n    return a;\n}\n";
//! let after  = "int f(int a) {\n    if (a < 0)\n        return 0;\n    return a;\n}\n";
//! let patch = patch_core::Patch::builder("1".repeat(40))
//!     .file(patch_core::diff_files("f.c", before, after, 3))
//!     .build();
//! let mut befores = HashMap::new();
//! befores.insert("f.c".to_owned(), before.to_owned());
//! let mut afters = HashMap::new();
//! afters.insert("f.c".to_owned(), after.to_owned());
//!
//! let synthetic = synthesize(&patch, &befores, &afters, &SynthOptions::default());
//! assert!(!synthetic.is_empty());
//! // Every synthetic patch still applies to its base version.
//! ```

#![warn(missing_docs)]

mod variants;

use std::collections::HashMap;

use patch_core::{diff_files, CommitId, LineKind, Patch};
use patchdb_rt::obs;

pub use variants::{apply_variant, VariantKind, ALL_VARIANTS};

/// Which version of the file pair a variant was applied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The pre-patch version was modified (inverse-merge semantics).
    Before,
    /// The post-patch version was modified (forward-merge semantics).
    After,
}

/// One synthetic patch plus its provenance.
#[derive(Debug, Clone)]
pub struct SyntheticPatch {
    /// The recomputed diff.
    pub patch: Patch,
    /// Which Fig. 5 template produced it.
    pub variant: VariantKind,
    /// Which side was edited.
    pub side: Side,
    /// Path of the file whose `if` statement was transformed.
    pub file: String,
}

/// Oversampling knobs.
#[derive(Debug, Clone)]
pub struct SynthOptions {
    /// Which templates to apply (default: all eight).
    pub variants: Vec<VariantKind>,
    /// Whether to edit the BEFORE version too (default true, per the
    /// paper's two merge directions).
    pub both_sides: bool,
    /// Cap on synthetic patches per natural patch (0 = unlimited).
    pub max_per_patch: usize,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions { variants: ALL_VARIANTS.to_vec(), both_sides: true, max_per_patch: 8 }
    }
}

/// Oversamples one natural patch.
///
/// `before_files` / `after_files` map the patch's paths to their full
/// contents (the "roll the repository back/forward" step of Fig. 4). Files
/// missing from the maps are skipped, as are `if` statements whose
/// condition spans multiple lines.
pub fn synthesize(
    patch: &Patch,
    before_files: &HashMap<String, String>,
    after_files: &HashMap<String, String>,
    options: &SynthOptions,
) -> Vec<SyntheticPatch> {
    let mut out = Vec::new();
    let mut variant_counter = 0u64;
    let mut attempted = 0u64;

    for file in &patch.files {
        if !file.is_c_family() {
            continue;
        }
        let sides: &[Side] = if options.both_sides {
            &[Side::After, Side::Before]
        } else {
            &[Side::After]
        };
        for &side in sides {
            let (text, changed_lines) = match side {
                Side::After => (
                    after_files.get(&file.new_path),
                    changed_line_numbers(file, LineKind::Added),
                ),
                Side::Before => (
                    before_files.get(&file.old_path),
                    changed_line_numbers(file, LineKind::Removed),
                ),
            };
            let Some(text) = text else { continue };
            if changed_lines.is_empty() {
                continue;
            }

            // Step 2 of Fig. 4: locate patch-related if statements.
            let related: Vec<_> = clang_lite::find_if_statements(text)
                .into_iter()
                .filter(|stmt| stmt.touches_lines(&changed_lines))
                .filter(|stmt| stmt.cond_open.line == stmt.cond_close.line)
                .collect();

            for stmt in &related {
                for &variant in &options.variants {
                    if options.max_per_patch > 0 && out.len() >= options.max_per_patch {
                        flush_synth_metrics(attempted, out.len(), true);
                        return out;
                    }
                    attempted += 1;
                    let Some(mutated) = apply_variant(text, stmt, variant) else {
                        continue;
                    };
                    // Step 3: merge by re-diffing the modified pair.
                    let (base, target) = match side {
                        Side::After => (
                            before_files.get(&file.old_path).cloned().unwrap_or_default(),
                            mutated,
                        ),
                        Side::Before => (
                            mutated,
                            after_files.get(&file.new_path).cloned().unwrap_or_default(),
                        ),
                    };
                    let diff = diff_files(&file.new_path, &base, &target, 3);
                    if diff.hunks.is_empty() {
                        continue;
                    }
                    variant_counter += 1;
                    let id = synthetic_id(&patch.commit, variant_counter);
                    out.push(SyntheticPatch {
                        patch: Patch::builder(id.to_string())
                            .message(format!(
                                "{} [synthetic {:?}/{:?}]",
                                patch.message, variant, side
                            ))
                            .file(diff)
                            .build(),
                        variant,
                        side,
                        file: file.new_path.clone(),
                    });
                }
            }
        }
    }
    flush_synth_metrics(attempted, out.len(), false);
    out
}

/// Banks one `synthesize` call's template tallies into the `synth.*`
/// metrics (a no-op with tracing off). `synthesize` runs on `rt::par`
/// workers during the pipeline's parallel oversampling pass; the adds
/// are commutative, so the final counter values are thread-independent.
fn flush_synth_metrics(attempted: u64, produced: usize, capped: bool) {
    if !obs::enabled() {
        return;
    }
    obs::counter_add("synth.templates_attempted", attempted);
    obs::counter_add("synth.templates_applied", produced as u64);
    obs::counter_add("synth.capped", capped as u64);
    obs::hist_record("synth.variants_per_patch", produced as u64);
}

/// The new-file (or old-file) line numbers carrying changes of `kind`.
fn changed_line_numbers(file: &patch_core::FileDiff, kind: LineKind) -> Vec<usize> {
    let mut out = Vec::new();
    for hunk in &file.hunks {
        let mut old_line = hunk.old_start;
        let mut new_line = hunk.new_start;
        for line in &hunk.lines {
            match line.kind {
                LineKind::Context => {
                    old_line += 1;
                    new_line += 1;
                }
                LineKind::Added => {
                    if kind == LineKind::Added {
                        out.push(new_line);
                    }
                    new_line += 1;
                }
                LineKind::Removed => {
                    if kind == LineKind::Removed {
                        out.push(old_line);
                    }
                    old_line += 1;
                }
            }
        }
    }
    out
}

/// Derives a fresh deterministic commit id for a synthetic patch.
fn synthetic_id(base: &CommitId, counter: u64) -> CommitId {
    let mut seed = counter ^ 0x5e0_c0de;
    for chunk in base.as_bytes().chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        seed = seed.rotate_left(23) ^ u64::from_le_bytes(b);
    }
    CommitId::from_seed(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::apply_file_diff;

    fn fixture() -> (Patch, HashMap<String, String>, HashMap<String, String>) {
        let before = "int f(struct ctx *c) {\n    int n = c->len;\n    c->buf[n] = 0;\n    return n;\n}\n";
        let after = "int f(struct ctx *c) {\n    int n = c->len;\n    if (n >= c->cap)\n        return -1;\n    c->buf[n] = 0;\n    return n;\n}\n";
        let patch = Patch::builder("2".repeat(40))
            .message("fix oob write")
            .file(diff_files("src/f.c", before, after, 3))
            .build();
        let mut b = HashMap::new();
        b.insert("src/f.c".to_owned(), before.to_owned());
        let mut a = HashMap::new();
        a.insert("src/f.c".to_owned(), after.to_owned());
        (patch, b, a)
    }

    #[test]
    fn produces_variants_for_patched_if() {
        let (patch, before, after) = fixture();
        let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
        let synths = synthesize(&patch, &before, &after, &opts);
        // The if exists only in the AFTER version, so only After-side
        // variants (8 of them) are possible.
        assert_eq!(synths.len(), 8);
        assert!(synths.iter().all(|s| s.side == Side::After));
    }

    #[test]
    fn synthetic_patches_apply_cleanly() {
        let (patch, before, after) = fixture();
        let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
        for s in synthesize(&patch, &before, &after, &opts) {
            let file = &s.patch.files[0];
            let base = match s.side {
                Side::After => &before["src/f.c"],
                Side::Before => &after["src/f.c"],
            };
            // After-side: diff(before, mutated-after) applies to before.
            let rebuilt = apply_file_diff(file, base).expect("synthetic applies");
            assert!(rebuilt.contains("_SYS_"), "variant marker missing:\n{rebuilt}");
        }
    }

    #[test]
    fn before_side_variants_exist_when_if_removed() {
        // Patch removes an if: BEFORE side owns the related statement.
        let before = "void g(int *p) {\n    if (p != 0)\n        *p = 1;\n}\n";
        let after = "void g(int *p) {\n    *p = 1;\n}\n";
        let patch = Patch::builder("3".repeat(40))
            .file(diff_files("g.c", before, after, 3))
            .build();
        let mut b = HashMap::new();
        b.insert("g.c".to_owned(), before.to_owned());
        let mut a = HashMap::new();
        a.insert("g.c".to_owned(), after.to_owned());
        let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
        let synths = synthesize(&patch, &b, &a, &opts);
        assert!(!synths.is_empty());
        assert!(synths.iter().all(|s| s.side == Side::Before));
    }

    #[test]
    fn respects_cap() {
        let (patch, before, after) = fixture();
        let opts = SynthOptions { max_per_patch: 3, ..SynthOptions::default() };
        assert_eq!(synthesize(&patch, &before, &after, &opts).len(), 3);
    }

    #[test]
    fn missing_files_are_skipped() {
        let (patch, _, after) = fixture();
        let synths = synthesize(&patch, &HashMap::new(), &after, &SynthOptions::default());
        // After-side still works (base falls back to empty before content
        // is only used for diff base — but before map lacks the file, so
        // base is empty and the diff is creation-style; acceptable).
        let _ = synths; // must not panic
    }

    #[test]
    fn unrelated_ifs_are_not_transformed() {
        // The patch changes a line far from the only if statement.
        let before = "void h(int a) {\n    if (a)\n        use(a);\n    mark();\n    tail1();\n    tail2();\n    tail3();\n    old();\n}\n";
        let after = "void h(int a) {\n    if (a)\n        use(a);\n    mark();\n    tail1();\n    tail2();\n    tail3();\n    newer();\n}\n";
        let patch = Patch::builder("4".repeat(40))
            .file(diff_files("h.c", before, after, 1))
            .build();
        let mut b = HashMap::new();
        b.insert("h.c".to_owned(), before.to_owned());
        let mut a = HashMap::new();
        a.insert("h.c".to_owned(), after.to_owned());
        let opts = SynthOptions { max_per_patch: 0, ..SynthOptions::default() };
        let synths = synthesize(&patch, &b, &a, &opts);
        assert!(synths.is_empty(), "if statement is not patch-related");
    }

    #[test]
    fn synthetic_ids_are_fresh_and_deterministic() {
        let (patch, before, after) = fixture();
        let s1 = synthesize(&patch, &before, &after, &SynthOptions::default());
        let s2 = synthesize(&patch, &before, &after, &SynthOptions::default());
        assert_eq!(s1[0].patch.commit, s2[0].patch.commit);
        assert_ne!(s1[0].patch.commit, patch.commit);
        assert_ne!(s1[0].patch.commit, s1[1].patch.commit);
    }
}
