//! The eight control-flow variants of Fig. 5, expressed as rewrites of a
//! single-line `if (COND)` plus zero or more injected declaration lines.
//!
//! Every template preserves program semantics for side-effect-free
//! conditions: the transformed condition evaluates to the same truth value
//! as `COND` on every path.

use clang_lite::IfStmt;

/// The Fig. 5 templates, left-to-right, top-to-bottom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantKind {
    /// `const int _SYS_ZERO = 0;` … `if (_SYS_ZERO || (COND))`
    OrZero,
    /// `const int _SYS_ONE = 1;` … `if (_SYS_ONE && (COND))`
    AndOne,
    /// `int _SYS_STMT = (COND);` … `if (1 == _SYS_STMT)`
    HoistEq,
    /// `int _SYS_STMT = !(COND);` … `if (!_SYS_STMT)`
    HoistNegate,
    /// `int _SYS_VAL = 0; if (COND) { _SYS_VAL = 1; }` … `if (_SYS_VAL)`
    FlagSet,
    /// `int _SYS_VAL = 1; if (COND) { _SYS_VAL = 0; }` … `if (!_SYS_VAL)`
    FlagClear,
    /// flag set … `if (_SYS_VAL && (COND))`
    FlagAndCond,
    /// flag clear … `if (!_SYS_VAL || (COND))`
    FlagOrCond,
}

/// All eight templates in Fig. 5 order.
pub const ALL_VARIANTS: [VariantKind; 8] = [
    VariantKind::OrZero,
    VariantKind::AndOne,
    VariantKind::HoistEq,
    VariantKind::HoistNegate,
    VariantKind::FlagSet,
    VariantKind::FlagClear,
    VariantKind::FlagAndCond,
    VariantKind::FlagOrCond,
];

impl VariantKind {
    /// The declaration lines injected before the `if`, given the original
    /// condition text and the line's indentation.
    fn prelude(self, cond: &str, indent: &str) -> Vec<String> {
        match self {
            VariantKind::OrZero => vec![format!("{indent}const int _SYS_ZERO = 0;")],
            VariantKind::AndOne => vec![format!("{indent}const int _SYS_ONE = 1;")],
            VariantKind::HoistEq => vec![format!("{indent}int _SYS_STMT = ({cond});")],
            VariantKind::HoistNegate => vec![format!("{indent}int _SYS_STMT = !({cond});")],
            VariantKind::FlagSet | VariantKind::FlagAndCond => vec![
                format!("{indent}int _SYS_VAL = 0;"),
                format!("{indent}if ({cond}) {{ _SYS_VAL = 1; }}"),
            ],
            VariantKind::FlagClear | VariantKind::FlagOrCond => vec![
                format!("{indent}int _SYS_VAL = 1;"),
                format!("{indent}if ({cond}) {{ _SYS_VAL = 0; }}"),
            ],
        }
    }

    /// The replacement condition text.
    fn rewritten(self, cond: &str) -> String {
        match self {
            VariantKind::OrZero => format!("_SYS_ZERO || ({cond})"),
            VariantKind::AndOne => format!("_SYS_ONE && ({cond})"),
            VariantKind::HoistEq => "1 == _SYS_STMT".to_owned(),
            VariantKind::HoistNegate => "!_SYS_STMT".to_owned(),
            VariantKind::FlagSet => "_SYS_VAL".to_owned(),
            VariantKind::FlagClear => "!_SYS_VAL".to_owned(),
            VariantKind::FlagAndCond => format!("_SYS_VAL && ({cond})"),
            VariantKind::FlagOrCond => format!("!_SYS_VAL || ({cond})"),
        }
    }
}

/// Applies one variant to the `if` statement `stmt` inside `text`,
/// returning the transformed file content.
///
/// Returns `None` when the statement's condition spans multiple lines or
/// the source slice cannot be recovered (defensive; the caller filters
/// multi-line conditions already).
pub fn apply_variant(text: &str, stmt: &IfStmt, variant: VariantKind) -> Option<String> {
    if stmt.cond_open.line != stmt.cond_close.line {
        return None;
    }
    let lines: Vec<&str> = text.split('\n').collect();
    let line_idx = stmt.cond_open.line.checked_sub(1)?;
    let line = *lines.get(line_idx)?;

    let open_col = stmt.cond_open.col;
    let close_col = stmt.cond_close.end_col;
    if open_col >= line.len() || close_col > line.len() || open_col >= close_col {
        return None;
    }

    let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
    let cond = stmt.cond_text.as_str();

    let rewritten_line = format!(
        "{}({}){}",
        &line[..open_col],
        variant.rewritten(cond),
        &line[close_col..]
    );

    let mut out: Vec<String> = Vec::with_capacity(lines.len() + 2);
    for (i, l) in lines.iter().enumerate() {
        if i == line_idx {
            out.extend(variant.prelude(cond, &indent));
            out.push(rewritten_line.clone());
        } else {
            out.push((*l).to_owned());
        }
    }
    // `split('\n')` leaves a trailing empty element for newline-terminated
    // files; joining restores the original layout.
    Some(out.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clang_lite::find_if_statements;

    const SRC: &str = "void f(int a, int b) {\n    if (a > b)\n        use(a);\n}\n";

    fn the_if(src: &str) -> IfStmt {
        find_if_statements(src).into_iter().next().expect("one if")
    }

    #[test]
    fn all_variants_rewrite_and_stay_parsable() {
        for v in ALL_VARIANTS {
            let out = apply_variant(SRC, &the_if(SRC), v).expect("applies");
            assert!(out.contains("_SYS_"), "{v:?}:\n{out}");
            // The output still structurally parses and contains at least
            // one if statement whose extent is sane.
            let ifs = find_if_statements(&out);
            assert!(!ifs.is_empty(), "{v:?} broke parsing:\n{out}");
            // Balanced delimiters.
            let toks = clang_lite::tokenize(&out);
            let opens = toks.iter().filter(|t| t.is_punct("(")).count();
            let closes = toks.iter().filter(|t| t.is_punct(")")).count();
            assert_eq!(opens, closes, "{v:?}:\n{out}");
        }
    }

    #[test]
    fn semantics_preserved_for_simple_conditions() {
        // Evaluate both versions as pseudo-C over all (a, b) in a grid by
        // interpreting the specific shapes we generate.
        for v in ALL_VARIANTS {
            let out = apply_variant(SRC, &the_if(SRC), v).unwrap();
            for a in -2..3 {
                for b in -2..3 {
                    let original = a > b;
                    let transformed = eval_transformed(&out, a, b);
                    assert_eq!(original, transformed, "{v:?} a={a} b={b}\n{out}");
                }
            }
        }
    }

    /// A tiny interpreter for the transformed snippet's control flow: runs
    /// the `_SYS_*` prelude then evaluates the final if's condition.
    fn eval_transformed(src: &str, a: i64, b: i64) -> bool {
        let cond = |text: &str| -> bool {
            // Only the shape `a > b` appears as the raw condition.
            let _ = text;
            a > b
        };
        let mut sys_val: i64 = 0;
        let mut sys_stmt: i64 = 0;
        let mut sys_zero = 0i64;
        let mut sys_one = 0i64;
        for line in src.lines() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("const int _SYS_ZERO = ") {
                sys_zero = rest.trim_end_matches(';').parse().unwrap();
            } else if let Some(rest) = t.strip_prefix("const int _SYS_ONE = ") {
                sys_one = rest.trim_end_matches(';').parse().unwrap();
            } else if t.starts_with("int _SYS_STMT = !(") {
                sys_stmt = i64::from(!cond(""));
            } else if t.starts_with("int _SYS_STMT = (") {
                sys_stmt = i64::from(cond(""));
            } else if let Some(rest) = t.strip_prefix("int _SYS_VAL = ") {
                sys_val = rest.trim_end_matches(';').parse().unwrap();
            } else if t.starts_with("if (") && t.contains("{ _SYS_VAL =") {
                if cond("") {
                    let inner: i64 = t
                        .split("_SYS_VAL = ")
                        .nth(1)
                        .unwrap()
                        .trim_end_matches(|c| c == ';' || c == ' ' || c == '}')
                        .parse()
                        .unwrap();
                    sys_val = inner;
                }
            } else if let Some(rest) = t.strip_prefix("if (") {
                let c = rest.rsplit_once(')').unwrap().0;
                return match c {
                    _ if c.starts_with("_SYS_ZERO ||") => sys_zero != 0 || cond(""),
                    _ if c.starts_with("_SYS_ONE &&") => sys_one != 0 && cond(""),
                    "1 == _SYS_STMT" => 1 == sys_stmt,
                    "!_SYS_STMT" => sys_stmt == 0,
                    "_SYS_VAL" => sys_val != 0,
                    "!_SYS_VAL" => sys_val == 0,
                    _ if c.starts_with("_SYS_VAL &&") => sys_val != 0 && cond(""),
                    _ if c.starts_with("!_SYS_VAL ||") => sys_val == 0 || cond(""),
                    other => panic!("unexpected condition {other:?}"),
                };
            }
        }
        panic!("no final if found in:\n{src}");
    }

    #[test]
    fn multiline_condition_is_rejected() {
        let src = "void f(int a) {\n    if (a &&\n        a) {\n        g();\n    }\n}\n";
        let stmt = the_if(src);
        assert!(apply_variant(src, &stmt, VariantKind::OrZero).is_none());
    }

    #[test]
    fn indentation_is_preserved() {
        let out = apply_variant(SRC, &the_if(SRC), VariantKind::FlagSet).unwrap();
        assert!(out.contains("\n    int _SYS_VAL = 0;"), "{out}");
    }
}
