//! Token vocabulary: maps patch tokens to dense ids with frequency
//! capping and an `<unk>` bucket.

use std::collections::HashMap;


/// Reserved id for padding (unused positions).
pub const PAD: u32 = 0;
/// Reserved id for out-of-vocabulary tokens.
pub const UNK: u32 = 1;
/// Reserved id marking an added line.
pub const MARK_ADD: u32 = 2;
/// Reserved id marking a removed line.
pub const MARK_DEL: u32 = 3;
/// Reserved id marking a context line.
pub const MARK_CTX: u32 = 4;
/// First id available for real tokens.
pub const FIRST_FREE: u32 = 5;

/// A frequency-capped token vocabulary.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    map: HashMap<String, u32>,
}

impl Vocabulary {
    /// Builds a vocabulary from token streams, keeping the `cap` most
    /// frequent tokens (ties broken lexicographically for determinism).
    pub fn build<'a, I>(streams: I, cap: usize) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for s in streams {
            for tok in s {
                *freq.entry(tok.as_str()).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(&str, usize)> = freq.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked.truncate(cap);
        let map = ranked
            .into_iter()
            .enumerate()
            .map(|(i, (tok, _))| (tok.to_owned(), FIRST_FREE + i as u32))
            .collect();
        Vocabulary { map }
    }

    /// Total id space (reserved ids + learned tokens); the embedding table
    /// must have at least this many rows.
    pub fn size(&self) -> usize {
        FIRST_FREE as usize + self.map.len()
    }

    /// Maps one token to its id (or [`UNK`]).
    pub fn id(&self, token: &str) -> u32 {
        self.map.get(token).copied().unwrap_or(UNK)
    }

    /// Number of learned (non-reserved) tokens.
    pub fn learned(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn streams() -> Vec<Vec<String>> {
        vec![
            vec!["if".into(), "(".into(), "x".into(), ")".into()],
            vec!["if".into(), "(".into(), "y".into(), ")".into()],
        ]
    }

    #[test]
    fn frequent_tokens_win_cap() {
        let s = streams();
        let refs: Vec<&[String]> = s.iter().map(Vec::as_slice).collect();
        let v = Vocabulary::build(refs.iter().copied(), 2);
        assert_eq!(v.learned(), 2);
        // `if` and `(` (freq 2) beat `x`/`y` (freq 1); `)` ties `(` at 2 —
        // lexicographic tiebreak keeps `(` and `)`.
        assert_ne!(v.id("("), UNK);
        assert_eq!(v.id("x"), UNK);
    }

    #[test]
    fn deterministic_ids() {
        let s = streams();
        let refs: Vec<&[String]> = s.iter().map(Vec::as_slice).collect();
        let a = Vocabulary::build(refs.iter().copied(), 10);
        let b = Vocabulary::build(refs.iter().copied(), 10);
        assert_eq!(a.id("if"), b.id("if"));
        assert_eq!(a.size(), b.size());
    }

    #[test]
    fn reserved_ids_do_not_collide() {
        let s = streams();
        let refs: Vec<&[String]> = s.iter().map(Vec::as_slice).collect();
        let v = Vocabulary::build(refs.iter().copied(), 10);
        for tok in ["if", "(", ")", "x", "y"] {
            assert!(v.id(tok) >= FIRST_FREE || v.id(tok) == UNK);
        }
    }

    #[test]
    fn empty_vocabulary() {
        let v = Vocabulary::build(std::iter::empty(), 10);
        assert_eq!(v.size(), FIRST_FREE as usize);
        assert_eq!(v.id("anything"), UNK);
    }
}
