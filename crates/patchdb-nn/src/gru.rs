//! A GRU cell with exact backpropagation through time.

use patchdb_rt::rng::Xoshiro256pp;

use crate::linalg::{Mat, Param};

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Per-timestep activations cached by the forward pass for BPTT.
#[derive(Debug, Clone)]
pub struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    z: Vec<f64>,
    r: Vec<f64>,
    hcand: Vec<f64>,
}

/// Gated recurrent unit:
///
/// ```text
/// z = σ(Wz·x + Uz·h + bz)        (update gate)
/// r = σ(Wr·x + Ur·h + br)        (reset gate)
/// ĥ = tanh(Wh·x + Uh·(r∘h) + bh) (candidate)
/// h' = (1−z)∘h + z∘ĥ
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    input_dim: usize,
    hidden_dim: usize,
    /// Input weights for the z/r/h transforms.
    pub wz: Param,
    /// Recurrent weights for the update gate.
    pub uz: Param,
    /// Update-gate bias.
    pub bz: Param,
    /// Input weights for the reset gate.
    pub wr: Param,
    /// Recurrent weights for the reset gate.
    pub ur: Param,
    /// Reset-gate bias.
    pub br: Param,
    /// Input weights for the candidate state.
    pub wh: Param,
    /// Recurrent weights for the candidate state.
    pub uh: Param,
    /// Candidate bias.
    pub bh: Param,
}

patchdb_rt::impl_to_from_json!(GruCell {
    input_dim,
    hidden_dim,
    wz,
    uz,
    bz,
    wr,
    ur,
    br,
    wh,
    uh,
    bh,
});

impl GruCell {
    /// Creates a Xavier-initialized cell.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut Xoshiro256pp) -> Self {
        let w = |r: usize, c: usize, rng: &mut Xoshiro256pp| Param::new(Mat::xavier(r, c, rng));
        let b = |r: usize| Param::new(Mat::zeros(r, 1));
        GruCell {
            input_dim,
            hidden_dim,
            wz: w(hidden_dim, input_dim, rng),
            uz: w(hidden_dim, hidden_dim, rng),
            bz: b(hidden_dim),
            wr: w(hidden_dim, input_dim, rng),
            ur: w(hidden_dim, hidden_dim, rng),
            br: b(hidden_dim),
            wh: w(hidden_dim, input_dim, rng),
            uh: w(hidden_dim, hidden_dim, rng),
            bh: b(hidden_dim),
        }
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One forward step; returns the new hidden state and the cache needed
    /// for the matching backward step.
    pub fn forward(&self, x: &[f64], h_prev: &[f64]) -> (Vec<f64>, StepCache) {
        let mut z = self.wz.value.matvec(x);
        let uzh = self.uz.value.matvec(h_prev);
        for ((zi, u), b) in z.iter_mut().zip(&uzh).zip(self.bz.value.as_slice()) {
            *zi = sigmoid(*zi + u + b);
        }
        let mut r = self.wr.value.matvec(x);
        let urh = self.ur.value.matvec(h_prev);
        for ((ri, u), b) in r.iter_mut().zip(&urh).zip(self.br.value.as_slice()) {
            *ri = sigmoid(*ri + u + b);
        }
        let rh: Vec<f64> = r.iter().zip(h_prev).map(|(a, b)| a * b).collect();
        let mut hcand = self.wh.value.matvec(x);
        let uhrh = self.uh.value.matvec(&rh);
        for ((hi, u), b) in hcand.iter_mut().zip(&uhrh).zip(self.bh.value.as_slice()) {
            *hi = (*hi + u + b).tanh();
        }
        let h: Vec<f64> = z
            .iter()
            .zip(h_prev)
            .zip(&hcand)
            .map(|((zi, hp), hc)| (1.0 - zi) * hp + zi * hc)
            .collect();
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            z,
            r,
            hcand,
        };
        (h, cache)
    }

    /// One backward step: given `dh` (∂L/∂h_t), accumulates parameter
    /// gradients and returns (∂L/∂x_t, ∂L/∂h_{t−1}).
    pub fn backward(&mut self, dh: &[f64], cache: &StepCache) -> (Vec<f64>, Vec<f64>) {
        let StepCache { x, h_prev, z, r, hcand } = cache;
        let n = self.hidden_dim;

        let mut dz = vec![0.0; n];
        let mut dhcand = vec![0.0; n];
        let mut dh_prev = vec![0.0; n];
        for i in 0..n {
            dz[i] = dh[i] * (hcand[i] - h_prev[i]);
            dhcand[i] = dh[i] * z[i];
            dh_prev[i] = dh[i] * (1.0 - z[i]);
        }

        // Candidate pre-activation.
        let da_h: Vec<f64> = dhcand
            .iter()
            .zip(hcand)
            .map(|(d, hc)| d * (1.0 - hc * hc))
            .collect();
        let rh: Vec<f64> = r.iter().zip(h_prev).map(|(a, b)| a * b).collect();
        self.wh.grad.add_outer(&da_h, x);
        self.uh.grad.add_outer(&da_h, &rh);
        for (g, d) in self.bh.grad.as_mut_slice().iter_mut().zip(&da_h) {
            *g += d;
        }
        let drh = self.uh.value.matvec_t(&da_h);
        let mut dr = vec![0.0; n];
        for i in 0..n {
            dr[i] = drh[i] * h_prev[i];
            dh_prev[i] += drh[i] * r[i];
        }

        // Gate pre-activations.
        let da_z: Vec<f64> = dz.iter().zip(z).map(|(d, zi)| d * zi * (1.0 - zi)).collect();
        let da_r: Vec<f64> = dr.iter().zip(r).map(|(d, ri)| d * ri * (1.0 - ri)).collect();
        self.wz.grad.add_outer(&da_z, x);
        self.uz.grad.add_outer(&da_z, h_prev);
        for (g, d) in self.bz.grad.as_mut_slice().iter_mut().zip(&da_z) {
            *g += d;
        }
        self.wr.grad.add_outer(&da_r, x);
        self.ur.grad.add_outer(&da_r, h_prev);
        for (g, d) in self.br.grad.as_mut_slice().iter_mut().zip(&da_r) {
            *g += d;
        }

        // Inputs.
        let mut dx = self.wz.value.matvec_t(&da_z);
        for (d, v) in dx.iter_mut().zip(self.wr.value.matvec_t(&da_r)) {
            *d += v;
        }
        for (d, v) in dx.iter_mut().zip(self.wh.value.matvec_t(&da_h)) {
            *d += v;
        }
        for (d, v) in dh_prev.iter_mut().zip(self.uz.value.matvec_t(&da_z)) {
            *d += v;
        }
        for (d, v) in dh_prev.iter_mut().zip(self.ur.value.matvec_t(&da_r)) {
            *d += v;
        }
        (dx, dh_prev)
    }

    /// Applies one Adam step to every parameter.
    pub fn adam_step(&mut self, lr: f64, t: usize) {
        for p in [
            &mut self.wz,
            &mut self.uz,
            &mut self.bz,
            &mut self.wr,
            &mut self.ur,
            &mut self.br,
            &mut self.wh,
            &mut self.uh,
            &mut self.bh,
        ] {
            p.adam_step(lr, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check: analytic BPTT gradients must match
    /// numeric ones on a tiny cell to ~1e-5 relative error.
    #[test]
    fn gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut cell = GruCell::new(3, 2, &mut rng);
        let xs = [
            vec![0.3, -0.2, 0.5],
            vec![-0.1, 0.4, 0.2],
            vec![0.7, 0.1, -0.6],
        ];
        // Loss: L = sum(h_T) after running the sequence.
        let run = |cell: &GruCell| -> (f64, Vec<StepCache>) {
            let mut h = vec![0.0; 2];
            let mut caches = Vec::new();
            for x in &xs {
                let (h2, c) = cell.forward(x, &h);
                h = h2;
                caches.push(c);
            }
            (h.iter().sum(), caches)
        };

        // Analytic gradients.
        let (_, caches) = run(&cell);
        let mut dh = vec![1.0; 2];
        for c in caches.iter().rev() {
            let (_dx, dhp) = cell.backward(&dh, c);
            dh = dhp;
        }

        // Numeric, per parameter tensor, a few probes each.
        let eps = 1e-6;
        macro_rules! check {
            ($field:ident) => {{
                let flat_len = cell.$field.value.as_slice().len();
                for probe in [0usize, flat_len / 2, flat_len - 1] {
                    let orig = cell.$field.value.as_slice()[probe];
                    cell.$field.value.as_mut_slice()[probe] = orig + eps;
                    let (lp, _) = run(&cell);
                    cell.$field.value.as_mut_slice()[probe] = orig - eps;
                    let (lm, _) = run(&cell);
                    cell.$field.value.as_mut_slice()[probe] = orig;
                    let numeric = (lp - lm) / (2.0 * eps);
                    let analytic = cell.$field.grad.as_slice()[probe];
                    assert!(
                        (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                        "{}[{}]: numeric {} vs analytic {}",
                        stringify!($field),
                        probe,
                        numeric,
                        analytic
                    );
                }
            }};
        }
        check!(wz);
        check!(uz);
        check!(bz);
        check!(wr);
        check!(ur);
        check!(br);
        check!(wh);
        check!(uh);
        check!(bh);
    }

    #[test]
    fn forward_is_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let cell = GruCell::new(4, 8, &mut rng);
        let mut h = vec![0.0; 8];
        for step in 0..50 {
            let x: Vec<f64> = (0..4).map(|i| ((step * 7 + i) % 11) as f64 - 5.0).collect();
            let (h2, _) = cell.forward(&x, &h);
            h = h2;
            assert!(h.iter().all(|v| v.abs() <= 1.0 + 1e-9), "state escaped: {h:?}");
        }
    }

    #[test]
    fn zero_update_gate_keeps_state() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut cell = GruCell::new(2, 2, &mut rng);
        // Force z ≈ 0 via a hugely negative bias: h' ≈ h.
        for b in cell.bz.value.as_mut_slice() {
            *b = -50.0;
        }
        let h0 = vec![0.37, -0.2];
        let (h1, _) = cell.forward(&[1.0, -1.0], &h0);
        for (a, b) in h1.iter().zip(&h0) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
