//! An LSTM cell with exact backpropagation through time — the classic
//! alternative to the GRU backbone, provided for architecture ablations
//! of the paper's "RNN" classifier.

use patchdb_rt::rng::Xoshiro256pp;

use crate::linalg::{Mat, Param};

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Per-timestep activations cached for BPTT.
#[derive(Debug, Clone)]
pub struct LstmCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    o: Vec<f64>,
    g: Vec<f64>,
    c: Vec<f64>,
}

/// Long short-term memory cell:
///
/// ```text
/// i = σ(Wi·x + Ui·h + bi)   (input gate)
/// f = σ(Wf·x + Uf·h + bf)   (forget gate)
/// o = σ(Wo·x + Uo·h + bo)   (output gate)
/// g = tanh(Wg·x + Ug·h + bg)
/// c' = f∘c + i∘g
/// h' = o∘tanh(c')
/// ```
#[derive(Debug, Clone)]
pub struct LstmCell {
    input_dim: usize,
    hidden_dim: usize,
    /// Gate parameters, in (W, U, b) triples for i/f/o/g.
    pub wi: Param,
    /// Recurrent input-gate weights.
    pub ui: Param,
    /// Input-gate bias.
    pub bi: Param,
    /// Forget-gate input weights.
    pub wf: Param,
    /// Forget-gate recurrent weights.
    pub uf: Param,
    /// Forget-gate bias (initialized to 1, the standard trick).
    pub bf: Param,
    /// Output-gate input weights.
    pub wo: Param,
    /// Output-gate recurrent weights.
    pub uo: Param,
    /// Output-gate bias.
    pub bo: Param,
    /// Candidate input weights.
    pub wg: Param,
    /// Candidate recurrent weights.
    pub ug: Param,
    /// Candidate bias.
    pub bg: Param,
}

patchdb_rt::impl_to_from_json!(LstmCell {
    input_dim,
    hidden_dim,
    wi,
    ui,
    bi,
    wf,
    uf,
    bf,
    wo,
    uo,
    bo,
    wg,
    ug,
    bg,
});

impl LstmCell {
    /// Creates a Xavier-initialized cell with forget bias 1.
    pub fn new(input_dim: usize, hidden_dim: usize, rng: &mut Xoshiro256pp) -> Self {
        let w = |r: usize, c: usize, rng: &mut Xoshiro256pp| Param::new(Mat::xavier(r, c, rng));
        let b = |r: usize| Param::new(Mat::zeros(r, 1));
        let mut bf = Param::new(Mat::zeros(hidden_dim, 1));
        for v in bf.value.as_mut_slice() {
            *v = 1.0;
        }
        LstmCell {
            input_dim,
            hidden_dim,
            wi: w(hidden_dim, input_dim, rng),
            ui: w(hidden_dim, hidden_dim, rng),
            bi: b(hidden_dim),
            wf: w(hidden_dim, input_dim, rng),
            uf: w(hidden_dim, hidden_dim, rng),
            bf,
            wo: w(hidden_dim, input_dim, rng),
            uo: w(hidden_dim, hidden_dim, rng),
            bo: b(hidden_dim),
            wg: w(hidden_dim, input_dim, rng),
            ug: w(hidden_dim, hidden_dim, rng),
            bg: b(hidden_dim),
        }
    }

    /// Hidden width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// One forward step over `(h, c)` state.
    pub fn forward(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> (Vec<f64>, Vec<f64>, LstmCache) {
        let gate = |w: &Param, u: &Param, b: &Param| -> Vec<f64> {
            let mut z = w.value.matvec(x);
            let uh = u.value.matvec(h_prev);
            for ((zi, u), b) in z.iter_mut().zip(&uh).zip(b.value.as_slice()) {
                *zi += u + b;
            }
            z
        };
        let i: Vec<f64> = gate(&self.wi, &self.ui, &self.bi).into_iter().map(sigmoid).collect();
        let f: Vec<f64> = gate(&self.wf, &self.uf, &self.bf).into_iter().map(sigmoid).collect();
        let o: Vec<f64> = gate(&self.wo, &self.uo, &self.bo).into_iter().map(sigmoid).collect();
        let g: Vec<f64> = gate(&self.wg, &self.ug, &self.bg).into_iter().map(f64::tanh).collect();

        let c: Vec<f64> = f
            .iter()
            .zip(c_prev)
            .zip(i.iter().zip(&g))
            .map(|((fv, cp), (iv, gv))| fv * cp + iv * gv)
            .collect();
        let h: Vec<f64> = o.iter().zip(&c).map(|(ov, cv)| ov * cv.tanh()).collect();
        let cache = LstmCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            o,
            g,
            c: c.clone(),
        };
        (h, c, cache)
    }

    /// One backward step: given `(dh, dc)` flowing into the step, returns
    /// `(dx, dh_prev, dc_prev)` and accumulates parameter gradients.
    pub fn backward(
        &mut self,
        dh: &[f64],
        dc_in: &[f64],
        cache: &LstmCache,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = self.hidden_dim;
        let LstmCache { x, h_prev, c_prev, i, f, o, g, c } = cache;

        let tanh_c: Vec<f64> = c.iter().map(|v| v.tanh()).collect();
        let mut dc = vec![0.0; n];
        let mut do_ = vec![0.0; n];
        for k in 0..n {
            do_[k] = dh[k] * tanh_c[k];
            dc[k] = dc_in[k] + dh[k] * o[k] * (1.0 - tanh_c[k] * tanh_c[k]);
        }
        let mut di = vec![0.0; n];
        let mut df = vec![0.0; n];
        let mut dg = vec![0.0; n];
        let mut dc_prev = vec![0.0; n];
        for k in 0..n {
            di[k] = dc[k] * g[k];
            df[k] = dc[k] * c_prev[k];
            dg[k] = dc[k] * i[k];
            dc_prev[k] = dc[k] * f[k];
        }

        // Pre-activation gradients.
        let da_i: Vec<f64> = di.iter().zip(i).map(|(d, v)| d * v * (1.0 - v)).collect();
        let da_f: Vec<f64> = df.iter().zip(f).map(|(d, v)| d * v * (1.0 - v)).collect();
        let da_o: Vec<f64> = do_.iter().zip(o).map(|(d, v)| d * v * (1.0 - v)).collect();
        let da_g: Vec<f64> = dg.iter().zip(g).map(|(d, v)| d * (1.0 - v * v)).collect();

        let mut dx = vec![0.0; self.input_dim];
        let mut dh_prev = vec![0.0; n];
        for (da, (w, u, b)) in [
            (&da_i, (&mut self.wi, &mut self.ui, &mut self.bi)),
            (&da_f, (&mut self.wf, &mut self.uf, &mut self.bf)),
            (&da_o, (&mut self.wo, &mut self.uo, &mut self.bo)),
            (&da_g, (&mut self.wg, &mut self.ug, &mut self.bg)),
        ] {
            w.grad.add_outer(da, x);
            u.grad.add_outer(da, h_prev);
            for (gb, d) in b.grad.as_mut_slice().iter_mut().zip(da.iter()) {
                *gb += d;
            }
            for (dst, v) in dx.iter_mut().zip(w.value.matvec_t(da)) {
                *dst += v;
            }
            for (dst, v) in dh_prev.iter_mut().zip(u.value.matvec_t(da)) {
                *dst += v;
            }
        }
        (dx, dh_prev, dc_prev)
    }

    /// Adam step over every parameter.
    pub fn adam_step(&mut self, lr: f64, t: usize) {
        for p in [
            &mut self.wi, &mut self.ui, &mut self.bi,
            &mut self.wf, &mut self.uf, &mut self.bf,
            &mut self.wo, &mut self.uo, &mut self.bo,
            &mut self.wg, &mut self.ug, &mut self.bg,
        ] {
            p.adam_step(lr, t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_check() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut cell = LstmCell::new(3, 2, &mut rng);
        let xs = [
            vec![0.2, -0.4, 0.1],
            vec![0.5, 0.3, -0.2],
            vec![-0.6, 0.1, 0.4],
        ];
        let run = |cell: &LstmCell| -> (f64, Vec<LstmCache>) {
            let mut h = vec![0.0; 2];
            let mut c = vec![0.0; 2];
            let mut caches = Vec::new();
            for x in &xs {
                let (h2, c2, cache) = cell.forward(x, &h, &c);
                h = h2;
                c = c2;
                caches.push(cache);
            }
            (h.iter().sum(), caches)
        };

        let (_, caches) = run(&cell);
        let mut dh = vec![1.0; 2];
        let mut dc = vec![0.0; 2];
        for cache in caches.iter().rev() {
            let (_dx, dhp, dcp) = cell.backward(&dh, &dc, cache);
            dh = dhp;
            dc = dcp;
        }

        let eps = 1e-6;
        macro_rules! check {
            ($field:ident) => {{
                let len = cell.$field.value.as_slice().len();
                for probe in [0usize, len / 2, len - 1] {
                    let orig = cell.$field.value.as_slice()[probe];
                    cell.$field.value.as_mut_slice()[probe] = orig + eps;
                    let (lp, _) = run(&cell);
                    cell.$field.value.as_mut_slice()[probe] = orig - eps;
                    let (lm, _) = run(&cell);
                    cell.$field.value.as_mut_slice()[probe] = orig;
                    let numeric = (lp - lm) / (2.0 * eps);
                    let analytic = cell.$field.grad.as_slice()[probe];
                    assert!(
                        (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                        "{}[{}]: numeric {} vs analytic {}",
                        stringify!($field), probe, numeric, analytic
                    );
                }
            }};
        }
        check!(wi); check!(ui); check!(bi);
        check!(wf); check!(uf); check!(bf);
        check!(wo); check!(uo); check!(bo);
        check!(wg); check!(ug); check!(bg);
    }

    #[test]
    fn state_is_bounded() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let cell = LstmCell::new(4, 6, &mut rng);
        let mut h = vec![0.0; 6];
        let mut c = vec![0.0; 6];
        for step in 0..100 {
            let x: Vec<f64> = (0..4).map(|k| ((step * 13 + k) % 7) as f64 - 3.0).collect();
            let (h2, c2, _) = cell.forward(&x, &h, &c);
            h = h2;
            c = c2;
            assert!(h.iter().all(|v| v.abs() <= 1.0 + 1e-9));
            assert!(c.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn forget_gate_saturated_keeps_cell() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut cell = LstmCell::new(2, 2, &mut rng);
        // Saturate f → 1 and i → 0: c' ≈ c.
        for v in cell.bf.value.as_mut_slice() {
            *v = 50.0;
        }
        for v in cell.bi.value.as_mut_slice() {
            *v = -50.0;
        }
        let c0 = vec![0.7, -0.3];
        let (_, c1, _) = cell.forward(&[0.5, -0.5], &[0.0, 0.0], &c0);
        for (a, b) in c1.iter().zip(&c0) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
