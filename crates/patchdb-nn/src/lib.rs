//! # patchdb-nn
//!
//! The recurrent neural network PatchDB uses for security-patch
//! identification (Tables IV and VI): token sequences from patch source
//! code, an embedding layer, a GRU, and a logistic head, trained from
//! scratch with Adam and full backpropagation through time.
//!
//! "In the RNN model, the current state depends on the current inputs and
//! the previous state so that the model can learn the context information
//! from tokens" — Section IV-C. A GRU is the standard modern instantiation
//! of that description.
//!
//! ```rust
//! use patchdb_nn::{RnnConfig, RnnClassifier, TokenSequence};
//!
//! // Toy task: sequences containing token 7 are positive.
//! let data: Vec<(TokenSequence, bool)> = (0..60u32)
//!     .map(|i| {
//!         let has7 = i % 2 == 0;
//!         let toks = if has7 { vec![1, 7, 2] } else { vec![1, 3, 2] };
//!         (TokenSequence::new(toks), has7)
//!     })
//!     .collect();
//! let config = RnnConfig { vocab_size: 16, embed_dim: 8, hidden_dim: 8,
//!                          epochs: 30, lr: 0.02, max_len: 16, seed: 1 };
//! let mut model = RnnClassifier::new(config);
//! model.train(&data);
//! assert!(model.predict_proba(&TokenSequence::new(vec![1, 7, 2])) > 0.5);
//! assert!(model.predict_proba(&TokenSequence::new(vec![1, 3, 2])) < 0.5);
//! ```

#![warn(missing_docs)]

mod encode;
mod gru;
mod linalg;
mod lstm;
mod model;
mod vocab;

pub use encode::{encode_patch, patch_token_texts, TokenSequence};
pub use gru::GruCell;
pub use lstm::LstmCell;
pub use linalg::Mat;
pub use model::{Backbone, RnnClassifier, RnnConfig};
pub use vocab::{Vocabulary, FIRST_FREE, MARK_ADD, MARK_CTX, MARK_DEL, PAD, UNK};
