//! The full RNN classifier: embedding → GRU → logistic head.

use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

use crate::encode::TokenSequence;
use crate::gru::GruCell;
use crate::linalg::{Mat, Param};
use crate::lstm::LstmCell;

/// Hyper-parameters of the RNN classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RnnConfig {
    /// Embedding-table rows; must exceed every token id.
    pub vocab_size: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// GRU hidden width.
    pub hidden_dim: usize,
    /// Training epochs over the full set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Sequences are truncated to this many tokens.
    pub max_len: usize,
    /// RNG seed (initialization and shuffling).
    pub seed: u64,
}

impl Default for RnnConfig {
    fn default() -> Self {
        RnnConfig {
            vocab_size: 4096,
            embed_dim: 24,
            hidden_dim: 32,
            epochs: 4,
            lr: 5e-3,
            max_len: 160,
            seed: 42,
        }
    }
}

/// Which recurrent cell drives the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backbone {
    /// Gated recurrent unit (the default; matches the paper's "RNN").
    Gru,
    /// Long short-term memory, for architecture ablations.
    Lstm,
}

#[derive(Debug, Clone)]
enum Recurrent {
    Gru(GruCell),
    Lstm(LstmCell),
}

#[derive(Debug, Clone)]
enum StepState {
    Gru(crate::gru::StepCache),
    Lstm(crate::lstm::LstmCache),
}

/// Embedding + recurrent cell + logistic binary classifier over token
/// sequences.
///
/// Serializable: a trained model round-trips through serde (e.g. JSON),
/// so classifiers can be trained once and shipped with a dataset release.
#[derive(Debug, Clone)]
pub struct RnnClassifier {
    config: RnnConfig,
    embedding: Param,
    cell: Recurrent,
    head_w: Param,
    head_b: Param,
    step: usize,
}

patchdb_rt::impl_to_from_json!(RnnConfig {
    vocab_size,
    embed_dim,
    hidden_dim,
    epochs,
    lr,
    max_len,
    seed,
});

// Externally tagged, the serde encoding for data-carrying enum variants:
// {"Gru": {...}} / {"Lstm": {...}}.
impl patchdb_rt::json::ToJson for Recurrent {
    fn to_json(&self) -> patchdb_rt::json::Json {
        let (tag, body) = match self {
            Recurrent::Gru(cell) => ("Gru", patchdb_rt::json::ToJson::to_json(cell)),
            Recurrent::Lstm(cell) => ("Lstm", patchdb_rt::json::ToJson::to_json(cell)),
        };
        patchdb_rt::json::Json::Obj(vec![(tag.to_owned(), body)])
    }
}

impl patchdb_rt::json::FromJson for Recurrent {
    fn from_json(v: &patchdb_rt::json::Json) -> patchdb_rt::json::Result<Self> {
        if let Some(body) = v.get("Gru") {
            return Ok(Recurrent::Gru(patchdb_rt::json::FromJson::from_json(body)?));
        }
        if let Some(body) = v.get("Lstm") {
            return Ok(Recurrent::Lstm(patchdb_rt::json::FromJson::from_json(body)?));
        }
        Err(patchdb_rt::json::JsonError::new("expected a Gru or Lstm variant object"))
    }
}

patchdb_rt::impl_to_from_json!(RnnClassifier {
    config,
    embedding,
    cell,
    head_w,
    head_b,
    step,
});

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl RnnClassifier {
    /// Creates a freshly initialized (untrained) GRU-backed model.
    pub fn new(config: RnnConfig) -> Self {
        Self::with_backbone(config, Backbone::Gru)
    }

    /// Creates a model with an explicit recurrent backbone.
    pub fn with_backbone(config: RnnConfig, backbone: Backbone) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let embedding =
            Param::new(Mat::xavier(config.vocab_size, config.embed_dim, &mut rng));
        let cell = match backbone {
            Backbone::Gru => {
                Recurrent::Gru(GruCell::new(config.embed_dim, config.hidden_dim, &mut rng))
            }
            Backbone::Lstm => {
                Recurrent::Lstm(LstmCell::new(config.embed_dim, config.hidden_dim, &mut rng))
            }
        };
        RnnClassifier {
            embedding,
            cell,
            head_w: Param::new(Mat::xavier(1, config.hidden_dim, &mut rng)),
            head_b: Param::new(Mat::zeros(1, 1)),
            step: 0,
            config,
        }
    }

    /// Which backbone this model uses.
    pub fn backbone(&self) -> Backbone {
        match self.cell {
            Recurrent::Gru(_) => Backbone::Gru,
            Recurrent::Lstm(_) => Backbone::Lstm,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &RnnConfig {
        &self.config
    }

    /// Runs the network; returns P(positive) for one sequence.
    pub fn predict_proba(&self, seq: &TokenSequence) -> f64 {
        let (p, _, _) = self.forward(seq);
        p
    }

    /// Hard decision at 0.5.
    pub fn predict(&self, seq: &TokenSequence) -> bool {
        self.predict_proba(seq) >= 0.5
    }

    fn forward(
        &self,
        seq: &TokenSequence,
    ) -> (f64, Vec<f64>, Vec<(u32, StepState)>) {
        let mut h = vec![0.0; self.config.hidden_dim];
        let mut c = vec![0.0; self.config.hidden_dim];
        let mut caches = Vec::new();
        for &id in seq.ids().iter().take(self.config.max_len) {
            let idx = (id as usize).min(self.config.vocab_size - 1);
            let x = self.embedding.value.row(idx).to_vec();
            match &self.cell {
                Recurrent::Gru(cell) => {
                    let (h2, cache) = cell.forward(&x, &h);
                    h = h2;
                    caches.push((idx as u32, StepState::Gru(cache)));
                }
                Recurrent::Lstm(cell) => {
                    let (h2, c2, cache) = cell.forward(&x, &h, &c);
                    h = h2;
                    c = c2;
                    caches.push((idx as u32, StepState::Lstm(cache)));
                }
            }
        }
        let logit = self
            .head_w
            .value
            .row(0)
            .iter()
            .zip(&h)
            .map(|(w, hv)| w * hv)
            .sum::<f64>()
            + self.head_b.value.as_slice()[0];
        (sigmoid(logit), h, caches)
    }

    /// Trains on `(sequence, label)` pairs with per-example Adam updates
    /// (matching the paper's small-dataset regime); returns the mean
    /// binary-cross-entropy of the final epoch.
    pub fn train(&mut self, data: &[(TokenSequence, bool)]) -> f64 {
        let _span = patchdb_rt::obs::span("nn.train");
        patchdb_rt::obs::counter_add("nn.epochs", self.config.epochs as u64);
        let mut rng = Xoshiro256pp::seed_from_u64(self.config.seed ^ 0xABCD);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut last_loss = 0.0;
        for _ in 0..self.config.epochs {
            let _epoch = patchdb_rt::obs::span("nn.epoch");
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0;
            for &i in &order {
                let (seq, label) = &data[i];
                if seq.is_empty() {
                    continue;
                }
                loss_sum += self.train_one(seq, *label);
            }
            last_loss = loss_sum / data.len().max(1) as f64;
        }
        last_loss
    }

    fn train_one(&mut self, seq: &TokenSequence, label: bool) -> f64 {
        let (p, h, caches) = self.forward(seq);
        let y = f64::from(label);
        let loss = -(y * p.max(1e-12).ln() + (1.0 - y) * (1.0 - p).max(1e-12).ln());

        // Head gradients: dlogit = p − y.
        let dlogit = p - y;
        self.head_w.grad.add_outer(&[dlogit], &h);
        self.head_b.grad.as_mut_slice()[0] += dlogit;
        let mut dh: Vec<f64> =
            self.head_w.value.row(0).iter().map(|w| w * dlogit).collect();

        // BPTT through the recurrent cell, scattering into the embedding.
        let mut dc = vec![0.0; self.config.hidden_dim];
        for (idx, cache) in caches.iter().rev() {
            let dx = match (&mut self.cell, cache) {
                (Recurrent::Gru(cell), StepState::Gru(cache)) => {
                    let (dx, dh_prev) = cell.backward(&dh, cache);
                    dh = dh_prev;
                    dx
                }
                (Recurrent::Lstm(cell), StepState::Lstm(cache)) => {
                    let (dx, dh_prev, dc_prev) = cell.backward(&dh, &dc, cache);
                    dh = dh_prev;
                    dc = dc_prev;
                    dx
                }
                _ => unreachable!("cache kind always matches the backbone"),
            };
            let row = self.embedding.grad.row_mut(*idx as usize);
            for (g, d) in row.iter_mut().zip(&dx) {
                *g += d;
            }
        }

        self.step += 1;
        self.embedding.adam_step(self.config.lr, self.step);
        match &mut self.cell {
            Recurrent::Gru(cell) => cell.adam_step(self.config.lr, self.step),
            Recurrent::Lstm(cell) => cell.adam_step(self.config.lr, self.step),
        }
        self.head_w.adam_step(self.config.lr, self.step);
        self.head_b.adam_step(self.config.lr, self.step);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RnnConfig {
        RnnConfig {
            vocab_size: 32,
            embed_dim: 8,
            hidden_dim: 8,
            epochs: 25,
            lr: 0.02,
            max_len: 24,
            seed: 3,
        }
    }

    fn keyword_task(n: usize) -> Vec<(TokenSequence, bool)> {
        // Positive iff the "keyword" token 9 appears.
        (0..n)
            .map(|i| {
                let pos = i % 2 == 0;
                let filler = 5 + (i % 3) as u32;
                let mut ids = vec![filler, filler + 1, filler];
                if pos {
                    ids.insert(i % ids.len(), 9);
                }
                (TokenSequence::new(ids), pos)
            })
            .collect()
    }

    #[test]
    fn learns_keyword_detection() {
        let data = keyword_task(80);
        let mut m = RnnClassifier::new(cfg());
        let loss = m.train(&data);
        assert!(loss < 0.3, "final loss {loss}");
        let correct = data
            .iter()
            .filter(|(s, y)| m.predict(s) == *y)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn order_sensitivity_is_learnable() {
        // Positive iff token 9 appears BEFORE token 10 — requires state.
        let data: Vec<(TokenSequence, bool)> = (0..120)
            .map(|i| {
                let pos = i % 2 == 0;
                let ids = if pos { vec![6, 9, 7, 10, 6] } else { vec![6, 10, 7, 9, 6] };
                (TokenSequence::new(ids), pos)
            })
            .collect();
        let mut config = cfg();
        config.epochs = 60;
        let mut m = RnnClassifier::new(config);
        m.train(&data);
        assert!(m.predict(&TokenSequence::new(vec![6, 9, 7, 10, 6])));
        assert!(!m.predict(&TokenSequence::new(vec![6, 10, 7, 9, 6])));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = keyword_task(20);
        let mut a = RnnClassifier::new(cfg());
        let mut b = RnnClassifier::new(cfg());
        a.train(&data);
        b.train(&data);
        let probe = TokenSequence::new(vec![5, 9, 5]);
        assert_eq!(a.predict_proba(&probe), b.predict_proba(&probe));
    }

    #[test]
    fn lstm_backbone_learns_too() {
        let data = keyword_task(80);
        let mut m = RnnClassifier::with_backbone(cfg(), Backbone::Lstm);
        assert_eq!(m.backbone(), Backbone::Lstm);
        m.train(&data);
        let correct = data.iter().filter(|(s, y)| m.predict(s) == *y).count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "LSTM accuracy {}",
            correct as f64 / data.len() as f64
        );
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        use patchdb_rt::json::{FromJson, Json, ToJson};
        let data = keyword_task(40);
        let mut model = RnnClassifier::new(cfg());
        model.train(&data);
        let json = model.to_json().to_compact_string();
        let parsed = Json::parse(&json).expect("parses");
        let back = RnnClassifier::from_json(&parsed).expect("deserializes");
        for (seq, _) in &data {
            let (a, b) = (model.predict_proba(seq), back.predict_proba(seq));
            // Floats are printed in shortest-round-trip form, so the
            // restored weights are bit-identical and predictions agree
            // exactly.
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        assert_eq!(model.backbone(), back.backbone());
    }

    #[test]
    fn out_of_range_ids_clamp() {
        let m = RnnClassifier::new(cfg());
        let p = m.predict_proba(&TokenSequence::new(vec![9999]));
        assert!(p.is_finite());
    }

    #[test]
    fn empty_sequence_gets_prior() {
        let m = RnnClassifier::new(cfg());
        let p = m.predict_proba(&TokenSequence::new(vec![]));
        assert!((0.0..=1.0).contains(&p));
    }
}
