//! Minimal dense linear algebra for the GRU: row-major matrices over f64
//! with exactly the operations backpropagation needs.

use patchdb_rt::rng::Xoshiro256pp;

/// A row-major `rows × cols` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier(rows: usize, cols: usize, rng: &mut Xoshiro256pp) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect();
        Mat { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `y = self · x` (matrix–vector product).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = self.row(r);
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// `y = selfᵀ · x` (transposed product, for backward passes).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, xr) in x.iter().enumerate() {
            if *xr == 0.0 {
                continue;
            }
            for (yc, a) in y.iter_mut().zip(self.row(r)) {
                *yc += a * xr;
            }
        }
        y
    }

    /// Accumulates the outer product: `self += a ⊗ b`.
    ///
    /// # Panics
    ///
    /// Panics when dimensions disagree.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), self.rows, "add_outer rows mismatch");
        assert_eq!(b.len(), self.cols, "add_outer cols mismatch");
        for (r, ar) in a.iter().enumerate() {
            if *ar == 0.0 {
                continue;
            }
            for (cell, bv) in self.row_mut(r).iter_mut().zip(b) {
                *cell += ar * bv;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Flat access to all elements.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat mutable access to all elements.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

patchdb_rt::impl_to_from_json!(Mat { rows, cols, data });

/// A parameter tensor with Adam moment buffers.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient for the current step.
    pub grad: Mat,
    m: Mat,
    v: Mat,
}

patchdb_rt::impl_to_from_json!(Param { value, grad, m, v });

impl Param {
    /// Wraps an initialized value matrix.
    pub fn new(value: Mat) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Param { value, grad: Mat::zeros(r, c), m: Mat::zeros(r, c), v: Mat::zeros(r, c) }
    }

    /// One Adam step at time `t` (1-based) with learning rate `lr`,
    /// consuming and clearing the accumulated gradient.
    pub fn adam_step(&mut self, lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let bc1 = 1.0 - B1.powi(t as i32);
        let bc2 = 1.0 - B2.powi(t as i32);
        for i in 0..self.value.as_slice().len() {
            let g = self.grad.as_slice()[i].clamp(-5.0, 5.0); // gradient clipping
            let m = &mut self.m.as_mut_slice()[i];
            *m = B1 * *m + (1.0 - B1) * g;
            let v = &mut self.v.as_mut_slice()[i];
            *v = B2 * *v + (1.0 - B2) * g * g;
            let mhat = self.m.as_slice()[i] / bc1;
            let vhat = self.v.as_slice()[i] / bc2;
            self.value.as_mut_slice()[i] -= lr * mhat / (vhat.sqrt() + EPS);
        }
        self.grad.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let mut m = Mat::zeros(2, 2);
        m.row_mut(0)[0] = 1.0;
        m.row_mut(1)[1] = 1.0;
        assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let mut m = Mat::zeros(2, 3);
        m.row_mut(0).copy_from_slice(&[1.0, 2.0, 3.0]);
        m.row_mut(1).copy_from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_accumulates() {
        let mut m = Mat::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0]);
        m.add_outer(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(m.as_slice(), &[4.0, 5.0, 6.0, 8.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = patchdb_rt::rng::Xoshiro256pp::seed_from_u64(1);
        let m = Mat::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn adam_descends_quadratic() {
        // Minimize f(x) = (x - 3)² from 0.
        let mut p = Param::new(Mat::zeros(1, 1));
        for t in 1..=500 {
            let x = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * (x - 3.0);
            p.adam_step(0.05, t);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_checks_dims() {
        Mat::zeros(2, 2).matvec(&[1.0]);
    }
}
