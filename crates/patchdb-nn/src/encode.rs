//! Patch → token-id sequence encoding: "the source code of a given patch
//! as a list of tokens including keywords, identifiers, operators, etc."
//! (Section IV-C), with line-kind markers so the model can tell added from
//! removed code.

use clang_lite::tokenize_fragment;
use patch_core::{LineKind, Patch};

use crate::vocab::{Vocabulary, MARK_ADD, MARK_CTX, MARK_DEL};

/// A dense token-id sequence ready for the RNN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenSequence {
    ids: Vec<u32>,
}

impl TokenSequence {
    /// Wraps raw ids.
    pub fn new(ids: Vec<u32>) -> Self {
        TokenSequence { ids }
    }

    /// The ids.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// A copy truncated to at most `max_len` ids.
    pub fn truncated(&self, max_len: usize) -> TokenSequence {
        TokenSequence { ids: self.ids.iter().copied().take(max_len).collect() }
    }
}

/// Extracts the raw token texts of a patch, with `⟨add⟩`/`⟨del⟩`/`⟨ctx⟩`
/// sentinel strings prefixed per line; used to build vocabularies.
pub fn patch_token_texts(patch: &Patch) -> Vec<String> {
    let mut out = Vec::new();
    for hunk in patch.hunks() {
        for line in &hunk.lines {
            out.push(
                match line.kind {
                    LineKind::Added => "⟨add⟩",
                    LineKind::Removed => "⟨del⟩",
                    LineKind::Context => "⟨ctx⟩",
                }
                .to_owned(),
            );
            for t in tokenize_fragment(&line.content, 1) {
                out.push(t.text);
            }
        }
    }
    out
}

/// Encodes a patch against a vocabulary. Sentinels map to the reserved
/// marker ids rather than going through the vocabulary.
pub fn encode_patch(patch: &Patch, vocab: &Vocabulary) -> TokenSequence {
    let mut ids = Vec::new();
    for hunk in patch.hunks() {
        for line in &hunk.lines {
            ids.push(match line.kind {
                LineKind::Added => MARK_ADD,
                LineKind::Removed => MARK_DEL,
                LineKind::Context => MARK_CTX,
            });
            for t in tokenize_fragment(&line.content, 1) {
                ids.push(vocab.id(&t.text));
            }
        }
    }
    TokenSequence { ids }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patch_core::diff_files;

    fn sample_patch() -> Patch {
        Patch::builder("0".repeat(40))
            .file(diff_files(
                "a.c",
                "int f() {\n  return 1;\n}\n",
                "int f() {\n  if (g())\n    return 0;\n  return 1;\n}\n",
                3,
            ))
            .build()
    }

    #[test]
    fn texts_include_markers_and_tokens() {
        let texts = patch_token_texts(&sample_patch());
        assert!(texts.contains(&"⟨add⟩".to_owned()));
        assert!(texts.contains(&"if".to_owned()));
        assert!(texts.contains(&"return".to_owned()));
    }

    #[test]
    fn encode_round_trips_known_tokens() {
        let p = sample_patch();
        let texts = vec![patch_token_texts(&p)];
        let refs: Vec<&[String]> = texts.iter().map(Vec::as_slice).collect();
        let vocab = Vocabulary::build(refs.iter().copied(), 100);
        let seq = encode_patch(&p, &vocab);
        assert!(!seq.is_empty());
        assert!(seq.ids().contains(&MARK_ADD));
        // Every id is in range.
        assert!(seq.ids().iter().all(|&i| (i as usize) < vocab.size()));
    }

    #[test]
    fn truncation() {
        let s = TokenSequence::new((0..100).collect());
        assert_eq!(s.truncated(10).len(), 10);
        assert_eq!(s.truncated(1000).len(), 100);
    }
}
