//! Property tests for the neural substrate: numerical stability of the
//! recurrent cells, encoding bounds, and training determinism. Runs on
//! `patchdb_rt::check`, the in-repo property harness.

use patchdb_rt::check::check;
use patchdb_rt::rng::Xoshiro256pp;

use patchdb_nn::{
    encode_patch, patch_token_texts, Backbone, GruCell, LstmCell, RnnClassifier, RnnConfig,
    TokenSequence, Vocabulary,
};

const CASES: u32 = 64;

/// GRU states stay in [-1, 1] and finite for arbitrary bounded inputs.
#[test]
fn gru_state_bounded() {
    check("gru_state_bounded", CASES, |g| {
        let seed = g.u64();
        let xs = g.vec_with(1, 29, |g| {
            (0..4).map(|_| g.f64_in(-5.0, 5.0)).collect::<Vec<f64>>()
        });
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let cell = GruCell::new(4, 6, &mut rng);
        let mut h = vec![0.0; 6];
        for x in &xs {
            let (h2, _) = cell.forward(x, &h);
            h = h2;
            assert!(h.iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));
        }
    });
}

/// LSTM hidden states stay in [-1, 1]; cell states stay finite.
#[test]
fn lstm_state_bounded() {
    check("lstm_state_bounded", CASES, |g| {
        let seed = g.u64();
        let xs = g.vec_with(1, 29, |g| {
            (0..4).map(|_| g.f64_in(-5.0, 5.0)).collect::<Vec<f64>>()
        });
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let cell = LstmCell::new(4, 6, &mut rng);
        let mut h = vec![0.0; 6];
        let mut c = vec![0.0; 6];
        for x in &xs {
            let (h2, c2, _) = cell.forward(x, &h, &c);
            h = h2;
            c = c2;
            assert!(h.iter().all(|v| v.is_finite() && v.abs() <= 1.0 + 1e-9));
            assert!(c.iter().all(|v| v.is_finite()));
        }
    });
}

/// Classifier probabilities are valid for arbitrary token sequences,
/// including out-of-vocabulary and empty ones.
#[test]
fn classifier_probability_valid() {
    check("classifier_probability_valid", CASES, |g| {
        let backbone_lstm = g.bool();
        let ids = g.vec_with(0, 63, |g| g.u64_in(0, 9_999) as u32);
        let config = RnnConfig {
            vocab_size: 64,
            embed_dim: 8,
            hidden_dim: 8,
            epochs: 1,
            lr: 1e-2,
            max_len: 32,
            seed: 5,
        };
        let backbone = if backbone_lstm { Backbone::Lstm } else { Backbone::Gru };
        let model = RnnClassifier::with_backbone(config, backbone);
        let p = model.predict_proba(&TokenSequence::new(ids));
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    });
}

/// Training twice with the same seed is bit-deterministic.
#[test]
fn training_deterministic() {
    check("training_deterministic", CASES, |g| {
        let flip = g.bool();
        let data: Vec<(TokenSequence, bool)> = (0..30u32)
            .map(|i| (TokenSequence::new(vec![5 + i % 7, 9, 6]), i % 2 == 0))
            .collect();
        let config = RnnConfig {
            vocab_size: 32,
            embed_dim: 6,
            hidden_dim: 6,
            epochs: 2,
            lr: 1e-2,
            max_len: 16,
            seed: if flip { 3 } else { 4 },
        };
        let mut a = RnnClassifier::new(config);
        let mut b = RnnClassifier::new(config);
        let la = a.train(&data);
        let lb = b.train(&data);
        assert_eq!(la, lb);
        let probe = TokenSequence::new(vec![5, 9, 6]);
        assert_eq!(a.predict_proba(&probe), b.predict_proba(&probe));
    });
}

/// Patch encoding only emits ids inside the vocabulary's id space.
#[test]
fn encoding_ids_in_range() {
    check("encoding_ids_in_range", CASES, |g| {
        let edits = g.vec_with(1, 5, |g| g.usize_in(0, 4));
        // Build a couple of patches whose shapes vary with `edits`.
        let before = "int f(int a) {\n    use(a);\n    return a;\n}\n";
        let mut after_lines: Vec<String> = before.lines().map(str::to_owned).collect();
        for (i, e) in edits.iter().enumerate() {
            after_lines.insert(1 + (i % (after_lines.len() - 1)), format!("    guard_{e}(a);"));
        }
        let after = after_lines.join("\n") + "\n";
        let patch = patch_core::Patch::builder("c".repeat(40))
            .file(patch_core::diff_files("p.c", before, &after, 3))
            .build();

        let texts = vec![patch_token_texts(&patch)];
        let refs: Vec<&[String]> = texts.iter().map(Vec::as_slice).collect();
        let vocab = Vocabulary::build(refs.iter().copied(), 64);
        let seq = encode_patch(&patch, &vocab);
        assert!(!seq.is_empty());
        assert!(seq.ids().iter().all(|&id| (id as usize) < vocab.size()));
    });
}
