//! Syntactic statistics over token streams: the per-fragment counters that
//! feed the Table I feature extractor in `patchdb-features`.


use crate::keywords::Keyword;
use crate::token::{Token, TokenKind};

/// The operator families Table I counts (features 23–42).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperatorClass {
    /// `+ - * / % ++ --` (also compound-assign arithmetic like `+=`).
    Arithmetic,
    /// `< > <= >= == !=`.
    Relational,
    /// `&& || !`.
    Logical,
    /// `& | ^ ~ << >>` and their compound assignments.
    Bitwise,
    /// Pointer/memory access: unary `*`/`&` (approximated), `->`, `[`, `.`
    /// plus `sizeof`, `new`, `delete`.
    Memory,
    /// Anything else (`=`, `,`, `;`, parens, …).
    Other,
}

/// Classifies one punctuator (by text) into an [`OperatorClass`].
///
/// Stream context matters for `*` and `&`, which can be arithmetic/bitwise
/// or pointer operators; [`count_stats`] resolves them with lookahead, but
/// this standalone classifier labels them by their binary reading.
pub fn classify_operator(text: &str) -> OperatorClass {
    match text {
        "+" | "-" | "/" | "%" | "++" | "--" | "+=" | "-=" | "*=" | "/=" | "%=" | "*" => {
            OperatorClass::Arithmetic
        }
        "<" | ">" | "<=" | ">=" | "==" | "!=" => OperatorClass::Relational,
        "&&" | "||" | "!" => OperatorClass::Logical,
        "&" | "|" | "^" | "~" | "<<" | ">>" | "&=" | "|=" | "^=" | "<<=" | ">>=" => {
            OperatorClass::Bitwise
        }
        "->" | "[" | "." | "->*" | ".*" => OperatorClass::Memory,
        _ => OperatorClass::Other,
    }
}

/// Identifiers treated as memory-management calls for the memory-operator
/// counter, mirroring the paper's examples (`strcpy`→`strlcpy`, alloc/free
/// call changes are Type-8 evidence).
const MEMORY_FUNCTIONS: &[&str] = &[
    "malloc", "calloc", "realloc", "free", "memcpy", "memmove", "memset", "memcmp",
    "strcpy", "strncpy", "strlcpy", "strscpy", "strcat", "strncat", "strlcat", "strdup", "alloca",
    "kmalloc", "kzalloc", "kfree", "vmalloc", "vfree", "mmap", "munmap",
];

/// Syntactic counters for one code fragment (a patch line, hunk, or file).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentStats {
    /// Non-comment, non-preprocessor token count.
    pub tokens: usize,
    /// `if` keyword count (Table I features 11–14).
    pub ifs: usize,
    /// Loop keyword count: `for`, `while`, `do` (features 15–18).
    pub loops: usize,
    /// Function-call count: identifier directly followed by `(` (19–22).
    pub calls: usize,
    /// Arithmetic operator count (23–26).
    pub arithmetic_ops: usize,
    /// Relational operator count (27–30).
    pub relation_ops: usize,
    /// Logical operator count (31–34).
    pub logical_ops: usize,
    /// Bitwise operator count (35–38).
    pub bitwise_ops: usize,
    /// Memory operator count: pointer access + memory-management calls
    /// (39–42).
    pub memory_ops: usize,
    /// Variable-use count: identifiers that are not called (43–46).
    pub variables: usize,
    /// Jump keyword count (`break`/`continue`/`return`/`goto`).
    pub jumps: usize,
    /// String/char/int/float literal count.
    pub literals: usize,
}

impl FragmentStats {
    /// Component-wise sum, for accumulating per-line stats into hunks.
    pub fn add(&mut self, other: &FragmentStats) {
        self.tokens += other.tokens;
        self.ifs += other.ifs;
        self.loops += other.loops;
        self.calls += other.calls;
        self.arithmetic_ops += other.arithmetic_ops;
        self.relation_ops += other.relation_ops;
        self.logical_ops += other.logical_ops;
        self.bitwise_ops += other.bitwise_ops;
        self.memory_ops += other.memory_ops;
        self.variables += other.variables;
        self.jumps += other.jumps;
        self.literals += other.literals;
    }
}

/// Computes [`FragmentStats`] over a lexed token stream.
///
/// `*` and `&` are disambiguated with one token of left context: after an
/// identifier, literal, `)` or `]` they read as binary (arithmetic /
/// bitwise); otherwise as pointer (memory) operators.
pub fn count_stats(tokens: &[Token]) -> FragmentStats {
    let mut s = FragmentStats::default();
    for (i, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Comment | TokenKind::Preprocessor => continue,
            _ => s.tokens += 1,
        }
        match &t.kind {
            TokenKind::Keyword(kw) => {
                if *kw == Keyword::If {
                    s.ifs += 1;
                } else if kw.is_loop() {
                    s.loops += 1;
                } else if kw.is_jump() {
                    s.jumps += 1;
                } else if matches!(kw, Keyword::Sizeof | Keyword::New | Keyword::Delete) {
                    s.memory_ops += 1;
                }
            }
            TokenKind::Ident => {
                let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                if called {
                    s.calls += 1;
                    if MEMORY_FUNCTIONS.contains(&t.text.as_str()) {
                        s.memory_ops += 1;
                    }
                } else {
                    s.variables += 1;
                }
            }
            TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char => {
                s.literals += 1;
            }
            TokenKind::Punct => {
                let class = match t.text.as_str() {
                    "*" | "&" => {
                        let binary = i > 0
                            && matches!(
                                &tokens[i - 1].kind,
                                TokenKind::Ident
                                    | TokenKind::Int
                                    | TokenKind::Float
                                    | TokenKind::Str
                                    | TokenKind::Char
                            )
                            || (i > 0
                                && (tokens[i - 1].is_punct(")") || tokens[i - 1].is_punct("]")));
                        if binary {
                            if t.text == "*" {
                                OperatorClass::Arithmetic
                            } else {
                                OperatorClass::Bitwise
                            }
                        } else {
                            OperatorClass::Memory
                        }
                    }
                    other => classify_operator(other),
                };
                match class {
                    OperatorClass::Arithmetic => s.arithmetic_ops += 1,
                    OperatorClass::Relational => s.relation_ops += 1,
                    OperatorClass::Logical => s.logical_ops += 1,
                    OperatorClass::Bitwise => s.bitwise_ops += 1,
                    OperatorClass::Memory => s.memory_ops += 1,
                    OperatorClass::Other => {}
                }
            }
            TokenKind::Comment | TokenKind::Preprocessor => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn stats(src: &str) -> FragmentStats {
        count_stats(&tokenize(src))
    }

    #[test]
    fn counts_ifs_and_loops() {
        let s = stats("if (a) { for (;;) {} while (b) {} do {} while (c); }");
        assert_eq!(s.ifs, 1);
        // Lexical convention: `do … while` contributes two loop keywords,
        // matching a token-level Python extractor.
        assert_eq!(s.loops, 4);
    }

    #[test]
    fn calls_vs_variables() {
        let s = stats("foo(bar, baz(1));");
        assert_eq!(s.calls, 2); // foo, baz
        assert_eq!(s.variables, 1); // bar
    }

    #[test]
    fn operator_families() {
        let s = stats("a = b + c * d; e = f < g && h | i; j = !k;");
        assert_eq!(s.arithmetic_ops, 2); // + and binary *
        assert_eq!(s.relation_ops, 1);
        assert_eq!(s.logical_ops, 2); // && and !
        assert_eq!(s.bitwise_ops, 1);
    }

    #[test]
    fn pointer_star_is_memory() {
        let s = stats("int *p = &x; *p = 1;");
        // `*` after `int` (keyword) → memory; `&` after `=` → memory;
        // `*` after `;` → memory.
        assert_eq!(s.memory_ops, 3);
        assert_eq!(s.arithmetic_ops, 0);
    }

    #[test]
    fn binary_star_after_paren() {
        let s = stats("y = (a) * b;");
        assert_eq!(s.arithmetic_ops, 1);
        assert_eq!(s.memory_ops, 0);
    }

    #[test]
    fn memory_functions_count() {
        let s = stats("p = malloc(n); free(p); q->r[i] = 0;");
        // malloc + free + -> + [ = 4
        assert_eq!(s.memory_ops, 4);
        assert_eq!(s.calls, 2);
    }

    #[test]
    fn jumps_and_literals() {
        let s = stats("return 0; goto out; x = \"s\"; c = 'a';");
        assert_eq!(s.jumps, 2);
        assert_eq!(s.literals, 3);
    }

    #[test]
    fn accumulation() {
        let mut a = stats("if (x) y();");
        let b = stats("while (z) {}");
        a.add(&b);
        assert_eq!(a.ifs, 1);
        assert_eq!(a.loops, 1);
    }

    #[test]
    fn empty_fragment_is_zero() {
        assert_eq!(stats(""), FragmentStats::default());
    }
}
