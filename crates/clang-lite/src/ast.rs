//! A statement-level AST for C/C++ bodies — the richer structural view on
//! top of the token stream, playing the role of LLVM's statement nodes
//! (`IfStmt <line:N, line:N>` etc., Section III-C-2 of the paper).
//!
//! The parser is recursive-descent at *statement* granularity: it
//! understands control-flow statements, blocks, declarations, labels and
//! jumps, and treats everything else as opaque expression statements. It
//! is tolerant: unbalanced or exotic input degrades to `Expr` nodes
//! rather than failing, because patches routinely reference code we only
//! partially see.


use crate::keywords::Keyword;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// The kind of a statement node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `if (…) … [else …]`; `children[0]` is the then-branch and
    /// `children[1]` (when present) the else-branch.
    If {
        /// Raw condition text.
        cond: String,
        /// Whether an else branch exists.
        has_else: bool,
    },
    /// `while (…) …`.
    While {
        /// Raw condition text.
        cond: String,
    },
    /// `do … while (…);`.
    DoWhile,
    /// `for (…) …`.
    For,
    /// `switch (…) { … }`.
    Switch,
    /// `{ … }`.
    Block,
    /// `return …;`.
    Return,
    /// `goto label;`.
    Goto,
    /// `break;`.
    Break,
    /// `continue;`.
    Continue,
    /// A local declaration (starts with a type keyword).
    Decl,
    /// `label:`.
    Label(String),
    /// `case …:` / `default:`.
    CaseLabel,
    /// Anything else ending in `;`.
    Expr,
    /// A stray `;`.
    Empty,
}

/// One statement node with its (1-based, inclusive) line extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// First line of the statement.
    pub start_line: usize,
    /// Last line of the statement (including nested bodies).
    pub end_line: usize,
    /// Nested statements (branch bodies, block members).
    pub children: Vec<Stmt>,
}

impl Stmt {
    /// Depth-first pre-order iterator over this statement and descendants.
    pub fn walk(&self) -> Vec<&Stmt> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }

    /// Counts nodes of a given predicate in the subtree.
    pub fn count_matching(&self, pred: &dyn Fn(&Stmt) -> bool) -> usize {
        self.walk().into_iter().filter(|s| pred(s)).count()
    }
}

/// Parses every balanced `{ … }` body in `src` into statement trees. Top
/// level returns one [`StmtKind::Block`] per function-ish body found.
pub fn parse_bodies(src: &str) -> Vec<Stmt> {
    let tokens = tokenize(src);
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut depth = 0isize;
    while i < tokens.len() {
        if tokens[i].is_punct("{") {
            if depth == 0 {
                let mut cur = Cursor { tokens: &tokens, pos: i };
                if let Some(stmt) = cur.block() {
                    out.push(stmt);
                    i = cur.pos;
                    continue;
                }
            }
            depth += 1;
        } else if tokens[i].is_punct("}") {
            depth -= 1;
        }
        i += 1;
    }
    out
}

struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(p))
    }

    fn line(&self) -> usize {
        self.peek().map_or(1, |t| t.span.line)
    }

    /// Consumes a balanced parenthesized group, returning its inner text.
    fn paren_group(&mut self) -> Option<(String, usize)> {
        if !self.at_punct("(") {
            return None;
        }
        let mut depth = 0isize;
        let mut parts: Vec<&str> = Vec::new();
        let mut end_line = self.line();
        while let Some(t) = self.bump() {
            if t.is_punct("(") {
                depth += 1;
                if depth > 1 {
                    parts.push("(");
                }
            } else if t.is_punct(")") {
                depth -= 1;
                end_line = t.span.end_line;
                if depth == 0 {
                    return Some((parts.join(" "), end_line));
                }
                parts.push(")");
            } else {
                parts.push(t.text.as_str());
            }
        }
        Some((parts.join(" "), end_line)) // unbalanced: tolerate
    }

    /// Consumes tokens to the next `;` at depth 0, or stops before `}`.
    fn to_semicolon(&mut self) -> usize {
        let mut depth = 0isize;
        let mut end = self.line();
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => {
                        if depth == 0 {
                            return end;
                        }
                        depth -= 1;
                    }
                    "}" => {
                        if depth == 0 {
                            return end;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => {
                        end = t.span.end_line;
                        self.bump();
                        return end;
                    }
                    _ => {}
                }
            }
            end = t.span.end_line;
            self.bump();
        }
        end
    }

    fn block(&mut self) -> Option<Stmt> {
        if !self.at_punct("{") {
            return None;
        }
        let start = self.line();
        self.bump();
        let mut children = Vec::new();
        let mut end = start;
        loop {
            match self.peek() {
                None => break,
                Some(t) if t.is_punct("}") => {
                    end = t.span.end_line;
                    self.bump();
                    break;
                }
                _ => {
                    let before = self.pos;
                    if let Some(s) = self.stmt() {
                        end = s.end_line;
                        // Only keep statements that consumed input; a
                        // zero-width "statement" (e.g. a stray `)`) would
                        // otherwise loop forever.
                        if self.pos > before {
                            children.push(s);
                        }
                    }
                    if self.pos == before {
                        // Defensive: never stall.
                        self.bump();
                    }
                }
            }
        }
        Some(Stmt { kind: StmtKind::Block, start_line: start, end_line: end, children })
    }

    fn stmt(&mut self) -> Option<Stmt> {
        let t = self.peek()?.clone();
        let start = t.span.line;
        match &t.kind {
            TokenKind::Punct if t.text == "{" => self.block(),
            TokenKind::Punct if t.text == ";" => {
                self.bump();
                Some(Stmt { kind: StmtKind::Empty, start_line: start, end_line: start, children: vec![] })
            }
            TokenKind::Keyword(Keyword::If) => {
                self.bump();
                let (cond, _) = self.paren_group().unwrap_or_default();
                let then = self.stmt()?;
                let mut end = then.end_line;
                let mut children = vec![then];
                let mut has_else = false;
                if self.peek().is_some_and(|n| n.is_keyword(Keyword::Else)) {
                    self.bump();
                    has_else = true;
                    let els = self.stmt()?;
                    end = els.end_line;
                    children.push(els);
                }
                Some(Stmt {
                    kind: StmtKind::If { cond, has_else },
                    start_line: start,
                    end_line: end,
                    children,
                })
            }
            TokenKind::Keyword(Keyword::While) => {
                self.bump();
                let (cond, cond_end) = self.paren_group().unwrap_or_default();
                let body = self.stmt();
                let (end, children) = match body {
                    Some(b) => (b.end_line, vec![b]),
                    None => (cond_end, vec![]),
                };
                Some(Stmt { kind: StmtKind::While { cond }, start_line: start, end_line: end, children })
            }
            TokenKind::Keyword(Keyword::Do) => {
                self.bump();
                let body = self.stmt()?;
                // `while ( … ) ;`
                if self.peek().is_some_and(|n| n.is_keyword(Keyword::While)) {
                    self.bump();
                    let _ = self.paren_group();
                }
                let end = self.to_semicolon().max(body.end_line);
                Some(Stmt { kind: StmtKind::DoWhile, start_line: start, end_line: end, children: vec![body] })
            }
            TokenKind::Keyword(Keyword::For) => {
                self.bump();
                let (_, header_end) = self.paren_group().unwrap_or_default();
                let body = self.stmt();
                let (end, children) = match body {
                    Some(b) => (b.end_line, vec![b]),
                    None => (header_end, vec![]),
                };
                Some(Stmt { kind: StmtKind::For, start_line: start, end_line: end, children })
            }
            TokenKind::Keyword(Keyword::Switch) => {
                self.bump();
                let _ = self.paren_group();
                let body = self.stmt();
                let (end, children) = match body {
                    Some(b) => (b.end_line, vec![b]),
                    None => (start, vec![]),
                };
                Some(Stmt { kind: StmtKind::Switch, start_line: start, end_line: end, children })
            }
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Return, start_line: start, end_line: end, children: vec![] })
            }
            TokenKind::Keyword(Keyword::Goto) => {
                self.bump();
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Goto, start_line: start, end_line: end, children: vec![] })
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Break, start_line: start, end_line: end, children: vec![] })
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Continue, start_line: start, end_line: end, children: vec![] })
            }
            TokenKind::Keyword(Keyword::Case) | TokenKind::Keyword(Keyword::Default) => {
                self.bump();
                // Consume to the `:` so the following statements parse on
                // their own.
                while let Some(n) = self.peek() {
                    let done = n.is_punct(":");
                    let end = n.span.end_line;
                    self.bump();
                    if done {
                        return Some(Stmt {
                            kind: StmtKind::CaseLabel,
                            start_line: start,
                            end_line: end,
                            children: vec![],
                        });
                    }
                }
                None
            }
            TokenKind::Keyword(kw) if kw.is_type() => {
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Decl, start_line: start, end_line: end, children: vec![] })
            }
            TokenKind::Ident => {
                // Label? `ident :` not followed by another `:` (avoid `::`).
                let next = self.tokens.get(self.pos + 1);
                let next2 = self.tokens.get(self.pos + 2);
                if next.is_some_and(|n| n.is_punct(":")) && !next2.is_some_and(|n| n.is_punct(":"))
                {
                    let name = t.text.clone();
                    self.bump();
                    let colon_end = self.peek().map_or(start, |c| c.span.end_line);
                    self.bump();
                    return Some(Stmt {
                        kind: StmtKind::Label(name),
                        start_line: start,
                        end_line: colon_end,
                        children: vec![],
                    });
                }
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Expr, start_line: start, end_line: end, children: vec![] })
            }
            _ => {
                let end = self.to_semicolon();
                Some(Stmt { kind: StmtKind::Expr, start_line: start, end_line: end, children: vec![] })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"int f(struct s *p, int n)
{
    int i = 0;
    if (!p)
        return -1;
    for (i = 0; i < n; i++) {
        if (p->data[i] == 0)
            break;
        use(p, i);
    }
    while (n > 0)
        n--;
    do {
        step();
    } while (more());
    switch (n) {
    case 0:
        return 0;
    default:
        break;
    }
out:
    cleanup(p);
    goto out;
}
"#;

    fn body() -> Stmt {
        let bodies = parse_bodies(SRC);
        assert_eq!(bodies.len(), 1, "{bodies:#?}");
        bodies.into_iter().next().unwrap()
    }

    #[test]
    fn parses_all_statement_kinds() {
        let b = body();
        let kinds: Vec<&StmtKind> = b.walk().into_iter().map(|s| &s.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::If { .. })));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::For)));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::While { .. })));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::DoWhile)));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Switch)));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Goto)));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Label(n) if n == "out")));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::CaseLabel)));
        assert!(kinds.iter().any(|k| matches!(k, StmtKind::Decl)));
    }

    #[test]
    fn if_extents_match_find_if_statements() {
        let b = body();
        let ast_ifs: Vec<(usize, usize)> = b
            .walk()
            .into_iter()
            .filter(|s| matches!(s.kind, StmtKind::If { .. }))
            .map(|s| (s.start_line, s.end_line))
            .collect();
        let finder_ifs: Vec<(usize, usize)> = crate::structure::find_if_statements(SRC)
            .into_iter()
            .map(|s| (s.line(), s.end_line))
            .collect();
        assert_eq!(ast_ifs, finder_ifs, "AST and finder disagree");
    }

    #[test]
    fn condition_text_recovered() {
        let b = body();
        let conds: Vec<String> = b
            .walk()
            .into_iter()
            .filter_map(|s| match &s.kind {
                StmtKind::If { cond, .. } => Some(cond.clone()),
                _ => None,
            })
            .collect();
        assert!(conds.iter().any(|c| c.contains('!') && c.contains('p')), "{conds:?}");
    }

    #[test]
    fn else_branch_counted() {
        let src = "void g(int a) {\n    if (a)\n        x();\n    else {\n        y();\n    }\n}\n";
        let b = parse_bodies(src).remove(0);
        let ifs: Vec<&Stmt> = b
            .walk()
            .into_iter()
            .filter(|s| matches!(s.kind, StmtKind::If { .. }))
            .collect();
        assert_eq!(ifs.len(), 1);
        assert!(matches!(ifs[0].kind, StmtKind::If { has_else: true, .. }));
        assert_eq!(ifs[0].children.len(), 2);
        assert_eq!(ifs[0].end_line, 6);
    }

    #[test]
    fn tolerant_on_garbage() {
        for junk in ["{", "{ if ( } ", "{ do until done }", "{{{{", "{ case }"] {
            let _ = parse_bodies(junk); // must not panic or hang
        }
    }

    #[test]
    fn counting_helper() {
        let b = body();
        let jumps = b.count_matching(&|s| {
            matches!(s.kind, StmtKind::Return | StmtKind::Break | StmtKind::Goto)
        });
        assert!(jumps >= 4, "{jumps}");
    }
}
