//! The C/C++ lexer. Never fails: malformed input degrades to best-effort
//! tokens, because PatchDB lexes *patch fragments* that are rarely
//! complete translation units.

use crate::keywords::keyword_of;
use crate::token::{Span, Token, TokenKind};

/// Lexes `src`, skipping comments.
///
/// Preprocessor directives are emitted as single [`TokenKind::Preprocessor`]
/// tokens covering the whole (possibly continued) line.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src, 1).run(false)
}

/// Lexes `src`, including comments as [`TokenKind::Comment`] tokens.
pub fn tokenize_with_comments(src: &str) -> Vec<Token> {
    Lexer::new(src, 1).run(true)
}

/// Lexes a patch-line fragment, reporting spans as if the fragment started
/// on line `line_no`. Comments are skipped; an unterminated block comment
/// or string consumes the rest of the fragment without error.
pub fn tokenize_fragment(fragment: &str, line_no: usize) -> Vec<Token> {
    Lexer::new(fragment, line_no).run(false)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str, start_line: usize) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: start_line, col: 0 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn run(mut self, keep_comments: bool) -> Vec<Token> {
        let mut out = Vec::new();
        let mut at_line_start = true;

        while let Some(b) = self.peek() {
            let (line, col, start) = (self.line, self.col, self.pos);
            match b {
                b' ' | b'\t' | b'\r' => {
                    self.bump();
                }
                b'\n' => {
                    self.bump();
                    at_line_start = true;
                }
                b'#' if at_line_start => {
                    self.consume_preprocessor();
                    out.push(Token {
                        kind: TokenKind::Preprocessor,
                        text: self.text_since(start),
                        span: self.span_from(line, col),
                    });
                    at_line_start = true;
                }
                b'/' if self.peek_at(1) == Some(b'/') => {
                    while self.peek().is_some_and(|c| c != b'\n') {
                        self.bump();
                    }
                    if keep_comments {
                        out.push(Token {
                            kind: TokenKind::Comment,
                            text: self.text_since(start),
                            span: self.span_from(line, col),
                        });
                    }
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => break, // unterminated: tolerate
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                    if keep_comments {
                        out.push(Token {
                            kind: TokenKind::Comment,
                            text: self.text_since(start),
                            span: self.span_from(line, col),
                        });
                    }
                    at_line_start = false;
                }
                b'"' => {
                    self.consume_string(b'"');
                    out.push(Token {
                        kind: TokenKind::Str,
                        text: self.text_since(start),
                        span: self.span_from(line, col),
                    });
                    at_line_start = false;
                }
                b'\'' => {
                    self.consume_string(b'\'');
                    out.push(Token {
                        kind: TokenKind::Char,
                        text: self.text_since(start),
                        span: self.span_from(line, col),
                    });
                    at_line_start = false;
                }
                b'0'..=b'9' => {
                    let kind = self.consume_number();
                    out.push(Token {
                        kind,
                        text: self.text_since(start),
                        span: self.span_from(line, col),
                    });
                    at_line_start = false;
                }
                b'.' if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) => {
                    let kind = self.consume_number();
                    out.push(Token {
                        kind,
                        text: self.text_since(start),
                        span: self.span_from(line, col),
                    });
                    at_line_start = false;
                }
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                    // String prefixes: L"..", u8"..", R"(..)" etc.
                    if let Some(tok) = self.try_prefixed_string(line, col, start) {
                        out.push(tok);
                        at_line_start = false;
                        continue;
                    }
                    while self
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.bump();
                    }
                    let text = self.text_since(start);
                    let kind = match keyword_of(&text) {
                        Some(kw) => TokenKind::Keyword(kw),
                        None => TokenKind::Ident,
                    };
                    out.push(Token { kind, text, span: self.span_from(line, col) });
                    at_line_start = false;
                }
                _ => {
                    self.consume_punct();
                    out.push(Token {
                        kind: TokenKind::Punct,
                        text: self.text_since(start),
                        span: self.span_from(line, col),
                    });
                    at_line_start = false;
                }
            }
        }
        out
    }

    fn span_from(&self, line: usize, col: usize) -> Span {
        Span { line, col, end_line: self.line, end_col: self.col }
    }

    fn consume_preprocessor(&mut self) {
        loop {
            match self.peek() {
                None => break,
                Some(b'\n') => {
                    // Line continuation?
                    if self.src.get(self.pos.wrapping_sub(1)) == Some(&b'\\') {
                        self.bump();
                    } else {
                        break;
                    }
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn consume_string(&mut self, quote: u8) {
        self.bump(); // opening quote
        loop {
            match self.peek() {
                None | Some(b'\n') => break, // unterminated: stop at EOL
                Some(b'\\') => {
                    self.bump();
                    self.bump();
                }
                Some(c) if c == quote => {
                    self.bump();
                    break;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn try_prefixed_string(&mut self, line: usize, col: usize, start: usize) -> Option<Token> {
        let prefixes: [&[u8]; 6] = [b"u8", b"L", b"u", b"U", b"R", b"LR"];
        for p in prefixes {
            if self.src[self.pos..].starts_with(p)
                && self.src.get(self.pos + p.len()) == Some(&b'"')
            {
                for _ in 0..p.len() {
                    self.bump();
                }
                if p.ends_with(b"R") {
                    self.consume_raw_string();
                } else {
                    self.consume_string(b'"');
                }
                return Some(Token {
                    kind: TokenKind::Str,
                    text: self.text_since(start),
                    span: self.span_from(line, col),
                });
            }
        }
        None
    }

    fn consume_raw_string(&mut self) {
        // R"delim( ... )delim" — capture the delimiter then scan for it.
        self.bump(); // `"`
        let delim_start = self.pos;
        while self.peek().is_some_and(|c| c != b'(') {
            self.bump();
        }
        let delim = self.src[delim_start..self.pos].to_vec();
        self.bump(); // `(`
        let mut closer = Vec::with_capacity(delim.len() + 2);
        closer.push(b')');
        closer.extend_from_slice(&delim);
        closer.push(b'"');
        while self.pos < self.src.len() {
            if self.src[self.pos..].starts_with(&closer) {
                for _ in 0..closer.len() {
                    self.bump();
                }
                return;
            }
            self.bump();
        }
    }

    fn consume_number(&mut self) -> TokenKind {
        let mut is_float = false;
        if self.peek() == Some(b'0')
            && matches!(self.peek_at(1), Some(b'x') | Some(b'X') | Some(b'b') | Some(b'B'))
        {
            self.bump();
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit() || c == b'\'') {
                self.bump();
            }
        } else {
            while self.peek().is_some_and(|c| c.is_ascii_digit() || c == b'\'') {
                self.bump();
            }
            if self.peek() == Some(b'.') && self.peek_at(1).is_none_or(|c| c != b'.') {
                is_float = true;
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E'))
                && self
                    .peek_at(1)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'+' || c == b'-')
            {
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        // Suffixes: u, l, ll, f, z and case variants.
        while self
            .peek()
            .is_some_and(|c| matches!(c, b'u' | b'U' | b'l' | b'L' | b'f' | b'F' | b'z' | b'Z'))
        {
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                is_float = true;
            }
            self.bump();
        }
        if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }

    fn consume_punct(&mut self) {
        // Longest-match against the C/C++ punctuator set.
        const THREE: &[&[u8]] = &[b"<<=", b">>=", b"...", b"->*"];
        const TWO: &[&[u8]] = &[
            b"::", b"->", b"++", b"--", b"<<", b">>", b"<=", b">=", b"==", b"!=", b"&&",
            b"||", b"+=", b"-=", b"*=", b"/=", b"%=", b"&=", b"|=", b"^=", b"##", b".*",
        ];
        for p in THREE {
            if self.src[self.pos..].starts_with(p) {
                for _ in 0..3 {
                    self.bump();
                }
                return;
            }
        }
        for p in TWO {
            if self.src[self.pos..].starts_with(p) {
                for _ in 0..2 {
                    self.bump();
                }
                return;
            }
        }
        self.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keywords::Keyword;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn lexes_simple_statement() {
        assert_eq!(
            texts("x = a + b;"),
            vec!["x", "=", "a", "+", "b", ";"]
        );
    }

    #[test]
    fn keywords_vs_idents() {
        let toks = tokenize("if (ifdef) while_loop");
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::If));
        assert_eq!(toks[2].kind, TokenKind::Ident); // `ifdef` is not a keyword
        assert_eq!(toks[4].kind, TokenKind::Ident); // `while_loop` either
    }

    #[test]
    fn multichar_punctuators_longest_match() {
        assert_eq!(texts("a <<= b >> c != d->e"), vec![
            "a", "<<=", "b", ">>", "c", "!=", "d", "->", "e"
        ]);
    }

    #[test]
    fn numbers() {
        let toks = tokenize("0x1F 42u 3.14f 1e9 0b1010 1'000'000 .5");
        let kinds: Vec<_> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
                TokenKind::Float,
                TokenKind::Int,
                TokenKind::Int,
                TokenKind::Float,
            ]
        );
    }

    #[test]
    fn strings_and_chars() {
        let toks = tokenize(r#"printf("hi \"there\"", 'x', L"wide")"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn raw_string() {
        let toks = tokenize(r#"auto s = R"(no \ escapes ")here")" + 1;"#);
        // The raw string should be one token ending at `)"`; wait — delim is
        // empty so it ends at the first `)"`.
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
    }

    #[test]
    fn comments_skipped_by_default() {
        assert_eq!(kinds("a /* b */ c // d\n e").len(), 3);
        let with = tokenize_with_comments("a /* b */ c // d\n e");
        assert_eq!(with.iter().filter(|t| t.kind == TokenKind::Comment).count(), 2);
    }

    #[test]
    fn unterminated_comment_tolerated() {
        let toks = tokenize("a /* never closed");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "a");
    }

    #[test]
    fn unterminated_string_stops_at_eol() {
        let toks = tokenize("x = \"oops\ny = 2;");
        assert!(toks.iter().any(|t| t.text == "y"));
    }

    #[test]
    fn preprocessor_is_one_token() {
        let toks = tokenize("#include <stdio.h>\nint main");
        assert_eq!(toks[0].kind, TokenKind::Preprocessor);
        assert_eq!(toks[1].kind, TokenKind::Keyword(Keyword::Int));
    }

    #[test]
    fn preprocessor_continuation() {
        let toks = tokenize("#define M(a) \\\n  (a + 1)\nint x;");
        assert_eq!(toks[0].kind, TokenKind::Preprocessor);
        assert!(toks[0].text.contains("a + 1"));
        assert_eq!(toks[1].kind, TokenKind::Keyword(Keyword::Int));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = tokenize("ab\n  cd");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 2);
    }

    #[test]
    fn fragment_offsets_line_numbers() {
        let toks = tokenize_fragment("x = 1;", 42);
        assert!(toks.iter().all(|t| t.span.line == 42));
    }

    #[test]
    fn hash_mid_line_is_punct() {
        // `a # b` — not at line start, so not a preprocessor directive.
        let toks = tokenize("a # b");
        assert_eq!(toks[1].kind, TokenKind::Punct);
    }

    #[test]
    fn never_panics_on_junk() {
        for junk in ["\\\\\\", "\"", "'", "/*", "R\"(", "0x", "#", "\u{fffd}"] {
            let _ = tokenize(junk);
        }
    }
}
