//! C and C++ reserved words, grouped the way the feature extractor needs
//! them (control flow, loops, jumps, types, memory management).


/// A recognized C/C++ keyword.
///
/// Only the keywords the PatchDB pipelines care about get their own
/// variant; everything else lexes as [`Keyword::Other`] with the original
/// text preserved on the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are the keywords themselves
pub enum Keyword {
    If,
    Else,
    For,
    While,
    Do,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    Return,
    Goto,
    Sizeof,
    New,
    Delete,
    Struct,
    Union,
    Enum,
    Typedef,
    Static,
    Const,
    Void,
    Int,
    Char,
    Float,
    Double,
    Long,
    Short,
    Unsigned,
    Signed,
    Bool,
    True,
    False,
    Nullptr,
    /// Any other reserved word (`extern`, `volatile`, `template`, …).
    Other,
}

/// Maps an identifier-shaped string to its keyword, if it is one.
pub fn keyword_of(text: &str) -> Option<Keyword> {
    use Keyword::*;
    Some(match text {
        "if" => If,
        "else" => Else,
        "for" => For,
        "while" => While,
        "do" => Do,
        "switch" => Switch,
        "case" => Case,
        "default" => Default,
        "break" => Break,
        "continue" => Continue,
        "return" => Return,
        "goto" => Goto,
        "sizeof" => Sizeof,
        "new" => New,
        "delete" => Delete,
        "struct" => Struct,
        "union" => Union,
        "enum" => Enum,
        "typedef" => Typedef,
        "static" => Static,
        "const" => Const,
        "void" => Void,
        "int" => Int,
        "char" => Char,
        "float" => Float,
        "double" => Double,
        "long" => Long,
        "short" => Short,
        "unsigned" => Unsigned,
        "signed" => Signed,
        "bool" => Bool,
        "true" => True,
        "false" => False,
        "nullptr" => Nullptr,
        // The long tail of reserved words we recognize but do not
        // distinguish.
        "auto" | "register" | "extern" | "volatile" | "inline" | "restrict"
        | "_Bool" | "_Complex" | "_Atomic" | "_Noreturn" | "_Static_assert"
        | "_Thread_local" | "class" | "namespace" | "template" | "typename"
        | "public" | "private" | "protected" | "virtual" | "override"
        | "final" | "operator" | "this" | "throw" | "try" | "catch"
        | "using" | "friend" | "constexpr" | "decltype" | "noexcept"
        | "static_cast" | "dynamic_cast" | "const_cast" | "reinterpret_cast"
        | "explicit" | "mutable" | "wchar_t" | "char16_t" | "char32_t"
        | "alignas" | "alignof" | "static_assert" | "thread_local"
        | "NULL" => Other,
        _ => return None,
    })
}

/// True when `text` is any recognized reserved word.
///
/// `NULL` is treated as a keyword (it is a macro in real C, but behaves as
/// a null-pointer literal for feature purposes, as the paper's null-check
/// category requires).
pub fn is_keyword(text: &str) -> bool {
    keyword_of(text).is_some()
}

impl Keyword {
    /// True for the loop-introducing keywords (`for`, `while`, `do`),
    /// Table I features 15–18.
    pub fn is_loop(self) -> bool {
        matches!(self, Keyword::For | Keyword::While | Keyword::Do)
    }

    /// True for jump statements (`break`, `continue`, `return`, `goto`),
    /// the paper's Type-9 patch pattern evidence.
    pub fn is_jump(self) -> bool {
        matches!(
            self,
            Keyword::Break | Keyword::Continue | Keyword::Return | Keyword::Goto
        )
    }

    /// True for type-introducing keywords, used when detecting variable
    /// definitions (the paper's Type-4 pattern).
    pub fn is_type(self) -> bool {
        matches!(
            self,
            Keyword::Void
                | Keyword::Int
                | Keyword::Char
                | Keyword::Float
                | Keyword::Double
                | Keyword::Long
                | Keyword::Short
                | Keyword::Unsigned
                | Keyword::Signed
                | Keyword::Bool
                | Keyword::Struct
                | Keyword::Union
                | Keyword::Enum
                | Keyword::Const
                | Keyword::Static
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_core_keywords() {
        assert_eq!(keyword_of("if"), Some(Keyword::If));
        assert_eq!(keyword_of("while"), Some(Keyword::While));
        assert_eq!(keyword_of("template"), Some(Keyword::Other));
        assert_eq!(keyword_of("banana"), None);
    }

    #[test]
    fn classification_helpers() {
        assert!(Keyword::For.is_loop());
        assert!(!Keyword::If.is_loop());
        assert!(Keyword::Goto.is_jump());
        assert!(Keyword::Unsigned.is_type());
        assert!(!Keyword::Return.is_type());
    }

    #[test]
    fn null_is_keywordish() {
        assert!(is_keyword("NULL"));
        assert!(!is_keyword("null"));
    }
}
