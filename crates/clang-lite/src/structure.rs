//! Structural parsing: function definitions and `if`-statement extents
//! with line spans, the information PatchDB reads from LLVM AST dumps
//! (`IfStmt <line:N, line:N>`, Section III-C-2).
//!
//! This is a tolerant token-level parser: it tracks delimiter balance
//! rather than building a full AST, recovers at every imbalance, and never
//! fails — patches routinely reference files we only partially understand.


use crate::keywords::Keyword;
use crate::lexer::tokenize;
use crate::token::{Span, Token, TokenKind};

/// A function definition's location within a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpan {
    /// The function's name (identifier before the parameter list).
    pub name: String,
    /// 1-based line where the name token sits.
    pub start_line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// 1-based line of the body's opening brace.
    pub body_open_line: usize,
}

impl FunctionSpan {
    /// True when `line` falls inside the function (name through `}`).
    pub fn contains_line(&self, line: usize) -> bool {
        (self.start_line..=self.end_line).contains(&line)
    }
}

/// An `if` statement's location and shape within a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfStmt {
    /// Span of the `if` keyword itself.
    pub if_span: Span,
    /// Span of the opening `(` of the condition.
    pub cond_open: Span,
    /// Span of the closing `)` of the condition.
    pub cond_close: Span,
    /// The raw condition text between the parentheses.
    pub cond_text: String,
    /// 1-based last line of the whole statement, including any `else`.
    pub end_line: usize,
    /// Whether the then-branch is a braced block.
    pub then_braced: bool,
    /// Whether an `else` branch is present.
    pub has_else: bool,
}

impl IfStmt {
    /// 1-based line of the `if` keyword.
    pub fn line(&self) -> usize {
        self.if_span.line
    }

    /// True when any line of `lines` falls within the statement's extent.
    pub fn touches_lines(&self, lines: &[usize]) -> bool {
        lines.iter().any(|l| (self.line()..=self.end_line).contains(l))
    }
}

/// Finds top-level function definitions in C/C++ source.
///
/// Heuristic: an identifier followed by a balanced parameter list and an
/// opening brace, at file brace-depth zero, whose name is not a control
/// keyword. Declarations (ending in `;`) are skipped. Nested/anonymous
/// constructs are out of scope, matching the paper's per-function counters.
pub fn find_functions(src: &str) -> Vec<FunctionSpan> {
    let tokens = tokenize(src);
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            depth -= 1;
            i += 1;
            continue;
        }
        if depth == 0 && t.kind == TokenKind::Ident && tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            if let Some(close) = match_delim(&tokens, i + 1, "(", ")") {
                // Allow a few qualifier tokens between `)` and `{`.
                let mut k = close + 1;
                let mut hops = 0;
                while hops < 4
                    && tokens.get(k).is_some_and(|tk| {
                        matches!(tk.kind, TokenKind::Keyword(_) | TokenKind::Ident)
                    })
                {
                    k += 1;
                    hops += 1;
                }
                if tokens.get(k).is_some_and(|tk| tk.is_punct("{")) {
                    if let Some(end) = match_delim(&tokens, k, "{", "}") {
                        out.push(FunctionSpan {
                            name: t.text.clone(),
                            start_line: t.span.line,
                            end_line: tokens[end].span.end_line,
                            body_open_line: tokens[k].span.line,
                        });
                        i = end + 1;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Finds every `if` statement (including nested and `else if` forms) with
/// its full extent.
pub fn find_if_statements(src: &str) -> Vec<IfStmt> {
    let tokens = tokenize(src);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_keyword(Keyword::If) {
            // Skip `else if`'s `if`? No: the paper counts each `if`, and the
            // oversampler may transform each condition independently.
            if let Some(stmt) = parse_if(src, &tokens, i) {
                out.push(stmt);
            }
        }
    }
    out
}

/// Parses the `if` starting at token index `i`, returning its shape.
fn parse_if(src: &str, tokens: &[Token], i: usize) -> Option<IfStmt> {
    let open = i + 1;
    if !tokens.get(open)?.is_punct("(") {
        return None; // `#if`-like or macro trickery; skip.
    }
    let close = match_delim(tokens, open, "(", ")")?;
    let (end_idx, then_braced, has_else) = if_extent(tokens, close)?;
    let cond_text = slice_between(src, tokens[open].span, tokens[close].span);
    Some(IfStmt {
        if_span: tokens[i].span,
        cond_open: tokens[open].span,
        cond_close: tokens[close].span,
        cond_text,
        end_line: tokens[end_idx].span.end_line,
        then_braced,
        has_else,
    })
}

/// Computes the last token index of the if-statement whose condition closes
/// at `close`, plus branch shape flags.
fn if_extent(tokens: &[Token], close: usize) -> Option<(usize, bool, bool)> {
    let body = close + 1;
    let (then_end, then_braced) = branch_extent(tokens, body)?;
    if tokens.get(then_end + 1).is_some_and(|t| t.is_keyword(Keyword::Else)) {
        let else_body = then_end + 2;
        let else_end = if tokens.get(else_body).is_some_and(|t| t.is_keyword(Keyword::If)) {
            // `else if`: recurse through the chained if.
            let open = else_body + 1;
            if tokens.get(open).is_some_and(|t| t.is_punct("(")) {
                let close2 = match_delim(tokens, open, "(", ")")?;
                if_extent(tokens, close2)?.0
            } else {
                branch_extent(tokens, else_body)?.0
            }
        } else {
            branch_extent(tokens, else_body)?.0
        };
        Some((else_end, then_braced, true))
    } else {
        Some((then_end, then_braced, false))
    }
}

/// Returns the last token index of the statement starting at `start`, and
/// whether it was a braced block.
fn branch_extent(tokens: &[Token], start: usize) -> Option<(usize, bool)> {
    let first = tokens.get(start)?;
    if first.is_punct("{") {
        return Some((match_delim(tokens, start, "{", "}")?, true));
    }
    // Single statement: scan to the `;` at zero relative depth; nested ifs
    // recurse implicitly through depth tracking (their `;` terminates us
    // only at depth zero).
    let mut depth = 0isize;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "{" | "[" => depth += 1,
                ")" | "}" | "]" => {
                    if depth == 0 {
                        // Unbalanced close: statement ends before it.
                        return Some((j.saturating_sub(1), false));
                    }
                    depth -= 1;
                }
                ";" if depth == 0 => return Some((j, false)),
                _ => {}
            }
        }
        j += 1;
    }
    Some((tokens.len().saturating_sub(1), false))
}

/// Finds the index of the token closing the delimiter opened at `open_idx`.
fn match_delim(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    debug_assert!(tokens[open_idx].is_punct(open));
    let mut depth = 0isize;
    for (j, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Extracts the raw source text strictly between two spans (exclusive of
/// both), used to recover condition text including original spacing.
fn slice_between(src: &str, a: Span, b: Span) -> String {
    let lines: Vec<&str> = src.split('\n').collect();
    if a.end_line == b.line {
        let line = lines.get(a.end_line - 1).copied().unwrap_or("");
        let from = a.end_col.min(line.len());
        let to = b.col.min(line.len());
        return line.get(from..to).unwrap_or("").trim().to_owned();
    }
    // Multi-line condition: stitch the pieces.
    let mut parts = Vec::new();
    for ln in a.end_line..=b.line {
        let line = lines.get(ln - 1).copied().unwrap_or("");
        let piece = if ln == a.end_line {
            line.get(a.end_col.min(line.len())..).unwrap_or("")
        } else if ln == b.line {
            line.get(..b.col.min(line.len())).unwrap_or("")
        } else {
            line
        };
        parts.push(piece.trim());
    }
    parts.join(" ").trim().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
#include <stdio.h>

static int helper(int a, char *b) {
    if (a > 0) {
        printf("%s", b);
        return a;
    }
    return 0;
}

int main(int argc, char **argv)
{
    int x = helper(argc, argv[0]);
    if (x)
        x--;
    else if (argc > 2) {
        x = 2;
    } else {
        x = 3;
    }
    while (x > 0) { x--; }
    return x;
}
"#;

    #[test]
    fn finds_both_functions() {
        let fns = find_functions(SRC);
        let names: Vec<&str> = fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["helper", "main"]);
        assert_eq!(fns[0].start_line, 4);
        assert_eq!(fns[0].end_line, 10);
        assert!(fns[1].contains_line(14));
        assert_eq!(fns[1].body_open_line, 13);
    }

    #[test]
    fn finds_all_ifs_with_extents() {
        let ifs = find_if_statements(SRC);
        // `if (a > 0)`, `if (x)`, and the chained `if (argc > 2)`.
        assert_eq!(ifs.len(), 3);

        let first = &ifs[0];
        assert_eq!(first.line(), 5);
        assert_eq!(first.cond_text, "a > 0");
        assert!(first.then_braced);
        assert!(!first.has_else);
        assert_eq!(first.end_line, 8);

        let second = &ifs[1];
        assert_eq!(second.cond_text, "x");
        assert!(!second.then_braced);
        assert!(second.has_else);
        assert_eq!(second.end_line, 21); // through the final else block

        let third = &ifs[2];
        assert_eq!(third.cond_text, "argc > 2");
        assert!(third.has_else);
    }

    #[test]
    fn if_without_parens_is_skipped() {
        // Macro-style `if` without parens must not panic or match.
        let ifs = find_if_statements("#define IF if\nIF x then\n");
        assert!(ifs.is_empty());
    }

    #[test]
    fn declaration_is_not_a_definition() {
        let fns = find_functions("int foo(int a);\nint bar(void) { return 0; }\n");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "bar");
    }

    #[test]
    fn multiline_condition_text() {
        let src = "void f() {\n  if (a &&\n      b) {\n    c();\n  }\n}\n";
        let ifs = find_if_statements(src);
        assert_eq!(ifs.len(), 1);
        assert_eq!(ifs[0].cond_text, "a && b");
        assert_eq!(ifs[0].end_line, 5);
    }

    #[test]
    fn unbalanced_source_recovers() {
        let ifs = find_if_statements("if (a { b; ");
        // Paren never closes: skipped without panicking.
        assert!(ifs.is_empty());
        let fns = find_functions("int f(int a { }");
        assert!(fns.is_empty());
    }

    #[test]
    fn touches_lines() {
        let ifs = find_if_statements("void f() {\n  if (a) {\n    b();\n  }\n}\n");
        assert!(ifs[0].touches_lines(&[3]));
        assert!(!ifs[0].touches_lines(&[5]));
    }

    #[test]
    fn qualifier_between_params_and_body() {
        let fns = find_functions("int get(void) const { return 1; }\n");
        assert_eq!(fns.len(), 1);
    }
}
