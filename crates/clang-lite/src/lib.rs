//! # clang-lite
//!
//! A from-scratch, lightweight C/C++ front end: lexer, token
//! classification, token abstraction, and a structural parser that locates
//! function definitions and `if` statements with their line extents.
//!
//! PatchDB (DSN 2021) uses two external tools this crate replaces:
//!
//! * a Python syntactic parser that extracts the Table I features from
//!   patch fragments — served here by [`tokenize`]/[`tokenize_fragment`] and
//!   the [`OperatorClass`] / statement classification helpers;
//! * LLVM's AST dump, from which the oversampler reads
//!   `IfStmt <line:N, line:N>` extents (Section III-C-2) — served here by
//!   [`find_if_statements`] and [`find_functions`].
//!
//! Patches are not complete translation units, so everything here is
//! tolerant by construction: the lexer never fails, and the structural
//! parser recovers at every unbalanced delimiter.
//!
//! ```rust
//! use clang_lite::{tokenize, TokenKind};
//!
//! let toks = tokenize("if (x > 0) return malloc(n);");
//! assert!(matches!(toks[0].kind, TokenKind::Keyword(_)));
//! let idents: Vec<&str> = toks.iter()
//!     .filter(|t| t.kind == TokenKind::Ident)
//!     .map(|t| t.text.as_str())
//!     .collect();
//! assert_eq!(idents, ["x", "malloc", "n"]);
//! ```

#![warn(missing_docs)]

mod abstraction;
mod ast;
mod keywords;
mod lexer;
mod stats;
mod structure;
mod token;

pub use abstraction::{abstract_tokens, AbstractedToken};
pub use ast::{parse_bodies, Stmt, StmtKind};
pub use keywords::{is_keyword, Keyword};
pub use lexer::{tokenize, tokenize_fragment, tokenize_with_comments};
pub use stats::{classify_operator, count_stats, FragmentStats, OperatorClass};
pub use structure::{find_functions, find_if_statements, FunctionSpan, IfStmt};
pub use token::{Span, Token, TokenKind};
