//! Token and span types produced by the lexer.


use crate::keywords::Keyword;

/// A half-open source region in (1-based) line / (0-based) column terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based line the token starts on.
    pub line: usize,
    /// 0-based byte column the token starts at within its line.
    pub col: usize,
    /// 1-based line the token ends on (inclusive).
    pub end_line: usize,
    /// 0-based byte column one past the token's last byte.
    pub end_col: usize,
}

impl Span {
    /// A span covering a single-line token.
    pub fn on_line(line: usize, col: usize, len: usize) -> Self {
        Span { line, col, end_line: line, end_col: col + len }
    }
}

/// Lexical category of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Identifier that is not a reserved word.
    Ident,
    /// A C/C++ reserved word.
    Keyword(Keyword),
    /// Integer literal (decimal, hex, octal, binary; any suffix).
    Int,
    /// Floating-point literal.
    Float,
    /// String literal (including prefix and quotes in `text`).
    Str,
    /// Character literal.
    Char,
    /// Operator or punctuator, e.g. `+`, `->`, `<<=`.
    Punct,
    /// A whole preprocessor directive line (`#include <...>`, `#define …`).
    Preprocessor,
    /// A comment (only emitted by [`crate::tokenize_with_comments`]).
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// The token's category.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// Where the token sits in the source.
    pub span: Span,
}

impl Token {
    /// True for identifier tokens.
    pub fn is_ident(&self) -> bool {
        self.kind == TokenKind::Ident
    }

    /// True when this token is the given punctuator.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// True when this token is the given keyword.
    pub fn is_keyword(&self, kw: Keyword) -> bool {
        self.kind == TokenKind::Keyword(kw)
    }

    /// True for any literal kind (int, float, string, char).
    pub fn is_literal(&self) -> bool {
        matches!(self.kind, TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_on_line() {
        let s = Span::on_line(3, 4, 5);
        assert_eq!(s.end_line, 3);
        assert_eq!(s.end_col, 9);
    }

    #[test]
    fn token_predicates() {
        let t = Token {
            kind: TokenKind::Punct,
            text: "->".into(),
            span: Span::on_line(1, 0, 2),
        };
        assert!(t.is_punct("->"));
        assert!(!t.is_punct("-"));
        assert!(!t.is_ident());
        assert!(!t.is_literal());
    }
}
