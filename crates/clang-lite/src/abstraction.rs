//! Token abstraction: rewrites identifiers, literals, and call targets to
//! canonical placeholders so that two code fragments can be compared
//! modulo naming. Table I computes the hunk-level Levenshtein features
//! twice — before and after abstraction (features 49–56).

use std::collections::HashMap;

use crate::token::{Token, TokenKind};

/// One abstracted token: the canonical text plus the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractedToken {
    /// The canonical placeholder (`VAR0`, `FUNC1`, `LITERAL`, or the
    /// original text for keywords/punctuators).
    pub canon: String,
    /// The original token text.
    pub original: String,
}

/// Abstracts a token stream:
///
/// * identifiers used as call targets become `FUNCn`;
/// * other identifiers become `VARn`;
/// * all literals become `LITERAL`;
/// * keywords and punctuators pass through unchanged.
///
/// Numbering is first-appearance order and consistent within the stream,
/// so `a + a` abstracts to `VAR0 + VAR0` while `a + b` gives
/// `VAR0 + VAR1`.
///
/// ```rust
/// use clang_lite::{abstract_tokens, tokenize};
/// let a = abstract_tokens(&tokenize("x = foo(x, 3);"));
/// let canon: Vec<&str> = a.iter().map(|t| t.canon.as_str()).collect();
/// assert_eq!(canon, ["VAR0", "=", "FUNC0", "(", "VAR0", ",", "LITERAL", ")", ";"]);
/// ```
pub fn abstract_tokens(tokens: &[Token]) -> Vec<AbstractedToken> {
    let mut vars: HashMap<&str, usize> = HashMap::new();
    let mut funcs: HashMap<&str, usize> = HashMap::new();
    let mut out = Vec::with_capacity(tokens.len());

    for (i, t) in tokens.iter().enumerate() {
        let canon = match &t.kind {
            TokenKind::Ident => {
                let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                if called {
                    let next = funcs.len();
                    let id = *funcs.entry(t.text.as_str()).or_insert(next);
                    format!("FUNC{id}")
                } else {
                    let next = vars.len();
                    let id = *vars.entry(t.text.as_str()).or_insert(next);
                    format!("VAR{id}")
                }
            }
            TokenKind::Int | TokenKind::Float | TokenKind::Str | TokenKind::Char => {
                "LITERAL".to_owned()
            }
            _ => t.text.clone(),
        };
        out.push(AbstractedToken { canon, original: t.text.clone() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn canon(src: &str) -> Vec<String> {
        abstract_tokens(&tokenize(src)).into_iter().map(|t| t.canon).collect()
    }

    #[test]
    fn consistent_numbering() {
        assert_eq!(canon("a = a + b;"), ["VAR0", "=", "VAR0", "+", "VAR1", ";"]);
    }

    #[test]
    fn functions_numbered_separately() {
        assert_eq!(
            canon("f(g(x))"),
            ["FUNC0", "(", "FUNC1", "(", "VAR0", ")", ")"]
        );
    }

    #[test]
    fn same_name_var_and_func_distinct() {
        // `x` used both as a variable and as a call target.
        assert_eq!(canon("x = x();"), ["VAR0", "=", "FUNC0", "(", ")", ";"]);
    }

    #[test]
    fn literals_collapse() {
        assert_eq!(canon("1 + 2.0 + \"s\""), ["LITERAL", "+", "LITERAL", "+", "LITERAL"]);
    }

    #[test]
    fn keywords_pass_through() {
        assert_eq!(canon("return x;"), ["return", "VAR0", ";"]);
    }

    #[test]
    fn renaming_invariance() {
        // The whole point: renamed code abstracts identically.
        assert_eq!(canon("total += item->price;"), canon("sum += node->value;"));
        assert_ne!(canon("a + a"), canon("a + b"));
    }
}
