//! Property tests: the lexer must be total (never panic, always make
//! progress) and abstraction must be a congruence under identifier
//! renaming. Runs on `patchdb_rt::check`, the in-repo property harness.

use patchdb_rt::check::check;

use clang_lite::{
    abstract_tokens, count_stats, find_if_statements, parse_bodies, tokenize, StmtKind,
    TokenKind,
};

/// Printable ASCII without newline, the analogue of proptest's `.`.
const PRINTABLE: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~";
/// Printable ASCII plus newline, the analogue of `[ -~\n]`.
const PRINTABLE_NL: &str = " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~\n";

const CASES: u32 = 512;

/// The lexer accepts arbitrary (even non-C) input without panicking and
/// its spans are weakly ordered.
#[test]
fn lexer_is_total() {
    check("lexer_is_total", CASES, |g| {
        let src = g.string_from(0, 200, PRINTABLE);
        let toks = tokenize(&src);
        for w in toks.windows(2) {
            let a = &w[0].span;
            let b = &w[1].span;
            assert!(
                (a.end_line, a.end_col) <= (b.line, b.col) || a.end_line < b.line,
                "overlapping spans: {a:?} then {b:?}"
            );
        }
    });
}

/// Lexing C-ish code reproduces every non-whitespace byte in order
/// (token texts concatenate to the source minus whitespace), for inputs
/// without comments/strings where the lexer may merge regions.
#[test]
fn token_texts_cover_source() {
    const WORDS: &[&str] = &[
        "if", "else", "x", "y1", "==", "&&", "(", ")", "{", "}", ";", "42", "0x1f", "+", "->",
    ];
    check("token_texts_cover_source", CASES, |g| {
        let ws = g.vec_with(0, 39, |g| *g.pick(WORDS));
        let src = ws.join(" ");
        let toks = tokenize(&src);
        let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
        let stripped: String = src.split_whitespace().collect();
        assert_eq!(rebuilt, stripped);
    });
}

/// Body of the rename-invariance property, shared between the random
/// checker and the pinned regression below.
fn assert_rename_invariant(raw: &[String]) {
    // Prefix to dodge keywords; collisions are fine (renaming keeps them).
    let names: Vec<String> = raw.iter().map(|n| format!("v_{n}")).collect();
    // Build a snippet from the names, then rename them all consistently.
    let src_a = format!("{} = {}({}, {} + 1);", names[0], names[1], names[2], names[0]);
    let renamed: Vec<String> = names.iter().map(|n| format!("zz_{n}")).collect();
    let src_b = format!("{} = {}({}, {} + 1);", renamed[0], renamed[1], renamed[2], renamed[0]);
    // Renaming must not accidentally collide two distinct names.
    let a = abstract_tokens(&tokenize(&src_a));
    let b = abstract_tokens(&tokenize(&src_b));
    let ca: Vec<&str> = a.iter().map(|t| t.canon.as_str()).collect();
    let cb: Vec<&str> = b.iter().map(|t| t.canon.as_str()).collect();
    assert_eq!(ca, cb);
}

/// Alpha-renaming identifiers leaves the abstracted stream unchanged.
#[test]
fn abstraction_rename_invariant() {
    check("abstraction_rename_invariant", CASES, |g| {
        // `[a-z][a-z0-9_]{0,6}`, 3..6 names.
        let raw = g.vec_with(3, 5, |g| {
            let head = g.string_from(1, 1, "abcdefghijklmnopqrstuvwxyz");
            let tail = g.string_from(0, 6, "abcdefghijklmnopqrstuvwxyz0123456789_");
            format!("{head}{tail}")
        });
        assert_rename_invariant(&raw);
    });
}

/// Pinned regression carried over from the proptest era
/// (`prop.proptest-regressions`): `names = ["do", "a", "a"]` — a raw
/// name that once collided with a keyword after prefixing.
#[test]
fn abstraction_rename_invariant_regression_keywordish_name() {
    let raw = vec!["do".to_owned(), "a".to_owned(), "a".to_owned()];
    assert_rename_invariant(&raw);
}

/// Stats counters never exceed the token count and are stable across
/// re-lexing.
#[test]
fn stats_bounded_and_deterministic() {
    check("stats_bounded_and_deterministic", CASES, |g| {
        let src = g.string_from(0, 200, PRINTABLE);
        let toks = tokenize(&src);
        let s1 = count_stats(&toks);
        let s2 = count_stats(&tokenize(&src));
        assert_eq!(s1, s2);
        assert!(s1.ifs + s1.loops + s1.jumps <= s1.tokens);
        assert!(s1.calls + s1.variables <= s1.tokens);
    });
}

/// The if-statement finder is total and reports extents within bounds.
#[test]
fn if_finder_is_total() {
    check("if_finder_is_total", CASES, |g| {
        let src = g.string_from(0, 300, PRINTABLE_NL);
        let line_count = src.split('\n').count();
        for stmt in find_if_statements(&src) {
            assert!(stmt.line() >= 1);
            assert!(stmt.end_line <= line_count + 1);
            assert!(stmt.end_line >= stmt.line());
        }
    });
}

/// The statement parser is total: arbitrary input never panics or
/// hangs, and extents stay within the source.
#[test]
fn ast_parser_is_total() {
    check("ast_parser_is_total", CASES, |g| {
        let src = g.string_from(0, 400, PRINTABLE_NL);
        let line_count = src.split('\n').count();
        for body in parse_bodies(&src) {
            for stmt in body.walk() {
                assert!(stmt.start_line >= 1);
                assert!(stmt.end_line <= line_count + 1);
                assert!(stmt.end_line >= stmt.start_line);
            }
        }
    });
}

/// On well-formed single-function bodies, the AST's if count matches
/// the token-level finder.
#[test]
fn ast_if_count_matches_finder() {
    const CONDS: &[&str] = &["a > b", "!p", "x == 0", "n % 2"];
    check("ast_if_count_matches_finder", CASES, |g| {
        let conds = g.vec_with(0, 3, |g| *g.pick(CONDS));
        let mut body = String::from("void f(int a, int b, int n, char *p, int x) {\n");
        for c in &conds {
            body.push_str(&format!("    if ({c})\n        work();\n"));
        }
        body.push_str("    done();\n}\n");
        let bodies = parse_bodies(&body);
        assert_eq!(bodies.len(), 1);
        let ast_ifs = bodies[0].count_matching(&|s| matches!(s.kind, StmtKind::If { .. }));
        let finder_ifs = find_if_statements(&body).len();
        assert_eq!(ast_ifs, conds.len());
        assert_eq!(finder_ifs, conds.len());
    });
}

/// Preprocessor lines never leak keyword/ident tokens.
#[test]
fn preprocessor_is_opaque() {
    check("preprocessor_is_opaque", CASES, |g| {
        let body = g.string_from(0, 40, "abcdefghijklmnopqrstuvwxyz ()+");
        let src = format!("#define X {body}\n");
        let toks = tokenize(&src);
        assert!(toks.iter().all(|t| t.kind == TokenKind::Preprocessor));
    });
}
