//! Non-blocking readiness primitives for event-driven servers.
//!
//! A thin, zero-dependency wrapper over `poll(2)` plus a self-pipe
//! wake-up token and a file-descriptor limit helper. The FFI surface
//! is three libc symbols (`poll`, `getrlimit`, `setrlimit`) declared
//! by hand — the symbols are already linked into every Rust binary
//! through std, so no external crate is needed.
//!
//! The intended shape of a consumer is a single event-loop thread
//! that owns all sockets in non-blocking mode:
//!
//! ```text
//! loop {
//!     build &mut [PollFd] (waker first, then listener, then conns)
//!     net::poll(&mut fds, timeout_ms)
//!     if fds[0].readable() { wake_rx.drain() }
//!     ... accept / read / write per revents ...
//! }
//! ```
//!
//! Worker threads hand results back through a mailbox of their own
//! and call [`Waker::wake`] so the loop notices without spinning.

use std::ffi::c_int;
use std::io::{self, PipeReader, PipeWriter, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::sync::Arc;

/// There is data to read (or a listener has a pending connection).
pub const POLLIN: i16 = 0x001;
/// Writing now will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry in a `poll(2)` set. Layout matches `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Registers interest in `events` (a bitmask of [`POLLIN`] /
    /// [`POLLOUT`]; error conditions are always reported).
    pub fn new(fd: &impl AsRawFd, events: i16) -> PollFd {
        PollFd { fd: fd.as_raw_fd(), events, revents: 0 }
    }

    /// Raw results mask from the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// A read will make progress: data, EOF, or an error to collect.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// A write will make progress (or fail fast with the error).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }

    /// The descriptor is dead: hangup, error, or not open.
    pub fn hangup(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// `nfds_t`: `unsigned long` on Linux/Android, `unsigned int` on the
/// BSD family. Mismatching the width corrupts the syscall arguments on
/// 64-bit targets, so it is pinned per-OS alongside `RLIMIT_NOFILE`.
#[cfg(any(target_os = "linux", target_os = "android"))]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
type NfdsT = std::ffi::c_uint;

extern "C" {
    #[link_name = "poll"]
    fn sys_poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    #[link_name = "getrlimit"]
    fn sys_getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
    #[link_name = "setrlimit"]
    fn sys_setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    #[link_name = "signal"]
    fn sys_signal(signum: c_int, handler: usize) -> usize;
    #[link_name = "write"]
    fn sys_write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

/// `SIGHUP` — 1 on every Unix this crate targets.
const SIGHUP: c_int = 1;

/// Set by the SIGHUP handler, consumed by [`take_sighup`].
static SIGHUP_PENDING: AtomicBool = AtomicBool::new(false);
/// Self-pipe write fd the handler nudges so a loop parked in [`poll`]
/// wakes up; `-1` until a handler is installed. The flag alone is not
/// enough: [`poll`] retries `EINTR` with the same timeout, so without
/// the pipe byte a quiet server could sit on the signal for a full
/// poll timeout (which may be infinite).
static SIGHUP_WAKE_FD: AtomicI32 = AtomicI32::new(-1);

/// The handler body is async-signal-safe: two atomic ops and a
/// `write(2)`, nothing that allocates or locks.
extern "C" fn sighup_handler(_signum: c_int) {
    SIGHUP_PENDING.store(true, Ordering::SeqCst);
    let fd = SIGHUP_WAKE_FD.load(Ordering::SeqCst);
    if fd >= 0 {
        let byte = 1u8;
        unsafe { sys_write(fd, &byte, 1) };
    }
}

/// Installs a `SIGHUP` handler that raises a flag (readable via
/// [`take_sighup`]) and writes one byte to `wake_fd` — typically the
/// write end of a [`Waker`] pipe ([`Waker::raw_write_fd`]) so the
/// event loop's `poll` returns promptly. Process-global: a second call
/// re-points the wake fd at the newest loop.
pub fn install_sighup_handler(wake_fd: RawFd) {
    SIGHUP_WAKE_FD.store(wake_fd, Ordering::SeqCst);
    unsafe { sys_signal(SIGHUP, sighup_handler as *const () as usize) };
}

/// Consumes a pending SIGHUP, returning whether one had arrived since
/// the last call.
pub fn take_sighup() -> bool {
    SIGHUP_PENDING.swap(false, Ordering::SeqCst)
}

/// Blocks until at least one descriptor is ready, the timeout lapses,
/// or a signal arrives. `timeout_ms < 0` means wait forever; `0` polls
/// without blocking. Returns the number of entries with non-zero
/// `revents`. `EINTR` is retried with the same timeout.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { sys_poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

struct WakerInner {
    writer: PipeWriter,
    /// True when a wake byte is already in flight; lets arbitrarily
    /// many `wake()` calls coalesce into a single pipe write so the
    /// pipe can never fill up and block a producer.
    pending: AtomicBool,
}

/// Producer half of a self-pipe wake-up token. Clone freely and hand
/// to worker threads; `wake()` is cheap, lock-free when coalesced,
/// and never blocks.
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

/// Loop-side half: goes into the poll set (position 0 by convention)
/// and is drained once readable.
pub struct WakeReader {
    reader: PipeReader,
    inner: Arc<WakerInner>,
}

impl Waker {
    /// Creates a connected waker pair over an anonymous pipe.
    pub fn new() -> io::Result<(Waker, WakeReader)> {
        let (reader, writer) = io::pipe()?;
        let inner = Arc::new(WakerInner { writer, pending: AtomicBool::new(false) });
        Ok((Waker { inner: inner.clone() }, WakeReader { reader, inner }))
    }

    /// Makes the next (or current) `poll` call return. Publish data
    /// (e.g. push to a mailbox) *before* calling this.
    pub fn wake(&self) {
        if !self.inner.pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.inner.writer).write(&[1]);
        }
    }

    /// The raw write-end fd, for wiring into a signal handler (see
    /// [`install_sighup_handler`]). Bytes written there bypass the
    /// coalescing flag, which is harmless: the reader drains greedily.
    pub fn raw_write_fd(&self) -> RawFd {
        self.inner.writer.as_raw_fd()
    }
}

impl WakeReader {
    /// Consumes pending wake bytes. Only call after [`poll`] reported
    /// the reader readable — the pipe is in blocking mode.
    ///
    /// The read happens *before* the pending flag is cleared. The
    /// reverse order loses wake-ups: a `wake()` racing into the window
    /// between clear and read would write a byte this read consumes,
    /// leaving `pending` true over an empty pipe — every later `wake()`
    /// would then coalesce into nothing and the loop would sleep
    /// through completions. Read-first, a racing `wake()` either finds
    /// `pending` still true (no byte, but its producer published data
    /// before waking, which the caller's post-drain mailbox check picks
    /// up this iteration) or runs after the clear and writes a fresh
    /// byte that keeps the pipe readable for the next iteration.
    ///
    /// Contract for callers: after `drain()`, check the associated
    /// mailbox/work source unconditionally — that check is what covers
    /// the coalesced-away racing wake.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        let _ = self.reader.read(&mut buf);
        self.inner.pending.store(false, Ordering::SeqCst);
    }
}

impl AsRawFd for WakeReader {
    fn as_raw_fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

// The open-files resource number is ABI, not POSIX: 7 on Linux/Android,
// 8 on the BSD family (macOS included). Anything else must be wired up
// explicitly rather than silently adjusting some other limit.
#[cfg(any(target_os = "linux", target_os = "android"))]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(any(
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
))]
const RLIMIT_NOFILE: c_int = 8;
#[cfg(not(any(
    target_os = "linux",
    target_os = "android",
    target_os = "macos",
    target_os = "ios",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd",
)))]
compile_error!("rt::net needs RLIMIT_NOFILE and nfds_t defined for this target OS");

/// Raises the soft open-file limit toward `want` (first trying to lift
/// the hard cap too, which only succeeds with privilege, then settling
/// for the existing hard cap). Returns the effective soft limit, which
/// may be below `want` — callers sizing connection tables should clamp
/// to the returned value.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { sys_getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let attempt = Rlimit { cur: want, max: lim.max.max(want) };
    if unsafe { sys_setrlimit(RLIMIT_NOFILE, &attempt) } != 0 {
        let capped = Rlimit { cur: want.min(lim.max), max: lim.max };
        if unsafe { sys_setrlimit(RLIMIT_NOFILE, &capped) } != 0 {
            return Err(io::Error::last_os_error());
        }
    }
    if unsafe { sys_getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    #[test]
    fn poll_times_out_on_quiet_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut fds = [PollFd::new(&listener, POLLIN)];
        let n = poll(&mut fds, 0).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn poll_reports_pending_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut fds = [PollFd::new(&listener, POLLIN)];
        let n = poll(&mut fds, 2_000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].hangup());
    }

    #[test]
    fn waker_interrupts_poll_and_coalesces() {
        let (waker, mut rx) = Waker::new().unwrap();
        // Many wakes before the loop looks: exactly one byte in flight.
        waker.wake();
        waker.wake();
        waker.wake();
        let mut fds = [PollFd::new(&rx, POLLIN)];
        assert_eq!(poll(&mut fds, 2_000).unwrap(), 1);
        rx.drain();
        let mut fds = [PollFd::new(&rx, POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "drain must clear the pipe");
        // Wake again after a drain: the coalescing flag must have reset.
        waker.wake();
        let mut fds = [PollFd::new(&rx, POLLIN)];
        assert_eq!(poll(&mut fds, 2_000).unwrap(), 1);
    }

    #[test]
    fn waker_wakes_from_another_thread() {
        let (waker, rx) = Waker::new().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let started = Instant::now();
        let mut fds = [PollFd::new(&rx, POLLIN)];
        let n = poll(&mut fds, 5_000).unwrap();
        handle.join().unwrap();
        assert_eq!(n, 1);
        assert!(started.elapsed() < Duration::from_secs(4), "woke before timeout");
    }

    #[test]
    fn drain_never_strands_a_racing_wake() {
        // Regression: drain() used to clear the coalescing flag before
        // reading the pipe, so a wake() landing in between left
        // `pending` true over an empty pipe — and every later wake()
        // coalesced into nothing. Hammer that window from another
        // thread, then prove the token still fires.
        let (waker, mut rx) = Waker::new().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let producer = {
            let waker = waker.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    waker.wake();
                    std::thread::yield_now();
                }
            })
        };
        for _ in 0..2_000 {
            let mut fds = [PollFd::new(&rx, POLLIN)];
            if poll(&mut fds, 10).unwrap() > 0 {
                rx.drain();
            }
        }
        stop.store(true, Ordering::Relaxed);
        producer.join().unwrap();
        loop {
            let mut fds = [PollFd::new(&rx, POLLIN)];
            if poll(&mut fds, 0).unwrap() == 0 {
                break;
            }
            rx.drain();
        }
        waker.wake();
        let mut fds = [PollFd::new(&rx, POLLIN)];
        assert_eq!(poll(&mut fds, 2_000).unwrap(), 1, "wake after racing drains must fire");
    }

    #[test]
    fn nofile_limit_is_queryable_and_clamps() {
        // Asking for what we already have (or less) reports the
        // current limit; asking for the moon settles at the hard cap.
        let now = raise_nofile_limit(64).unwrap();
        assert!(now >= 64);
        let huge = raise_nofile_limit(u64::MAX).unwrap();
        assert!(huge >= now);
    }
}
