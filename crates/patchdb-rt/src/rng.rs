//! Seedable, portable pseudo-randomness.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 exactly as its authors recommend. All derived draws go
//! through fixed-width integer arithmetic, so every seed produces the same
//! stream on every platform — the property the whole synthetic-corpus
//! pipeline rests on.
//!
//! The API mirrors the subset of `rand` the workspace uses: construction
//! via [`Xoshiro256pp::seed_from_u64`] / [`Xoshiro256pp::from_seed`], draws
//! via [`Xoshiro256pp::gen_range`], [`Xoshiro256pp::gen_bool`] and
//! [`Xoshiro256pp::gen`], and slice helpers via the [`SliceRandom`]
//! extension trait.

/// SplitMix64 step: the seed expander recommended for xoshiro state init.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seeds from 32 raw bytes (little-endian words). The all-zero seed —
    /// the one state xoshiro cannot leave — is remapped through SplitMix64.
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        Xoshiro256pp { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform value of a primitive type (`u64`, `u32`, `usize`, `f64`
    /// over `[0, 1)`, or `bool`).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform draw from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range, matching `rand`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fills a byte slice with uniform bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// Uniform integer in `[0, bound)` via 128-bit multiply-shift.
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types [`Xoshiro256pp::gen`] can produce.
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng(rng: &mut Xoshiro256pp) -> Self;
}

impl FromRng for u64 {
    fn from_rng(rng: &mut Xoshiro256pp) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut Xoshiro256pp) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng(rng: &mut Xoshiro256pp) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut Xoshiro256pp) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut Xoshiro256pp) -> Self {
        rng.next_f64()
    }
}

/// Primitive types [`Xoshiro256pp::gen_range`] can draw uniformly.
///
/// Implemented once, generically over ranges, so an integer literal like
/// `rng.gen_range(0..5)` infers its type from the call site exactly the
/// way `rand`'s equivalent trait does.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    /// Callers guarantee the range is non-empty.
    fn sample_between(rng: &mut Xoshiro256pp, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(
                rng: &mut Xoshiro256pp,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let extra = u128::from(inclusive);
                let span = (hi as i128 - lo as i128) as u128 + extra;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full u64-width range
                }
                (lo as i128 + rng.bounded(span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between(rng: &mut Xoshiro256pp, lo: Self, hi: Self, inclusive: bool) -> Self {
        let v = lo + rng.next_f64() * (hi - lo);
        // Guard against rounding up to an excluded upper endpoint.
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between(rng: &mut Xoshiro256pp, lo: Self, hi: Self, inclusive: bool) -> Self {
        let v = f64::sample_between(rng, f64::from(lo), f64::from(hi), inclusive) as f32;
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

/// Ranges [`Xoshiro256pp::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Xoshiro256pp) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut Xoshiro256pp) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut Xoshiro256pp) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Slice helpers in the style of `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Xoshiro256pp);

    /// A uniform element reference, or `None` on an empty slice.
    fn choose(&self, rng: &mut Xoshiro256pp) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Xoshiro256pp) {
        for i in (1..self.len()).rev() {
            let j = rng.bounded(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut Xoshiro256pp) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.bounded(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed_from_u64(0): SplitMix64(0..) expands to
    /// the state, then xoshiro256++ runs. Locks the stream across
    /// platforms and future refactors.
    #[test]
    fn stream_is_pinned() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Xoshiro256pp::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // Value pin: recompute SplitMix64 state expansion by hand.
        let mut sm = 0u64;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        let expected0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        assert_eq!(first[0], expected0);
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let a: Vec<u64> =
            (0..8).scan(Xoshiro256pp::seed_from_u64(1), |r, _| Some(r.next_u64())).collect();
        let b: Vec<u64> =
            (0..8).scan(Xoshiro256pp::seed_from_u64(2), |r, _| Some(r.next_u64())).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_bytes_are_remapped() {
        let mut rng = Xoshiro256pp::from_seed([0u8; 32]);
        // Must not be stuck on zero output forever.
        assert!((0..4).any(|_| rng.next_u64() != 0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..11);
            assert!((3..11).contains(&v));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0..=5u32);
            assert!(i <= 5);
            let neg = rng.gen_range(-5i32..-1);
            assert!((-5..-1).contains(&neg));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle virtually never returns identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let shuffle_with = |seed| {
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(shuffle_with(5), shuffle_with(5));
        assert_ne!(shuffle_with(5), shuffle_with(6));
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }

    #[test]
    fn next_f64_stays_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
