//! JSON without serde: a value type, a strict parser, compact and pretty
//! printers, and derive-free [`ToJson`]/[`FromJson`] conversion traits.
//!
//! Numbers are carried as `f64`; every integer the workspace serializes
//! (line counts, dimensions) is far below 2^53, and floats are printed via
//! Rust's shortest-round-trip formatting so `f64` values survive a
//! round trip bit-exactly.
//!
//! Structs and C-like enums get conversions via the [`impl_to_from_json`]
//! and [`impl_json_unit_enum`] macros; the encoded shapes match what
//! serde's derive produced (objects keyed by field name, unit enum
//! variants as strings), so previously exported datasets keep loading.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers are exact up to 2^53.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why encoding, decoding, or conversion failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Creates an error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError { message: message.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Conversion result alias.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem, with
    /// byte offset.
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Renders without any whitespace.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation, like `serde_json::to_string_pretty`.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// One-word description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no inf/NaN; encode as null like serde_json does.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without an exponent or fraction.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is Rust's shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl fmt::Display) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character '{}'", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected a digit"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected a fraction digit"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected an exponent digit"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number {text:?}: {e}")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.utf8_run(run_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.utf8_run(run_start)?);
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape '\\{}'", other as char))
                            )
                        }
                    }
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn utf8_run(&self, from: usize) -> Result<&'a str> {
        std::str::from_utf8(&self.bytes[from..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in string"))
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Rebuilds the value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] when the shape or types don't match.
    fn from_json(v: &Json) -> Result<Self>;
}

/// Looks up and converts an object field; `Null`/missing map through
/// `FromJson` (so `Option` fields tolerate both).
///
/// # Errors
///
/// Propagates the field's conversion error, prefixed with its name.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T> {
    let inner = v.get(name).unwrap_or(&Json::Null);
    T::from_json(inner).map_err(|e| JsonError::new(format!("field '{name}': {e}")))
}

fn expect_num(v: &Json) -> Result<f64> {
    v.as_f64().ok_or_else(|| JsonError::new(format!("expected number, got {}", v.kind())))
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self> {
                let n = expect_num(v)?;
                if n != n.trunc() {
                    return Err(JsonError::new(format!("expected integer, got {n}")));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(JsonError::new(format!(
                        "{} out of range for {}", n, stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self> {
        match v {
            // serde_json encodes non-finite floats as null; accept it back.
            Json::Null => Ok(f64::NAN),
            _ => expect_num(v),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_bool().ok_or_else(|| JsonError::new(format!("expected bool, got {}", v.kind())))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new(format!("expected string, got {}", v.kind())))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_owned())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self> {
        let items = v
            .as_arr()
            .ok_or_else(|| JsonError::new(format!("expected array, got {}", v.kind())))?;
        items.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for HashMap<String, T> {
    fn to_json(&self) -> Json {
        // Sort keys so output is deterministic regardless of hasher state.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Json::Obj(keys.into_iter().map(|k| (k.clone(), self[k].to_json())).collect())
    }
}

impl<T: FromJson> FromJson for HashMap<String, T> {
    fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), T::from_json(val)?)))
                .collect(),
            other => Err(JsonError::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<T: ToJson> ToJson for BTreeMap<String, T> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<T: FromJson> FromJson for BTreeMap<String, T> {
    fn from_json(v: &Json) -> Result<Self> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, val)| Ok((k.clone(), T::from_json(val)?)))
                .collect(),
            other => Err(JsonError::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

/// Implements [`ToJson`]/[`FromJson`] for a plain struct, field by field,
/// matching serde's derive encoding (an object keyed by field names).
///
/// ```rust
/// use patchdb_rt::impl_to_from_json;
/// struct Point { x: f64, y: f64 }
/// impl_to_from_json!(Point { x, y });
/// ```
#[macro_export]
macro_rules! impl_to_from_json {
    ($T:ident { $($f:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $T {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($f).to_owned(), $crate::json::ToJson::to_json(&self.$f))),*
                ])
            }
        }
        impl $crate::json::FromJson for $T {
            fn from_json(v: &$crate::json::Json) -> $crate::json::Result<Self> {
                Ok($T { $($f: $crate::json::field(v, stringify!($f))?),* })
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a C-like enum, encoding each
/// variant as its name string (serde's derive encoding for unit variants).
///
/// ```rust
/// use patchdb_rt::impl_json_unit_enum;
/// #[derive(Debug, PartialEq)]
/// enum Color { Red, Green }
/// impl_json_unit_enum!(Color { Red, Green });
/// ```
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($T:ident { $($V:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $T {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $($T::$V => stringify!($V)),*
                };
                $crate::json::Json::Str(name.to_owned())
            }
        }
        impl $crate::json::FromJson for $T {
            fn from_json(v: &$crate::json::Json) -> $crate::json::Result<Self> {
                let s = v.as_str().ok_or_else(|| $crate::json::JsonError::new(
                    format!("expected {} variant string, got {}", stringify!($T), v.kind()),
                ))?;
                match s {
                    $(stringify!($V) => Ok($T::$V),)*
                    other => Err($crate::json::JsonError::new(format!(
                        "unknown {} variant '{}'", stringify!($T), other
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e2").unwrap(), Json::Num(-50.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = Json::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "01x", "\"\\q\"", "{\"a\":1,}", "[1] extra",
            "nan", "+1", "\"unterminated",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ slash \u{8}\u{c}\r end \u{1} ünïcode 🦀";
        let encoded = Json::Str(original.to_owned()).to_compact_string();
        let back = Json::parse(&encoded).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
        // Surrogate pair for 🦀 (U+1F980).
        assert_eq!(Json::parse(r#""\ud83e\udd80""#).unwrap().as_str(), Some("🦀"));
        assert!(Json::parse(r#""\ud83e""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        for v in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            123456789.123456789,
            (2u64.pow(53) - 1) as f64,
        ] {
            let text = Json::Num(v).to_compact_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn integers_print_clean() {
        assert_eq!(Json::Num(3.0).to_compact_string(), "3");
        assert_eq!(Json::Num(-17.0).to_compact_string(), "-17");
        assert_eq!(Json::Num(2.5).to_compact_string(), "2.5");
    }

    #[test]
    fn pretty_printing_round_trips() {
        let v = Json::parse(r#"{"a":[1,{"b":[true,null]}],"c":"x"}"#).unwrap();
        let pretty = v.to_pretty_string();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        name: String,
        score: f64,
        tags: Vec<String>,
        parent: Option<u32>,
    }
    impl_to_from_json!(Demo { name, score, tags, parent });

    #[derive(Debug, PartialEq)]
    enum Kind {
        Alpha,
        Beta,
    }
    impl_json_unit_enum!(Kind { Alpha, Beta });

    #[test]
    fn struct_macro_round_trips() {
        let d = Demo {
            name: "x".into(),
            score: 0.25,
            tags: vec!["a".into(), "b".into()],
            parent: None,
        };
        let text = d.to_json().to_pretty_string();
        let back = Demo::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, d);
        // Missing Option field tolerated; missing required field is not.
        let partial = Json::parse(r#"{"name":"y","score":1,"tags":[]}"#).unwrap();
        assert_eq!(Demo::from_json(&partial).unwrap().parent, None);
        let broken = Json::parse(r#"{"score":1,"tags":[]}"#).unwrap();
        let err = Demo::from_json(&broken).unwrap_err().to_string();
        assert!(err.contains("name"), "{err}");
    }

    #[test]
    fn enum_macro_round_trips() {
        assert_eq!(Kind::Alpha.to_json(), Json::Str("Alpha".into()));
        assert_eq!(Kind::from_json(&Json::Str("Beta".into())).unwrap(), Kind::Beta);
        assert!(Kind::from_json(&Json::Str("Gamma".into())).is_err());
        assert!(Kind::from_json(&Json::Num(1.0)).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let mut m = HashMap::new();
        m.insert("k1".to_owned(), 1u32);
        m.insert("k2".to_owned(), 2u32);
        let text = m.to_json().to_compact_string();
        assert_eq!(text, r#"{"k1":1,"k2":2}"#); // sorted keys
        let back: HashMap<String, u32> = FromJson::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn int_conversions_check_range() {
        assert!(u8::from_json(&Json::Num(256.0)).is_err());
        assert!(u32::from_json(&Json::Num(-1.0)).is_err());
        assert!(u32::from_json(&Json::Num(1.5)).is_err());
        assert_eq!(i64::from_json(&Json::Num(-5.0)).unwrap(), -5);
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact_string(), "null");
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
    }
}
