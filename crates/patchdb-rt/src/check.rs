//! Property-based testing over a recorded choice tape.
//!
//! A property is a closure that draws pseudo-random values from a [`Gen`]
//! and asserts invariants with ordinary `assert!`/`assert_eq!`. The
//! harness runs it for a configured number of cases; every raw draw is
//! recorded on a tape of `u64`s, so when a case fails the harness shrinks
//! the *tape* (removing chunks, zeroing, binary-searching individual
//! values toward zero) and replays the property until the failure is as
//! small as it will get — the same design as Hypothesis, and the reason
//! shrinking needs no per-type shrinker definitions.
//!
//! Minimal failing tapes are persisted under
//! `$CARGO_MANIFEST_DIR/tests/rt-regressions/<name>.txt` and replayed at
//! the start of every subsequent run, so a bug found once is pinned until
//! fixed — the moral equivalent of proptest's `.proptest-regressions`.
//!
//! ```rust,no_run
//! use patchdb_rt::check::check;
//!
//! check("reverse_is_involutive", 256, |g| {
//!     let v = g.vec_with(0, 32, |g| g.u64());
//!     let mut w = v.clone();
//!     w.reverse();
//!     w.reverse();
//!     assert_eq!(v, w);
//! });
//! ```

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Once;

use crate::rng::Xoshiro256pp;

/// Default base seed for the random phase; override with
/// `PATCHDB_CHECK_SEED` to explore a different part of the space.
const DEFAULT_SEED: u64 = 0x7061746368646221; // "patchdb!"

/// Cap on total property executions spent shrinking one failure.
const MAX_SHRINK_RUNS: usize = 4096;

/// The value source handed to properties.
///
/// Every method ultimately consumes `u64`s from either a live PRNG or a
/// replayed tape; all draws are recorded so failures can be shrunk and
/// persisted.
pub struct Gen {
    source: Source,
    tape: Vec<u64>,
}

enum Source {
    Random(Xoshiro256pp),
    Replay { tape: Vec<u64>, pos: usize },
}

impl Gen {
    fn random(seed: u64) -> Gen {
        Gen { source: Source::Random(Xoshiro256pp::seed_from_u64(seed)), tape: Vec::new() }
    }

    fn replay(tape: Vec<u64>) -> Gen {
        Gen { source: Source::Replay { tape, pos: 0 }, tape: Vec::new() }
    }

    /// One raw draw. On an exhausted replay tape this returns 0, which
    /// makes chopping the tail of a tape a valid shrink step.
    fn raw(&mut self) -> u64 {
        let v = match &mut self.source {
            Source::Random(rng) => rng.next_u64(),
            Source::Replay { tape, pos } => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.tape.push(v);
        v
    }

    /// A uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.raw()
    }

    /// A uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        // Truncation keeps raw==0 mapping to 0 for clean shrinks.
        self.raw() as u32
    }

    /// A bool; shrinks toward `false`.
    pub fn bool(&mut self) -> bool {
        self.raw() % 2 == 1
    }

    /// A float in `[0, 1)`; shrinks toward 0.
    pub fn f64_unit(&mut self) -> f64 {
        (self.raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A float in `[lo, hi]`; shrinks toward `lo`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "f64_in: empty range {lo}..={hi}");
        lo + self.f64_unit() * (hi - lo)
    }

    /// A uniform integer in `[lo, hi]` (inclusive); shrinks toward `lo`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "u64_in: empty range {lo}..={hi}");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full u64 range.
            return self.raw();
        }
        lo + self.raw() % span
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive); shrinks toward `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi]` (inclusive); shrinks toward `lo`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "i64_in: empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        let off = if span == 0 { self.raw() } else { self.raw() % span };
        (lo as i128 + off as i128) as i64
    }

    /// An index into a collection of `len` elements; shrinks toward 0.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index: empty collection");
        self.usize_in(0, len - 1)
    }

    /// A reference to a uniformly chosen element; shrinks toward the
    /// first element (so put the "simplest" choice first).
    pub fn pick<'s, T>(&mut self, items: &'s [T]) -> &'s T {
        &items[self.index(items.len())]
    }

    /// A `Vec` whose length is uniform in `[min, max]`, filled by `f`;
    /// shrinks toward shorter vectors of simpler elements.
    pub fn vec_with<T>(
        &mut self,
        min: usize,
        max: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(min, max);
        (0..n).map(|_| f(self)).collect()
    }

    /// A string of `[min, max]` chars drawn uniformly from `alphabet`;
    /// shrinks toward shorter strings of the alphabet's first char.
    pub fn string_from(&mut self, min: usize, max: usize, alphabet: &str) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "string_from: empty alphabet");
        let n = self.usize_in(min, max);
        (0..n).map(|_| *self.pick(&chars)).collect()
    }

    /// A weighted choice: returns an index into `weights` with
    /// probability proportional to the weight; shrinks toward index 0.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted: all weights zero");
        let mut ticket = self.u64_in(0, total - 1);
        for (i, &w) in weights.iter().enumerate() {
            if ticket < w as u64 {
                return i;
            }
            ticket -= w as u64;
        }
        weights.len() - 1
    }
}

/// Configurable property runner; [`check`] covers the common case.
pub struct Checker {
    name: String,
    cases: u32,
    seed: u64,
    regression_dir: Option<PathBuf>,
}

impl Checker {
    /// A runner for the named property with default settings
    /// (256 cases, persisted regressions, env-overridable seed).
    pub fn new(name: &str) -> Checker {
        let seed = std::env::var("PATCHDB_CHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_SEED);
        let regression_dir = std::env::var_os("CARGO_MANIFEST_DIR")
            .map(|d| Path::new(&d).join("tests").join("rt-regressions"));
        Checker { name: name.to_owned(), cases: 256, seed, regression_dir }
    }

    /// Sets the number of random cases.
    pub fn cases(mut self, cases: u32) -> Checker {
        self.cases = cases;
        self
    }

    /// Sets the base seed (normally from `PATCHDB_CHECK_SEED`).
    pub fn seed(mut self, seed: u64) -> Checker {
        self.seed = seed;
        self
    }

    /// Overrides where regression tapes live; `None` disables
    /// persistence and replay.
    pub fn regression_dir(mut self, dir: Option<PathBuf>) -> Checker {
        self.regression_dir = dir;
        self
    }

    /// Runs the property; panics with a shrunken counterexample on
    /// failure.
    pub fn run(self, prop: impl Fn(&mut Gen)) {
        install_silencer();

        // Phase 1: replay persisted regressions.
        for tape in self.load_regressions() {
            let mut gen = Gen::replay(tape.clone());
            if let Some(msg) = run_silently(&prop, &mut gen) {
                self.fail(trim(gen.tape), msg, &prop, true);
            }
        }

        // Phase 2: fresh random cases.
        for case in 0..self.cases {
            let mut gen = Gen::random(self.seed.wrapping_add(case as u64));
            if let Some(msg) = run_silently(&prop, &mut gen) {
                self.fail(trim(gen.tape), msg, &prop, false);
            }
        }
    }

    fn fail(&self, tape: Vec<u64>, msg: String, prop: &impl Fn(&mut Gen), replayed: bool) -> ! {
        let (tape, msg) = shrink(tape, msg, prop);
        let persisted = if replayed { None } else { self.persist(&tape) };
        let where_ = match (&persisted, replayed) {
            (_, true) => "replayed from persisted regression".to_owned(),
            (Some(path), _) => format!("persisted to {}", path.display()),
            (None, _) => "not persisted".to_owned(),
        };
        panic!(
            "property '{}' failed ({} draws, {}): {}\n  tape: {:?}",
            self.name,
            tape.len(),
            where_,
            msg,
            tape,
        );
    }

    fn regression_file(&self) -> Option<PathBuf> {
        self.regression_dir.as_ref().map(|d| d.join(format!("{}.txt", self.name)))
    }

    fn load_regressions(&self) -> Vec<Vec<u64>> {
        let Some(path) = self.regression_file() else { return Vec::new() };
        let Ok(text) = std::fs::read_to_string(path) else { return Vec::new() };
        text.lines()
            .map(|line| line.split('#').next().unwrap_or(""))
            .filter(|line| !line.trim().is_empty())
            .map(|line| line.split_whitespace().filter_map(|w| w.parse().ok()).collect())
            .collect()
    }

    fn persist(&self, tape: &[u64]) -> Option<PathBuf> {
        let path = self.regression_file()?;
        let line = if tape.is_empty() {
            "0".to_owned()
        } else {
            tape.iter().map(u64::to_string).collect::<Vec<_>>().join(" ")
        };
        let mut text = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            format!(
                "# Shrunken failure tapes for property '{}', replayed on every run.\n\
                 # Delete a line once its bug is fixed and the property passes again.\n",
                self.name
            )
        });
        if text.lines().any(|l| l.trim() == line) {
            return Some(path);
        }
        if !text.ends_with('\n') && !text.is_empty() {
            text.push('\n');
        }
        text.push_str(&line);
        text.push('\n');
        std::fs::create_dir_all(path.parent()?).ok()?;
        std::fs::write(&path, text).ok()?;
        Some(path)
    }
}

/// Runs `prop` for `cases` random cases under the name `name`, after
/// replaying any persisted regression tapes. Panics with a shrunken
/// counterexample on failure.
pub fn check(name: &str, cases: u32, prop: impl Fn(&mut Gen)) {
    Checker::new(name).cases(cases).run(prop);
}

/// Trailing zeros replay identically to an exhausted tape, so strip them
/// to canonicalize (this is what makes the shrink order well-founded).
fn trim(mut tape: Vec<u64>) -> Vec<u64> {
    while tape.last() == Some(&0) {
        tape.pop();
    }
    tape
}

/// `a` is a strictly simpler tape than `b`: shorter, or equal length and
/// lexicographically smaller.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

fn shrink(
    mut best: Vec<u64>,
    mut best_msg: String,
    prop: &impl Fn(&mut Gen),
) -> (Vec<u64>, String) {
    let runs = Cell::new(0usize);
    // Re-runs the property on a candidate tape; adopts it when it still
    // fails and is simpler than the current best.
    let try_adopt = |candidate: Vec<u64>, best: &mut Vec<u64>, best_msg: &mut String| {
        runs.set(runs.get() + 1);
        if runs.get() > MAX_SHRINK_RUNS {
            return false;
        }
        let mut gen = Gen::replay(candidate);
        match run_silently(prop, &mut gen) {
            Some(msg) => {
                let consumed = trim(gen.tape);
                if simpler(&consumed, best) {
                    *best = consumed;
                    *best_msg = msg;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    };

    loop {
        let mut progressed = false;

        // Pass 1: delete chunks, largest first.
        for size in [32usize, 8, 4, 2, 1] {
            let mut i = 0;
            while size <= best.len() && i + size <= best.len() {
                let mut candidate = best.clone();
                candidate.drain(i..i + size);
                if try_adopt(candidate, &mut best, &mut best_msg) {
                    progressed = true;
                    // Something was deleted at i; retry the same offset.
                } else {
                    i += 1;
                }
            }
        }

        // Pass 2: zero chunks (cheaper than deletion when positions are
        // load-bearing).
        for size in [8usize, 2, 1] {
            let mut i = 0;
            while size <= best.len() && i + size <= best.len() {
                if best[i..i + size].iter().any(|&v| v != 0) {
                    let mut candidate = best.clone();
                    candidate[i..i + size].iter_mut().for_each(|v| *v = 0);
                    if try_adopt(candidate, &mut best, &mut best_msg) {
                        progressed = true;
                    }
                }
                i += size;
            }
        }

        // Pass 3: binary-search each value toward zero.
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            // Invariant: the tape with best[i] = hi fails; probe whether
            // smaller values still do (assuming monotonicity, which holds
            // for the `lo + raw % span` draw mapping).
            let (mut lo, mut hi) = (0u64, best[i]);
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.clone();
                candidate[i] = mid;
                if try_adopt(candidate, &mut best, &mut best_msg) {
                    progressed = true;
                    if best.len() <= i {
                        break; // adoption shortened the tape under us
                    }
                    hi = best[i].min(mid);
                } else {
                    lo = mid + 1;
                }
            }
        }

        if !progressed || runs.get() > MAX_SHRINK_RUNS {
            return (best, best_msg);
        }
    }
}

thread_local! {
    static SILENT: Cell<bool> = const { Cell::new(false) };
}

static SILENCER: Once = Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// backtrace spew on threads currently executing a property, so hundreds
/// of shrink replays don't flood the test output.
fn install_silencer() {
    SILENCER.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SILENT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Runs the property once, capturing a panic as `Some(message)`.
fn run_silently(prop: &impl Fn(&mut Gen), gen: &mut Gen) -> Option<String> {
    SILENT.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| prop(gen)));
    SILENT.with(|s| s.set(false));
    match result {
        Ok(()) => None,
        Err(payload) => Some(payload_message(payload.as_ref())),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::panic::catch_unwind;

    fn quiet(name: &str, cases: u32) -> Checker {
        Checker::new(name).cases(cases).regression_dir(None)
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let count = RefCell::new(0u32);
        quiet("counts_cases", 100).run(|g| {
            *count.borrow_mut() += 1;
            let v = g.u64_in(3, 9);
            assert!((3..=9).contains(&v));
        });
        assert_eq!(*count.borrow(), 100);
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            quiet("shrinks_to_boundary", 64).run(|g| {
                let v = g.u64_in(0, 1000);
                assert!(v < 473, "too big: {v}");
            });
        }));
        let msg = payload_message(result.unwrap_err().as_ref());
        // The minimal counterexample is exactly 473, via a tape of [473].
        assert!(msg.contains("tape: [473]"), "unexpected shrink result: {msg}");
        assert!(msg.contains("too big: 473"), "unexpected message: {msg}");
    }

    #[test]
    fn vectors_shrink_toward_empty() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            quiet("vec_shrink", 64).run(|g| {
                let v = g.vec_with(0, 24, |g| g.u64_in(0, 100));
                assert!(v.iter().sum::<u64>() < 50);
            });
        }));
        let msg = payload_message(result.unwrap_err().as_ref());
        // Minimal failure: one element of exactly 50 → tape [1, 50].
        assert!(msg.contains("tape: [1, 50]"), "unexpected shrink result: {msg}");
    }

    #[test]
    fn persisted_regression_is_replayed() {
        let dir = std::env::temp_dir().join(format!("patchdb-rt-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Random search will essentially never hit this raw value, but the
        // persisted tape must.
        std::fs::write(dir.join("replay_pin.txt"), "7777 # pinned\n").unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new("replay_pin")
                .cases(16)
                .regression_dir(Some(dir.clone()))
                .run(|g| assert_ne!(g.u64(), 7777));
        }));
        let msg = payload_message(result.unwrap_err().as_ref());
        assert!(msg.contains("replayed from persisted regression"), "{msg}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failures_are_persisted_and_deduplicated() {
        let dir = std::env::temp_dir().join(format!("patchdb-rt-persist-{}", std::process::id()));
        for _ in 0..2 {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                Checker::new("persist_me")
                    .cases(8)
                    .regression_dir(Some(dir.clone()))
                    .run(|g| {
                        let v = g.u64_in(0, 10);
                        assert!(v < 5);
                    });
            }));
        }
        let text = std::fs::read_to_string(dir.join("persist_me.txt")).unwrap();
        let tapes: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(tapes, ["5"], "expected one deduplicated tape: {text:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn same_seed_same_draws() {
        let record = |seed: u64| {
            let out = RefCell::new(Vec::new());
            Checker::new("determinism")
                .cases(10)
                .seed(seed)
                .regression_dir(None)
                .run(|g| {
                    out.borrow_mut().push((g.u64(), g.usize_in(0, 99), g.bool()));
                });
            out.into_inner()
        };
        assert_eq!(record(42), record(42));
        assert_ne!(record(42), record(43));
    }

    #[test]
    fn generators_respect_ranges() {
        quiet("generator_ranges", 200).run(|g| {
            assert!((0.0..1.0).contains(&g.f64_unit()));
            assert!((-5..=5).contains(&g.i64_in(-5, 5)));
            let s = g.string_from(2, 4, "ab");
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
            let w = g.weighted(&[1, 0, 3]);
            assert!(w == 0 || w == 2);
            let xs = [10, 20, 30];
            assert!(xs.contains(g.pick(&xs)));
        });
    }
}
