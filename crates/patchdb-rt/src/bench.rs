//! A criterion-style micro-benchmark harness.
//!
//! Supplies the small slice of the `criterion` API the workspace's bench
//! targets use — [`Criterion`], [`black_box`], benchmark groups with
//! throughput, [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple but honest measurement
//! loop: calibrate a batch size so one sample takes a few milliseconds,
//! warm up, then time `sample_size` batches and report median and p95
//! per-iteration latency.
//!
//! Results print as a table on stdout; set `PATCHDB_BENCH_JSON=<path>` to
//! also append one JSON object per benchmark (JSON-lines) for scripted
//! consumption, and `PATCHDB_BENCH_FAST=1` to cut warmup and samples for
//! smoke runs.
//!
//! [`criterion_group!`]: crate::criterion_group
//! [`criterion_main!`]: crate::criterion_main

use std::fmt;
use std::time::{Duration, Instant};

use crate::json::{Json, ToJson};

/// An opaque sink preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many abstract elements per iteration.
    Elements(u64),
}

/// A two-part benchmark name, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id for `function` measured at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark name (`group/function/parameter`).
    pub name: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Throughput in bytes per iteration, when the group declared one.
    pub bytes_per_iter: Option<u64>,
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("median_ns".into(), Json::Num(self.median_ns)),
            ("p95_ns".into(), Json::Num(self.p95_ns)),
            ("mean_ns".into(), Json::Num(self.mean_ns)),
            ("iters_per_sample".into(), Json::Num(self.iters_per_sample as f64)),
            ("samples".into(), Json::Num(self.samples as f64)),
            ("bytes_per_iter".into(), self.bytes_per_iter.to_json()),
        ])
    }
}

/// The harness: configure, then register benchmarks with
/// [`bench_function`](Criterion::bench_function) or under a
/// [`benchmark_group`](Criterion::benchmark_group).
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    sample_target: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let fast = std::env::var_os("PATCHDB_BENCH_FAST").is_some();
        Criterion {
            sample_size: if fast { 5 } else { 20 },
            warmup: if fast { Duration::from_millis(20) } else { Duration::from_millis(200) },
            sample_target: if fast {
                Duration::from_micros(500)
            } else {
                Duration::from_millis(3)
            },
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark warmup budget.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warmup = d;
        self
    }

    /// Sets the target wall time of one sample batch (drives batch-size
    /// calibration).
    pub fn measurement_sample_target(mut self, d: Duration) -> Criterion {
        self.sample_target = d;
        self
    }

    /// Measures a standalone benchmark.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher::new(self);
        f(&mut b);
        self.record(name, None, b);
        self
    }

    /// Opens a named group; benchmarks in it share the group-name prefix
    /// and an optional throughput annotation.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_owned(), throughput: None }
    }

    /// All results measured so far, in registration order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn record(&mut self, name: &str, throughput: Option<Throughput>, b: Bencher) {
        let mut per_iter: Vec<f64> = b.samples;
        if per_iter.is_empty() {
            return; // the closure never called iter()
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
        let median = percentile(&per_iter, 50.0);
        let p95 = percentile(&per_iter, 95.0);
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let bytes_per_iter = match throughput {
            Some(Throughput::Bytes(n)) => Some(n),
            _ => None,
        };
        let result = BenchResult {
            name: name.to_owned(),
            median_ns: median,
            p95_ns: p95,
            mean_ns: mean,
            iters_per_sample: b.iters_per_sample,
            samples: per_iter.len(),
            bytes_per_iter,
        };
        print_result(&result, throughput);
        self.results.push(result);
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Some(path) = std::env::var_os("PATCHDB_BENCH_JSON") else { return };
        let mut lines = String::new();
        for r in &self.results {
            lines.push_str(&r.to_json().to_compact_string());
            lines.push('\n');
        }
        use std::io::Write as _;
        if let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(&path)
        {
            let _ = f.write_all(lines.as_bytes());
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling MiB/s in
    /// the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `group-name/name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.criterion);
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        self.criterion.record(&full, self.throughput, b);
        self
    }

    /// Measures `group-name/id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion);
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.record(&full, self.throughput, b);
        self
    }

    /// Ends the group (kept for criterion API compatibility; dropping the
    /// group has the same effect).
    pub fn finish(self) {}
}

/// Hands the measurement loop to a benchmark body via
/// [`iter`](Bencher::iter).
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    sample_target: Duration,
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(c: &Criterion) -> Bencher {
        Bencher {
            sample_size: c.sample_size,
            warmup: c.warmup,
            sample_target: c.sample_target,
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Times `f`: calibrates a batch size so one batch takes roughly the
    /// configured sample target, warms up, then records per-iteration
    /// times for `sample_size` batches.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Calibrate: double the batch until one batch meets the target.
        let mut iters: u64 = 1;
        loop {
            let elapsed = time_batch(iters, &mut f);
            if elapsed >= self.sample_target || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;

        // Warm up within budget (calibration already touched caches).
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            time_batch(iters, &mut f);
        }

        self.samples = (0..self.sample_size)
            .map(|_| time_batch(iters, &mut f).as_nanos() as f64 / iters as f64)
            .collect();
    }
}

fn time_batch<T>(iters: u64, f: &mut impl FnMut() -> T) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed()
}

/// Linear-interpolated percentile of an ascending slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn print_result(r: &BenchResult, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (1 << 20) as f64 / (r.median_ns / 1e9);
            format!("   {mib_s:.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (r.median_ns / 1e9);
            format!("   {elem_s:.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "{:<44} median {:>10}   p95 {:>10}{}",
        r.name,
        format_ns(r.median_ns),
        format_ns(r.p95_ns),
        rate,
    );
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name. Both the `name =/config =/targets =` form and
/// the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Generates `main` for a `harness = false` bench target, mirroring
/// criterion's macro of the same name. Ignores harness CLI flags such as
/// `--bench` that cargo passes along.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(4)
            .warm_up_time(Duration::from_micros(100))
            .measurement_sample_target(Duration::from_micros(50))
    }

    #[test]
    fn bench_function_records_a_result() {
        let mut c = fast();
        c.bench_function("square", |b| b.iter(|| black_box(7u64) * 7));
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "square");
        assert!(results[0].samples >= 2);
        assert!(results[0].median_ns >= 0.0);
        assert!(results[0].p95_ns >= results[0].median_ns);
    }

    #[test]
    fn groups_prefix_names_and_carry_throughput() {
        let mut c = fast();
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("touch", |b| b.iter(|| black_box([0u8; 64])));
            g.bench_with_input(BenchmarkId::new("sized", 32), &32usize, |b, &n| {
                b.iter(|| black_box(vec![0u8; n]))
            });
            g.finish();
        }
        let names: Vec<&str> = c.results().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["grp/touch", "grp/sized/32"]);
        assert_eq!(c.results()[0].bytes_per_iter, Some(1024));
    }

    #[test]
    fn calibration_scales_batch_for_cheap_bodies() {
        let mut c = fast();
        c.bench_function("noop", |b| b.iter(|| 1u32));
        assert!(
            c.results()[0].iters_per_sample > 1,
            "a no-op body should be batched, got {}",
            c.results()[0].iters_per_sample
        );
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 100.0), 30.0);
        assert_eq!(percentile(&v, 50.0), 15.0);
        assert_eq!(percentile(&[5.0], 95.0), 5.0);
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1_500.0), "1.50 µs");
        assert_eq!(format_ns(2_000_000.0), "2.00 ms");
        assert_eq!(format_ns(3_200_000_000.0), "3.200 s");
    }

    #[test]
    fn results_serialize_to_json() {
        let r = BenchResult {
            name: "x".into(),
            median_ns: 1.5,
            p95_ns: 2.0,
            mean_ns: 1.6,
            iters_per_sample: 8,
            samples: 4,
            bytes_per_iter: None,
        };
        let text = r.to_json().to_compact_string();
        assert!(text.contains("\"median_ns\":1.5"), "{text}");
        assert!(text.contains("\"bytes_per_iter\":null"), "{text}");
    }
}
