//! A small bounded MPMC queue over `Mutex` + `Condvar` — the admission
//! buffer behind `patchdb-serve`'s accept loop, usable anywhere a
//! fixed-capacity producer/consumer hand-off with explicit backpressure
//! is needed.
//!
//! The shape is deliberately minimal: producers **never block** — when
//! the queue is full, [`BoundedQueue::try_push`] hands the item straight
//! back so the caller can shed load (respond `503`, drop, retry later)
//! instead of queueing unboundedly. Consumers block in
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed
//! and drained, which makes "stop accepting, finish what's queued" a
//! one-call graceful-drain protocol: `close()` wakes every sleeping
//! consumer, and each keeps popping until the backlog is empty.
//!
//! ```rust
//! use patchdb_rt::queue::{BoundedQueue, PushError};
//!
//! let q = BoundedQueue::new(2);
//! q.try_push(1).unwrap();
//! q.try_push(2).unwrap();
//! assert_eq!(q.try_push(3), Err(PushError::Full(3))); // backpressure
//! q.close();
//! assert_eq!(q.pop(), Some(1)); // drains in FIFO order after close
//! assert_eq!(q.pop(), Some(2));
//! assert_eq!(q.pop(), None);    // closed and empty
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] was refused; the item comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed the load.
    Full(T),
    /// The queue was closed — no new work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item, regardless of the reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO hand-off between threads. See the module docs
/// for the non-blocking-producer / blocking-consumer contract.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items (clamped to at
    /// least 1 — a zero-capacity queue could never hand anything off).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is at capacity right now. Advisory only — a
    /// concurrent pop can free a slot immediately after; use
    /// [`try_push`](Self::try_push) for the authoritative answer.
    pub fn is_full(&self) -> bool {
        self.inner.lock().unwrap().items.len() >= self.capacity
    }

    /// Enqueues `item` unless the queue is full or closed; never blocks.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError::Full`] (at capacity) or
    /// [`PushError::Closed`] (after [`close`](Self::close)).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open but
    /// empty. Returns `None` once the queue is closed **and** drained —
    /// the consumer's signal to exit its loop.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// already-queued items remain poppable, and every consumer blocked
    /// in [`pop`](Self::pop) wakes up. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(3);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.try_push(4).unwrap(); // pops free capacity back up
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
    }

    #[test]
    fn full_queue_sheds_rather_than_blocks() {
        let q = BoundedQueue::new(1);
        assert!(!q.is_full());
        q.try_push("a").unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push("b"), Err(PushError::Full("b")));
        assert_eq!(q.pop(), Some("a"));
        assert!(!q.is_full());
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_rejects_pushes_but_drains_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(11), Err(PushError::Closed(11)));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // stays terminal
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn push_error_hands_the_item_back() {
        assert_eq!(PushError::Full(7).into_inner(), 7);
        assert_eq!(PushError::Closed(8).into_inner(), 8);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        // Give consumers a moment to block, then feed and close.
        std::thread::sleep(Duration::from_millis(10));
        for v in 0..20 {
            while q.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<u32> =
            consumers.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
