//! `patchdb-rt`: the in-repo runtime that keeps the workspace hermetic.
//!
//! The reproduction must build and test with `--offline` on a machine with
//! an empty cargo registry cache, so nothing in this tree may depend on
//! external crates. This crate supplies small, well-tested stand-ins for
//! the handful of third-party APIs the workspace used to pull in:
//!
//! * [`rng`] — a seedable, cross-platform-deterministic xoshiro256++ PRNG
//!   with the subset of the `rand` API the workspace uses (`gen_range`,
//!   `gen_bool`, `shuffle`, …).
//! * [`json`] — a JSON value type, parser, and printers, plus derive-free
//!   [`json::ToJson`]/[`json::FromJson`] traits and impl macros, replacing
//!   `serde`/`serde_json`.
//! * [`check`] — a property-testing harness (generators over a recorded
//!   choice tape, shrinking, persisted regression tapes), replacing
//!   `proptest`.
//! * [`bench`] — a criterion-style timing harness (warmup, samples,
//!   median/p95, optional JSON report), replacing `criterion`.
//! * [`par`] — scoped-thread fan-out over `std::thread::scope`, replacing
//!   `crossbeam::scope`.
//! * [`obs`] — spans, counters, gauges, histograms (cumulative and
//!   rolling-window) and an event ring buffer behind a `PATCHDB_TRACE`
//!   toggle (near-zero cost when off), replacing `tracing`/`metrics` —
//!   plus the introspection runtime on top: a per-thread flight
//!   recorder with a panic-hook dump ([`obs::flight`]), a seqlock
//!   span-path sampling profiler emitting folded stacks
//!   ([`obs::sampler`]), and Chrome/Perfetto trace-event exporters
//!   ([`obs::export`]), replacing `pprof`/`tracing-chrome`.
//! * [`queue`] — a bounded MPMC hand-off with non-blocking producers
//!   (explicit backpressure) and gracefully draining consumers, the
//!   admission-control primitive under `patchdb-serve`.
//! * [`net`] — non-blocking readiness primitives: a zero-dep `poll(2)`
//!   wrapper, a self-pipe [`net::Waker`], and an fd-limit helper, the
//!   substrate of the event-driven serve front end (replacing `mio`).

pub mod bench;
pub mod check;
pub mod json;
#[cfg(unix)]
pub mod net;
pub mod obs;
pub mod par;
pub mod queue;
pub mod rng;
