//! Scoped-thread fan-out over `std::thread::scope`, replacing the
//! `crossbeam::scope` uses in the workspace.
//!
//! The shapes the workspace needs are "map a slice across a few worker
//! threads, preserving order" ([`map_chunked`], [`map_chunked_indexed`])
//! and "fold a slice per chunk, then combine in a fixed order"
//! ([`fold_chunked`]). [`suggested_threads`] picks a sane worker count
//! and [`configured_threads`] layers the `PATCHDB_THREADS` environment
//! override on top, so one knob steers every parallel site.
//!
//! Every primitive here is deterministic: chunk boundaries depend only on
//! input length and thread count, results are reassembled in input order,
//! and [`fold_chunked`] combines chunk accumulators strictly left to
//! right — so output is a pure function of the input even though wall
//! time is not.

use std::panic;

/// A worker count: available parallelism capped at `cap`, at least 1.
pub fn suggested_threads(cap: usize) -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(cap).max(1)
}

/// The worker count parallel call sites should use: the `PATCHDB_THREADS`
/// environment variable when set to a positive integer (taking precedence
/// over `cap` — an explicit override wins), otherwise
/// [`suggested_threads`]`(cap)`.
///
/// Because every primitive in this module is deterministic, changing
/// `PATCHDB_THREADS` changes wall time but never output bytes;
/// `tests/determinism.rs` pins that.
/// A misconfigured `PATCHDB_THREADS` must not fail silently, but it also
/// must not spam stderr once per parallel call site — warn exactly once
/// per process.
///
/// `0` is clamped to `1` (the smallest legal worker count); anything
/// unparsable falls back to [`suggested_threads`].
pub fn configured_threads(cap: usize) -> usize {
    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
    let (threads, warning) =
        interpret_thread_override(std::env::var("PATCHDB_THREADS").ok().as_deref());
    if let Some(msg) = warning {
        WARN_ONCE.call_once(|| eprintln!("warning: {msg}"));
    }
    threads.unwrap_or_else(|| suggested_threads(cap))
}

/// The pure core of [`configured_threads`]: interprets a raw
/// `PATCHDB_THREADS` value as `(worker count override, warning)`.
fn interpret_thread_override(raw: Option<&str>) -> (Option<usize>, Option<String>) {
    let Some(raw) = raw else { return (None, None) };
    match raw.trim().parse::<usize>() {
        Ok(0) => (
            Some(1),
            Some("PATCHDB_THREADS=0 is not a valid worker count; clamping to 1".to_owned()),
        ),
        Ok(n) => (Some(n), None),
        Err(_) => (
            None,
            Some(format!(
                "PATCHDB_THREADS={raw:?} is not a positive integer; \
                 falling back to the suggested worker count"
            )),
        ),
    }
}

/// Maps `f` over `items` using up to `threads` scoped worker threads,
/// returning results in input order.
///
/// Items are split into contiguous chunks, one per worker, so `f` should
/// be roughly uniform in cost. With `threads <= 1` or a single-element
/// input this degrades to a plain serial map with no thread spawns.
///
/// # Panics
///
/// When workers panic, every chunk is still joined, and then the panic of
/// the **earliest chunk in spawn order** is resumed on the caller's
/// thread — deterministically, even if a later chunk's panic happened
/// first in wall-clock time.
pub fn map_chunked<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    map_chunked_indexed(items, threads, |_, item| f(item))
}

/// [`map_chunked`], but `f` also receives each item's index in `items`.
///
/// The index lets workers address side tables (norms, ids, labels)
/// without zipping them into the input slice first. Same chunking,
/// ordering, and panic semantics as [`map_chunked`].
pub fn map_chunked_indexed<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }

    let chunk_len = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(chunk_no, chunk)| {
                let f = &f;
                let base = chunk_no * chunk_len;
                scope.spawn(move || {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(i, item)| f(base + i, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        // Join every handle in spawn order before propagating anything,
        // so the panic we resume is the first chunk's — not whichever
        // worker happened to lose the race.
        let mut first_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(chunk_results) => results.push(chunk_results),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            panic::resume_unwind(payload);
        }
    });
    results.into_iter().flatten().collect()
}

/// Folds `items` chunk-wise in parallel, then combines the per-chunk
/// accumulators **left to right in chunk order** on the caller's thread.
///
/// Each worker starts from `init()` and folds its contiguous chunk with
/// `fold`; the caller then reduces the chunk accumulators with `combine`,
/// always as `combine(combine(a0, a1), a2)…`. For `combine` operations
/// that are associative over the values produced (elementwise `max`,
/// set union, concatenation), the result is bitwise identical at every
/// thread count; the fixed combine order is what keeps even
/// non-associative floating-point reductions deterministic for a given
/// `threads` value.
///
/// Panic semantics match [`map_chunked`]: the earliest chunk's panic is
/// resumed deterministically.
pub fn fold_chunked<T: Sync, A: Send>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> A + Sync,
    fold: impl Fn(A, &T) -> A + Sync,
    combine: impl FnMut(A, A) -> A,
) -> A {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().fold(init(), fold);
    }

    let chunk_len = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let accs = map_chunked(&chunks, threads, |chunk| chunk.iter().fold(init(), &fold));
    accs.into_iter().reduce(combine).unwrap_or_else(init)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::time::Duration;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let out = map_chunked(&items, 4, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn handles_degenerate_shapes() {
        assert_eq!(map_chunked::<u32, u32>(&[], 4, |&x| x), Vec::<u32>::new());
        assert_eq!(map_chunked(&[7], 4, |&x| x + 1), vec![8]);
        assert_eq!(map_chunked(&[1, 2, 3], 1, |&x| x), vec![1, 2, 3]);
        // More threads than items must not spawn empty-chunk workers.
        assert_eq!(map_chunked(&[1, 2], 16, |&x| x), vec![1, 2]);
    }

    #[test]
    fn indexed_map_sees_global_indices() {
        let items: Vec<u64> = (0..97).map(|x| x * 3).collect();
        for threads in [1, 2, 5] {
            let out = map_chunked_indexed(&items, threads, |i, &x| (i, x));
            let expected: Vec<(usize, u64)> =
                items.iter().enumerate().map(|(i, &x)| (i, x)).collect();
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn fold_chunked_matches_serial_fold() {
        let items: Vec<u64> = (1..=1000).collect();
        for threads in [1, 2, 3, 8] {
            let sum = fold_chunked(&items, threads, || 0u64, |acc, &x| acc + x, |a, b| a + b);
            assert_eq!(sum, 500_500, "threads={threads}");
        }
        // Empty input returns init().
        let zero = fold_chunked(&[] as &[u64], 4, || 7u64, |a, &x| a + x, |a, b| a + b);
        assert_eq!(zero, 7);
    }

    #[test]
    fn fold_chunked_combines_in_chunk_order() {
        // Concatenation is associative but not commutative: any
        // out-of-order combine would scramble the result.
        let items: Vec<u32> = (0..37).collect();
        for threads in [2, 4, 16] {
            let cat = fold_chunked(
                &items,
                threads,
                Vec::new,
                |mut acc: Vec<u32>, &x| {
                    acc.push(x);
                    acc
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            );
            assert_eq!(cat, items, "threads={threads}");
        }
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        map_chunked(&items, 4, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(Duration::from_millis(1));
        });
        assert!(seen.lock().unwrap().len() > 1, "expected work on >1 thread");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = panic::catch_unwind(|| {
            map_chunked(&[1, 2, 3, 4], 2, |&x| {
                assert_ne!(x, 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn first_chunk_panic_wins_even_when_it_finishes_last() {
        // Two panicking chunks: [1, 2] and [3, 4] under 2 threads. The
        // first chunk sleeps so the second chunk's panic lands earlier in
        // wall-clock time; spawn order must still win.
        let result = panic::catch_unwind(|| {
            map_chunked(&[1, 2, 3, 4], 2, |&x| {
                if x <= 2 {
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("first-chunk failure");
                }
                panic!("second-chunk failure");
            })
        });
        let payload = result.expect_err("both chunks panicked");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("string panic payload");
        assert_eq!(msg, "first-chunk failure", "panic from the wrong chunk won");
    }

    #[test]
    fn suggested_threads_is_capped_and_positive() {
        assert!(suggested_threads(8) >= 1);
        assert!(suggested_threads(8) <= 8);
        assert_eq!(suggested_threads(1), 1);
    }

    #[test]
    fn configured_threads_defaults_to_suggestion() {
        // The test environment does not set PATCHDB_THREADS (and the
        // determinism suite may, in which case any positive value is
        // legal) — either way the result is a positive worker count.
        assert!(configured_threads(8) >= 1);
    }

    #[test]
    fn thread_override_interpretation() {
        // Unset: no override, no warning.
        assert_eq!(interpret_thread_override(None), (None, None));
        // A positive integer is taken verbatim, silently.
        assert_eq!(interpret_thread_override(Some("4")), (Some(4), None));
        assert_eq!(interpret_thread_override(Some(" 12 ")), (Some(12), None));
        // Zero is clamped to 1 with a warning.
        let (t, w) = interpret_thread_override(Some("0"));
        assert_eq!(t, Some(1));
        assert!(w.is_some_and(|m| m.contains("clamping to 1")), "missing clamp warning");
        // Garbage falls back to the suggestion with a warning.
        for bad in ["abc", "-3", "1.5", ""] {
            let (t, w) = interpret_thread_override(Some(bad));
            assert_eq!(t, None, "{bad:?} must not override");
            assert!(
                w.as_deref().is_some_and(|m| m.contains("not a positive integer")),
                "{bad:?} must warn"
            );
        }
    }
}
