//! Scoped-thread fan-out over `std::thread::scope`, replacing the
//! `crossbeam::scope` uses in the workspace.
//!
//! The one shape the workspace needs is "map a slice across a few worker
//! threads, preserving order" — [`map_chunked`] does exactly that, and
//! [`suggested_threads`] picks a sane worker count.

use std::panic;

/// A worker count: available parallelism capped at `cap`, at least 1.
pub fn suggested_threads(cap: usize) -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(cap).max(1)
}

/// Maps `f` over `items` using up to `threads` scoped worker threads,
/// returning results in input order.
///
/// Items are split into contiguous chunks, one per worker, so `f` should
/// be roughly uniform in cost. With `threads <= 1` or a single-element
/// input this degrades to a plain serial map with no thread spawns.
/// A panic in any worker is resumed on the caller's thread.
pub fn map_chunked<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let chunk_len = items.len().div_ceil(threads);
    let mut results: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(chunk_results) => results.push(chunk_results),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
    });
    results.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..103).collect();
        let out = map_chunked(&items, 4, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn handles_degenerate_shapes() {
        assert_eq!(map_chunked::<u32, u32>(&[], 4, |&x| x), Vec::<u32>::new());
        assert_eq!(map_chunked(&[7], 4, |&x| x + 1), vec![8]);
        assert_eq!(map_chunked(&[1, 2, 3], 1, |&x| x), vec![1, 2, 3]);
        // More threads than items must not spawn empty-chunk workers.
        assert_eq!(map_chunked(&[1, 2], 16, |&x| x), vec![1, 2]);
    }

    #[test]
    fn actually_uses_multiple_threads() {
        let seen = Mutex::new(HashSet::new());
        let items: Vec<u32> = (0..64).collect();
        map_chunked(&items, 4, |_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(seen.lock().unwrap().len() > 1, "expected work on >1 thread");
    }

    #[test]
    fn worker_panic_propagates() {
        let result = panic::catch_unwind(|| {
            map_chunked(&[1, 2, 3, 4], 2, |&x| {
                assert_ne!(x, 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn suggested_threads_is_capped_and_positive() {
        assert!(suggested_threads(8) >= 1);
        assert!(suggested_threads(8) <= 8);
        assert_eq!(suggested_threads(1), 1);
    }
}
