//! Zero-dependency observability: hierarchical spans, named counters,
//! gauges, fixed-bucket histograms, rolling-window histograms and an
//! event ring buffer behind a single `PATCHDB_TRACE` toggle.
//!
//! The registry is process-global and disabled by default; every probe
//! site guards itself with [`enabled`], a relaxed atomic load, so the
//! off path costs one predictable branch. Hot loops should go further
//! and monomorphize their probes away entirely (see the `Probe` trait in
//! `patchdb-nls`), keeping the disabled machine code identical to the
//! uninstrumented loop.
//!
//! Three introspection subsystems build on the registry (see DESIGN.md
//! §8 for the full architecture):
//!
//! * [`flight`] — an always-available, fixed-memory, per-thread event
//!   journal (span enter/exit, counter deltas, loop ticks, queue
//!   transitions) with a merged chronological drain and a panic-hook
//!   dump: the postmortem "black box".
//! * [`sampler`] — a span-path sampling profiler: threads mirror their
//!   open span path into seqlock slots, a sampler thread aggregates
//!   path → sample-count, rendered as folded stacks for `flamegraph.pl`.
//! * [`export`] — renders span trees and flight journals as Chrome
//!   trace-event JSON for `chrome://tracing` / Perfetto.
//!
//! Two families of metrics coexist:
//!
//! * **Cumulative-since-start** — [`counter_add`], [`hist_record`]: the
//!   build-report view, exported to `TRACE_build.json`.
//! * **Live** — [`gauge_set`]/[`gauge_add`] point-in-time values and
//!   [`window_record`] rolling-window histograms (a ring of per-second
//!   [`Hist`] slots, see [`window::WindowHist`]), the serve-path view: a
//!   scrape reads the *current* inflight count and the p99 of the last
//!   1 s/10 s/60 s instead of an average since boot. [`metrics_snapshot`]
//!   captures all metric families without cloning the span tree — the
//!   `/metrics` exporter's cheap path. [`ring::EventRing`] carries
//!   structured per-request records with overwrite-oldest semantics.
//!
//! ## Determinism contract
//!
//! Metrics observe the computation; they never steer it. Counter and
//! histogram updates are commutative (saturating addition), so the final
//! registry values are independent of thread interleaving; span *names
//! and nesting* are deterministic while span durations are wall time and
//! are the only nondeterministic values in a [`TraceReport`]. Nothing in
//! this module feeds back into output bytes — `tests/determinism.rs`
//! pins a traced and an untraced build byte-identical.
//!
//! Parallel sites that want deterministic *merge order* accumulate into
//! a per-worker [`Shard`] and combine shards in spawn order (mirroring
//! `par::fold_chunked`) before a single [`Shard::flush`] into the
//! registry.
//!
//! ```rust
//! use patchdb_rt::obs;
//!
//! obs::set_enabled(true);
//! obs::reset();
//! {
//!     let _outer = obs::span("build");
//!     let _inner = obs::span("mine");
//!     obs::counter_add("records", 3);
//!     obs::hist_record("batch_len", 17);
//! }
//! let report = obs::report();
//! assert_eq!(report.counter("records"), Some(3));
//! assert_eq!(report.spans[0].name, "build");
//! assert_eq!(report.spans[0].children[0].name, "mine");
//! obs::set_enabled(false);
//! ```

pub mod export;
pub mod flight;
pub mod ring;
pub mod sampler;
pub mod tsdb;
pub mod window;

pub use ring::EventRing;
pub use window::WindowHist;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `k` holds
/// values in `[2^(k-1), 2^k)`, and the last bucket absorbs everything
/// from `2^(HIST_BUCKETS-2)` up. Sized so nanosecond-scale latencies
/// (up to `2^38` ns ≈ 4.6 min) still resolve into distinct buckets
/// instead of saturating the last one.
pub const HIST_BUCKETS: usize = 40;

/// The lookback windows (seconds) that [`MetricsSnapshot::to_metrics_text`]
/// reports for every rolling-window histogram.
pub const METRIC_WINDOWS_S: [u64; 3] = [1, 10, 60];

/// Number of one-second slots a registry-level rolling window keeps —
/// enough to answer every window in [`METRIC_WINDOWS_S`].
pub const WINDOW_SLOTS: usize = 64;

// 0 = uninitialized (consult PATCHDB_TRACE), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether tracing is on. One relaxed atomic load on the fast path; the
/// first call consults the `PATCHDB_TRACE` environment variable (`"1"`
/// or any value other than empty/`"0"` enables it).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PATCHDB_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatic override of the `PATCHDB_TRACE` toggle (CLI flags,
/// benches, tests). Takes effect for probes that run after the store.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

struct SpanNode {
    name: String,
    children: Vec<usize>,
    ns: u64,
}

#[derive(Default)]
struct Registry {
    /// Bumped by [`reset`]; guards and stack entries from an older
    /// generation become inert instead of writing into recycled slots.
    generation: u64,
    spans: Vec<SpanNode>,
    roots: Vec<usize>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
    gauges: BTreeMap<String, i64>,
    windows: BTreeMap<String, WindowHist>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

thread_local! {
    /// Open spans on this thread as `(generation, span index)`.
    static SPAN_STACK: RefCell<Vec<(u64, usize)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; records the span's duration when
/// dropped. A no-op when tracing was off at creation time.
#[must_use = "a span measures nothing unless the guard lives to the end of the scope"]
pub struct SpanGuard {
    active: Option<(u64, usize, Instant)>,
    /// The span name, kept only when the flight recorder was on at
    /// creation so the exit event can carry it.
    flight_name: Option<String>,
    /// Whether this span pushed a frame into the sampler mirror (and so
    /// must pop one on drop).
    mirrored: bool,
}

/// Opens a span named `name`, nested under the innermost span already
/// open *on this thread* (spans opened on worker threads with an empty
/// stack become roots). Returns a guard that records the elapsed
/// monotonic time when dropped.
///
/// When the [`flight`] recorder is on, enter/exit land in the thread's
/// journal; when [`sampler`] mirroring is on, the span appears in
/// sampled profiles.
pub fn span(name: impl Into<String>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: None, flight_name: None, mirrored: false };
    }
    let name = name.into();
    let flight_name = if flight::enabled() {
        flight::record_dyn(flight::FlightKind::SpanEnter, &name, 0);
        Some(name.clone())
    } else {
        None
    };
    let mirrored = sampler::push_frame(&name);
    let idx;
    let generation;
    {
        let mut reg = registry().lock().unwrap();
        generation = reg.generation;
        let parent = SPAN_STACK.with(|s| {
            s.borrow().iter().rev().find(|&&(g, _)| g == generation).map(|&(_, i)| i)
        });
        idx = reg.spans.len();
        reg.spans.push(SpanNode { name, children: Vec::new(), ns: 0 });
        match parent {
            Some(p) => reg.spans[p].children.push(idx),
            None => reg.roots.push(idx),
        }
    }
    SPAN_STACK.with(|s| s.borrow_mut().push((generation, idx)));
    SpanGuard { active: Some((generation, idx, Instant::now())), flight_name, mirrored }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((generation, idx, start)) = self.active.take() else { return };
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(name) = self.flight_name.take() {
            flight::record_dyn(flight::FlightKind::SpanExit, &name, ns);
        }
        if self.mirrored {
            sampler::pop_frame();
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&e| e == (generation, idx)) {
                stack.remove(pos);
            }
        });
        let mut reg = registry().lock().unwrap();
        if reg.generation == generation {
            if let Some(node) = reg.spans.get_mut(idx) {
                node.ns = ns;
            }
        }
    }
}

/// Adds `delta` to the named counter (creating it at zero). A no-op
/// when tracing is off. Saturating, commutative — the final value is
/// independent of the order concurrent adds land in.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    {
        let mut reg = registry().lock().unwrap();
        let slot = reg.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }
    // Counter deltas are part of the black-box timeline: the flight
    // journal records them after the registry lock is released.
    flight::record_dyn(flight::FlightKind::Counter, name, delta);
}

/// [`counter_add`] without the flight-journal echo: for counters bumped
/// on every iteration of a hot serialized loop (the serve event loop's
/// wakeup-cause tallies), where one journal entry per bump would both
/// crowd the 2048-event ring out of useful history and put allocation
/// plus a sequence-stamp on the loop's critical path. The loop's
/// `tick` flight events carry the per-iteration story instead.
pub fn counter_add_quiet(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    let slot = reg.counters.entry(name.to_owned()).or_insert(0);
    *slot = slot.saturating_add(delta);
}

/// Current value of a counter, `0` when it does not exist. Reads work
/// even while tracing is off (the registry outlives toggles).
pub fn counter_value(name: &str) -> u64 {
    registry().lock().unwrap().counters.get(name).copied().unwrap_or(0)
}

/// Records one value into the named histogram. A no-op when tracing is
/// off.
pub fn hist_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    registry().lock().unwrap().hists.entry(name.to_owned()).or_default().record(value);
}

/// Merges a locally accumulated histogram into the named registry
/// histogram. A no-op when tracing is off.
pub fn hist_merge(name: &str, h: &Hist) {
    if !enabled() || h.count == 0 {
        return;
    }
    registry().lock().unwrap().hists.entry(name.to_owned()).or_default().merge(h);
}

/// Sets the named gauge to an absolute value. A no-op when tracing is
/// off. Unlike counters, gauges go up *and* down — they carry
/// point-in-time state (inflight requests, queue depth), not totals.
pub fn gauge_set(name: &str, value: i64) {
    if !enabled() {
        return;
    }
    registry().lock().unwrap().gauges.insert(name.to_owned(), value);
}

/// Adds `delta` (possibly negative) to the named gauge, creating it at
/// zero. Saturating and commutative, so paired `+1`/`-1` calls from any
/// interleaving of threads leave the gauge balanced. A no-op when
/// tracing is off.
pub fn gauge_add(name: &str, delta: i64) {
    if !enabled() {
        return;
    }
    let mut reg = registry().lock().unwrap();
    let slot = reg.gauges.entry(name.to_owned()).or_insert(0);
    *slot = slot.saturating_add(delta);
}

/// Current value of a gauge, `0` when it does not exist. Reads work
/// even while tracing is off.
pub fn gauge_value(name: &str) -> i64 {
    registry().lock().unwrap().gauges.get(name).copied().unwrap_or(0)
}

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whole seconds elapsed on the monotonic clock since the first metrics
/// operation of the process — the time base every registry-level
/// rolling window records against.
pub fn process_second() -> u64 {
    process_epoch().elapsed().as_secs()
}

/// Microseconds elapsed on the same monotonic epoch as
/// [`process_second`] — the time base of [`flight`] journal timestamps
/// and trace-event exports.
pub fn process_micros() -> u64 {
    process_epoch().elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Records one value into the named rolling-window histogram (a ring of
/// [`WINDOW_SLOTS`] per-second [`Hist`] slots) at the current
/// [`process_second`]. A no-op when tracing is off.
pub fn window_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    let second = process_second();
    registry()
        .lock()
        .unwrap()
        .windows
        .entry(name.to_owned())
        .or_insert_with(|| WindowHist::new(WINDOW_SLOTS))
        .record_at(second, value);
}

/// Clears every span, counter, gauge, histogram and rolling window
/// (plus the [`tsdb`] series sampled from them), and invalidates
/// outstanding [`SpanGuard`]s (they become inert rather than writing
/// into recycled slots).
pub fn reset() {
    let mut reg = registry().lock().unwrap();
    reg.generation += 1;
    reg.spans.clear();
    reg.roots.clear();
    reg.counters.clear();
    reg.hists.clear();
    reg.gauges.clear();
    reg.windows.clear();
    drop(reg);
    tsdb::reset();
}

/// A fixed-bucket log2 histogram: `count`/`sum`/`max` plus
/// [`HIST_BUCKETS`] power-of-two buckets. All updates saturate, so
/// merging shards in any order yields the same totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl Hist {
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The bucket array; bucket 0 holds zeros, bucket `k` values in
    /// `[2^(k-1), 2^k)`.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) from the bucket counts,
    /// linearly interpolated *within* the bucket where the cumulative
    /// count crosses `ceil(q * count)` and capped at the recorded
    /// maximum. Observations inside a bucket are assumed uniformly
    /// spread over its value range `[2^(k-1), 2^k)`, so a distribution
    /// that lands entirely in one bucket still reports a `p50` below
    /// its `p99` instead of collapsing both onto the bucket edge.
    ///
    /// The log2 bucketing still bounds the error at one octave — the
    /// interpolated value never leaves the crossing bucket — which is
    /// plenty for latency reporting (`p50`/`p99` on `/metrics` and in
    /// `BENCH_serve.json`). Returns `0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut before = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n > 0 && before.saturating_add(n) >= target {
                // Bucket 0 holds exact zeros; bucket k holds [2^(k-1), 2^k).
                let (lower, upper) = if k == 0 {
                    (0u64, 0u64)
                } else {
                    (1u64 << (k - 1), (1u64 << k).saturating_sub(1))
                };
                let frac = (target - before) as f64 / n as f64;
                let value = lower + (frac * (upper - lower) as f64).round() as u64;
                return value.min(self.max);
            }
            before = before.saturating_add(n);
        }
        self.max
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            ("max".into(), Json::Num(self.max as f64)),
            (
                "buckets".into(),
                Json::Arr(self.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
            ),
        ])
    }
}

/// A thread-local accumulator for counters and histograms: workers fill
/// one shard each, the caller merges shards **in spawn order** (exactly
/// like `par::fold_chunked` combines chunk accumulators) and flushes the
/// merged shard into the registry once. Because every operation is a
/// saturating add, the merged totals equal the single-threaded totals —
/// the property test in `crates/patchdb-rt/tests/obs.rs` pins this
/// across thread counts.
#[derive(Debug, Default, Clone)]
pub struct Shard {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
}

impl Shard {
    /// An empty shard.
    pub fn new() -> Shard {
        Shard::default()
    }

    /// Adds `delta` to the shard-local counter.
    pub fn add(&mut self, name: &str, delta: u64) {
        let slot = self.counters.entry(name.to_owned()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Records one observation into the shard-local histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.hists.entry(name.to_owned()).or_default().record(value);
    }

    /// Shard-local counter value (`0` when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Shard) {
        for (name, delta) in &other.counters {
            self.add(name, *delta);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(h);
        }
    }

    /// Adds every shard-local counter and histogram to the global
    /// registry (a no-op when tracing is off).
    pub fn flush(&self) {
        if !enabled() {
            return;
        }
        let mut reg = registry().lock().unwrap();
        for (name, delta) in &self.counters {
            let slot = reg.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*delta);
        }
        for (name, h) in &self.hists {
            reg.hists.entry(name.clone()).or_default().merge(h);
        }
    }
}

/// One span in a [`TraceReport`]: name, elapsed nanoseconds, nested
/// children in creation order. Spans still open at snapshot time report
/// `ns == 0`.
#[derive(Debug, Clone)]
pub struct SpanReport {
    /// The name passed to [`span`].
    pub name: String,
    /// Elapsed monotonic nanoseconds (duration only — never a
    /// timestamp-of-day).
    pub ns: u64,
    /// Child spans, in creation order.
    pub children: Vec<SpanReport>,
}

impl SpanReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("ns".into(), Json::Num(self.ns as f64)),
            (
                "children".into(),
                Json::Arr(self.children.iter().map(SpanReport::to_json).collect()),
            ),
        ])
    }
}

/// A snapshot of the registry: the span forest plus all counters and
/// histograms, sorted by name. Serialization via [`TraceReport::to_json`]
/// has stable key order and carries durations only.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Root spans in creation order.
    pub spans: Vec<SpanReport>,
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, Hist)>,
}

impl TraceReport {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Depth-first search for the first span named `name`.
    pub fn find_span(&self, name: &str) -> Option<&SpanReport> {
        fn dfs<'a>(spans: &'a [SpanReport], name: &str) -> Option<&'a SpanReport> {
            for s in spans {
                if s.name == name {
                    return Some(s);
                }
                if let Some(hit) = dfs(&s.children, name) {
                    return Some(hit);
                }
            }
            None
        }
        dfs(&self.spans, name)
    }

    /// Renders counters and histograms as a plain-text metrics exposition
    /// (one metric per line, names ascending — the `GET /metrics` format
    /// of `patchdb-serve`):
    ///
    /// ```text
    /// patchdb_counter{name="serve.identify.requests"} 12
    /// patchdb_hist_count{name="serve.identify.ns"} 12
    /// patchdb_hist_sum{name="serve.identify.ns"} 84213
    /// patchdb_hist_max{name="serve.identify.ns"} 16383
    /// patchdb_hist_p50{name="serve.identify.ns"} 4095
    /// patchdb_hist_p99{name="serve.identify.ns"} 16383
    /// ```
    ///
    /// Spans are omitted: they describe one bounded computation, not a
    /// long-running process, and `TRACE_build.json` already carries them.
    pub fn to_metrics_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("patchdb_counter{{name=\"{name}\"}} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("patchdb_hist_count{{name=\"{name}\"}} {}\n", h.count()));
            out.push_str(&format!("patchdb_hist_sum{{name=\"{name}\"}} {}\n", h.sum()));
            out.push_str(&format!("patchdb_hist_max{{name=\"{name}\"}} {}\n", h.max()));
            out.push_str(&format!(
                "patchdb_hist_p50{{name=\"{name}\"}} {}\n",
                h.quantile(0.50)
            ));
            out.push_str(&format!(
                "patchdb_hist_p99{{name=\"{name}\"}} {}\n",
                h.quantile(0.99)
            ));
        }
        out
    }

    /// Serializes as `{"spans": [...], "counters": {...},
    /// "histograms": {...}}` with deterministic key order (spans in
    /// creation order, metric names ascending).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "spans".into(),
                Json::Arr(self.spans.iter().map(SpanReport::to_json).collect()),
            ),
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Obj(self.histograms.iter().map(|(n, h)| (n.clone(), h.to_json())).collect()),
            ),
        ])
    }
}

/// A spans-free snapshot of every metric family: counters, gauges,
/// cumulative histograms, and rolling-window histograms (cloned with the
/// [`process_second`] they were captured at, so windowed quantiles are
/// evaluated against a consistent "now").
///
/// This is the `/metrics` exporter's path: unlike [`report`], taking a
/// [`MetricsSnapshot`] never walks or clones the span tree, so a scrape
/// holds the registry mutex only for four map clones.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// The [`process_second`] the snapshot was taken at.
    pub at_second: u64,
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// Cumulative `(name, histogram)` pairs, ascending by name.
    pub histograms: Vec<(String, Hist)>,
    /// Rolling-window `(name, histogram)` pairs, ascending by name.
    pub windows: Vec<(String, WindowHist)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Renders every metric family as a plain-text exposition — the
    /// `GET /metrics` format of `patchdb-serve`. Section headers are
    /// comment lines; metric lines keep the `patchdb_*{name="..."}`
    /// shape of [`TraceReport::to_metrics_text`] so existing scrapers
    /// keep parsing, with gauges and windowed quantiles added:
    ///
    /// ```text
    /// # counters (cumulative since start)
    /// patchdb_counter{name="serve.accepted"} 12
    /// # gauges (live values)
    /// patchdb_gauge{name="serve.inflight"} 3
    /// # histograms (cumulative since start)
    /// patchdb_hist_count{name="serve.identify.ns"} 12
    /// ...
    /// # windowed (trailing 1s/10s/60s)
    /// patchdb_window_count{name="serve.request.total_ns",window_s="10"} 9
    /// patchdb_window_rate{name="serve.request.total_ns",window_s="10"} 0.900
    /// patchdb_window_p50{name="serve.request.total_ns",window_s="10"} 524287
    /// patchdb_window_p90{name="serve.request.total_ns",window_s="10"} 1048575
    /// patchdb_window_p99{name="serve.request.total_ns",window_s="10"} 2097151
    /// ```
    pub fn to_metrics_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# counters (cumulative since start)\n");
        for (name, value) in &self.counters {
            out.push_str(&format!("patchdb_counter{{name=\"{name}\"}} {value}\n"));
        }
        out.push_str("# gauges (live values)\n");
        for (name, value) in &self.gauges {
            out.push_str(&format!("patchdb_gauge{{name=\"{name}\"}} {value}\n"));
        }
        out.push_str("# histograms (cumulative since start)\n");
        for (name, h) in &self.histograms {
            out.push_str(&format!("patchdb_hist_count{{name=\"{name}\"}} {}\n", h.count()));
            out.push_str(&format!("patchdb_hist_sum{{name=\"{name}\"}} {}\n", h.sum()));
            out.push_str(&format!("patchdb_hist_max{{name=\"{name}\"}} {}\n", h.max()));
            out.push_str(&format!("patchdb_hist_p50{{name=\"{name}\"}} {}\n", h.quantile(0.50)));
            out.push_str(&format!("patchdb_hist_p99{{name=\"{name}\"}} {}\n", h.quantile(0.99)));
        }
        out.push_str(&format!(
            "# windowed (trailing {}, evaluated at second {})\n",
            METRIC_WINDOWS_S.map(|w| format!("{w}s")).join("/"),
            self.at_second
        ));
        for (name, wh) in &self.windows {
            for window_s in METRIC_WINDOWS_S {
                let h = wh.merged(self.at_second, window_s);
                let tag = format!("{{name=\"{name}\",window_s=\"{window_s}\"}}");
                out.push_str(&format!("patchdb_window_count{tag} {}\n", h.count()));
                out.push_str(&format!(
                    "patchdb_window_rate{tag} {:.3}\n",
                    h.count() as f64 / window_s as f64
                ));
                out.push_str(&format!("patchdb_window_p50{tag} {}\n", h.quantile(0.50)));
                out.push_str(&format!("patchdb_window_p90{tag} {}\n", h.quantile(0.90)));
                out.push_str(&format!("patchdb_window_p99{tag} {}\n", h.quantile(0.99)));
            }
        }
        out
    }
}

/// Snapshots counters, gauges, histograms and rolling windows into a
/// [`MetricsSnapshot`] **without touching the span tree** — the cheap
/// path a metrics scrape should take. Does not clear the registry.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let at_second = process_second();
    let reg = registry().lock().unwrap();
    MetricsSnapshot {
        at_second,
        counters: reg.counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
        gauges: reg.gauges.iter().map(|(n, &v)| (n.clone(), v)).collect(),
        histograms: reg.hists.iter().map(|(n, &h)| (n.clone(), h)).collect(),
        windows: reg.windows.iter().map(|(n, w)| (n.clone(), w.clone())).collect(),
    }
}

/// Snapshots the registry into a [`TraceReport`]. Does not clear it —
/// pair with [`reset`] to scope a measurement.
pub fn report() -> TraceReport {
    let reg = registry().lock().unwrap();
    fn build(reg: &Registry, idx: usize) -> SpanReport {
        let node = &reg.spans[idx];
        SpanReport {
            name: node.name.clone(),
            ns: node.ns,
            children: node.children.iter().map(|&c| build(reg, c)).collect(),
        }
    }
    TraceReport {
        spans: reg.roots.iter().map(|&r| build(&reg, r)).collect(),
        counters: reg.counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
        histograms: reg.hists.iter().map(|(n, &h)| (n.clone(), h)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Serializes tests that toggle the global registry/state.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_are_inert() {
        let _g = guard();
        set_enabled(false);
        reset();
        {
            let _s = span("ghost");
            counter_add("ghost", 5);
            hist_record("ghost", 1);
        }
        set_enabled(true);
        let r = report();
        set_enabled(false);
        assert!(r.spans.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.histograms.is_empty());
    }

    #[test]
    fn spans_nest_by_thread_stack() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _a = span("a");
            {
                let _b = span("b");
                let _c = span("c");
            }
            let _d = span("d");
        }
        let r = report();
        set_enabled(false);
        assert_eq!(r.spans.len(), 1);
        let a = &r.spans[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.children.len(), 2);
        assert_eq!(a.children[0].name, "b");
        assert_eq!(a.children[0].children.len(), 1);
        assert_eq!(a.children[0].children[0].name, "c");
        assert_eq!(a.children[1].name, "d");
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter_add("x", 2);
        counter_add("x", 3);
        hist_record("h", 0);
        hist_record("h", 1);
        hist_record("h", 100);
        let r = report();
        set_enabled(false);
        assert_eq!(r.counter("x"), Some(5));
        let (_, h) = &r.histograms[0];
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 101);
        assert_eq!(h.max(), 100);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // the one
        assert_eq!(h.buckets()[7], 1); // 100 in [64, 128)
    }

    #[test]
    fn reset_invalidates_outstanding_guards() {
        let _g = guard();
        set_enabled(true);
        reset();
        let s = span("stale");
        reset();
        let _fresh = span("fresh");
        drop(s); // must not corrupt the fresh registry
        let r = report();
        set_enabled(false);
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].name, "fresh");
    }

    #[test]
    fn worker_thread_spans_become_roots() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _main = span("main");
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _w = span("worker");
                });
            });
        }
        let r = report();
        set_enabled(false);
        let names: Vec<&str> = r.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"main"));
        assert!(names.contains(&"worker"));
        assert!(r.find_span("worker").is_some());
    }

    #[test]
    fn shard_merge_equals_direct_adds() {
        let mut a = Shard::new();
        let mut b = Shard::new();
        a.add("c", 3);
        b.add("c", 4);
        a.record("h", 8);
        b.record("h", 9);
        let mut merged = Shard::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.counter("c"), 7);
        let mut direct = Shard::new();
        direct.add("c", 3);
        direct.add("c", 4);
        direct.record("h", 8);
        direct.record("h", 9);
        assert_eq!(merged.counter("c"), direct.counter("c"));
        assert_eq!(merged.hists, direct.hists);
    }

    #[test]
    fn quantiles_track_bucket_edges() {
        let mut h = Hist::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for v in [0, 0, 1, 2, 3, 100] {
            h.record(v);
        }
        // Cumulative: bucket0=2 (zeros), bucket1=1 (the 1), bucket2=2
        // (2 and 3), bucket7=1 (100). p50 target is the 3rd observation.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(0.75), 3); // bucket 2 upper edge, capped by nothing
        assert_eq!(h.quantile(1.0), 100); // last bucket caps at the true max
        // A single-value histogram reports that value at every quantile.
        let mut one = Hist::default();
        one.record(1000);
        assert_eq!(one.quantile(0.5), 1000);
        assert_eq!(one.quantile(0.99), 1000);
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // A whole distribution inside one log2 bucket must not collapse
        // p50 and p99 onto the same edge (the degenerate
        // `server_p50_ns == server_p99_ns` rows in early BENCH_serve.json).
        let mut h = Hist::default();
        for i in 0..1_000u64 {
            h.record(2_100_000 + i * 2_000); // all in bucket 22: [2097152, 4194303)
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99, "p50={p50} p99={p99}");
        // Both stay inside the crossing bucket and at or below the true max.
        assert!((2_097_152..=4_098_000).contains(&p50));
        assert!((2_097_152..=4_098_000).contains(&p99));
        // Identical samples still collapse onto the exact value (max cap).
        let mut same = Hist::default();
        for _ in 0..100 {
            same.record(3_000_000);
        }
        assert_eq!(same.quantile(0.5), 3_000_000);
        assert_eq!(same.quantile(0.99), 3_000_000);
        // Monotone in q even across buckets.
        let mut m = Hist::default();
        for v in 1..=512u64 {
            m.record(v);
        }
        let mut last = 0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = m.quantile(q);
            assert!(v >= last, "quantile must be monotone in q: {v} < {last}");
            last = v;
        }
        assert_eq!(m.quantile(1.0), 512);
    }

    #[test]
    fn metrics_text_lists_counters_and_quantiles() {
        let _g = guard();
        set_enabled(true);
        reset();
        counter_add("serve.requests", 3);
        for v in [10, 20, 30] {
            hist_record("serve.ns", v);
        }
        let r = report();
        set_enabled(false);
        let text = r.to_metrics_text();
        assert!(text.contains("patchdb_counter{name=\"serve.requests\"} 3"), "{text}");
        assert!(text.contains("patchdb_hist_count{name=\"serve.ns\"} 3"), "{text}");
        assert!(text.contains("patchdb_hist_sum{name=\"serve.ns\"} 60"), "{text}");
        assert!(text.contains("patchdb_hist_max{name=\"serve.ns\"} 30"), "{text}");
        assert!(text.contains("patchdb_hist_p99{name=\"serve.ns\"}"), "{text}");
        // One line per metric, nothing else.
        assert!(text.lines().all(|l| l.starts_with("patchdb_")), "{text}");
    }

    #[test]
    fn gauges_set_add_and_read_back() {
        let _g = guard();
        set_enabled(true);
        reset();
        gauge_set("g.depth", 7);
        gauge_add("g.depth", -3);
        gauge_add("g.inflight", 2);
        assert_eq!(gauge_value("g.depth"), 4);
        assert_eq!(gauge_value("g.inflight"), 2);
        assert_eq!(gauge_value("g.absent"), 0);
        set_enabled(false);
        gauge_add("g.depth", 100); // off: inert
        assert_eq!(gauge_value("g.depth"), 4);
    }

    #[test]
    fn snapshot_skips_spans_and_carries_every_family() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _s = span("not-in-snapshot");
            counter_add("s.count", 3);
            gauge_set("s.gauge", -2);
            hist_record("s.hist", 9);
            window_record("s.window", 9);
        }
        let snap = metrics_snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("s.count"), Some(3));
        assert_eq!(snap.gauge("s.gauge"), Some(-2));
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.windows.len(), 1);
        let (_, w) = &snap.windows[0];
        assert_eq!(w.count(snap.at_second, 60), 1);

        let text = snap.to_metrics_text();
        assert!(text.contains("# gauges"), "{text}");
        assert!(text.contains("patchdb_gauge{name=\"s.gauge\"} -2"), "{text}");
        assert!(text.contains("patchdb_counter{name=\"s.count\"} 3"), "{text}");
        assert!(
            text.contains("patchdb_window_count{name=\"s.window\",window_s=\"60\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("patchdb_window_p99{name=\"s.window\",window_s=\"60\"}"),
            "{text}"
        );
        assert!(
            text.lines().all(|l| l.starts_with("patchdb_") || l.starts_with('#')),
            "{text}"
        );
    }

    #[test]
    fn report_json_has_stable_shape() {
        let _g = guard();
        set_enabled(true);
        reset();
        {
            let _s = span("root");
            counter_add("b", 1);
            counter_add("a", 2);
            hist_record("h", 4);
        }
        let r = report();
        set_enabled(false);
        let json = r.to_json();
        let text = json.to_compact_string();
        // Counters serialize name-ascending regardless of insertion.
        let a_pos = text.find("\"a\"").unwrap();
        let b_pos = text.find("\"b\"").unwrap();
        assert!(a_pos < b_pos, "counters not sorted in {text}");
        let parsed = Json::parse(&text).unwrap();
        assert!(parsed.get("spans").is_some());
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("histograms").is_some());
    }
}
