//! Exporters that render observability data as Chrome trace-event JSON
//! — the `{"traceEvents": [...]}` format `chrome://tracing` and
//! Perfetto open directly.
//!
//! Two sources, one target:
//!
//! * **Flight journals** ([`flight_to_chrome`]) carry real timestamps
//!   and thread ids, so span enter/exit events become `ph:"B"`/`"E"`
//!   duration pairs on their real thread tracks, and counter/tick/queue
//!   events become `ph:"C"` counter tracks. Because each per-thread
//!   ring overwrites its oldest entries independently, the exporter
//!   *sanitizes* the stream per tid: an exit whose enter was
//!   overwritten is dropped, and an enter still open at the end of the
//!   window is closed at the last timestamp — so B/E events always
//!   balance and nest, which the `check_bench_json` trace-event arm
//!   enforces.
//! * **Span trees** ([`trace_report_to_chrome`]) carry durations only
//!   (a [`super::TraceReport`] deliberately holds no wall-clock
//!   timestamps), so the exporter synthesizes a timeline: roots are
//!   laid end to end and children packed sequentially from their
//!   parent's start, on the reserved track [`SPAN_TREE_TID`]. Shapes
//!   and relative widths are faithful; absolute positions are not
//!   wall-clock.
//!
//! [`merged_chrome`] joins both into one document — `patchdb trace
//! --perfetto` emits it after a traced build.

use super::flight::{FlightKind, FlightSnapshot};
use super::{SpanReport, TraceReport};
use crate::json::Json;

/// The `tid` synthesized span-tree tracks render on — far above any id
/// the flight recorder assigns, so the two sources never interleave on
/// one track.
pub const SPAN_TREE_TID: u64 = 1_000_000;

fn event(
    ph: &str,
    name: &str,
    ts_us: f64,
    tid: u64,
    args: Option<(String, Json)>,
) -> Json {
    let mut fields = vec![
        ("name".to_owned(), Json::Str(name.to_owned())),
        ("ph".to_owned(), Json::Str(ph.to_owned())),
        ("ts".to_owned(), Json::Num(ts_us)),
        ("pid".to_owned(), Json::Num(f64::from(std::process::id()))),
        ("tid".to_owned(), Json::Num(tid as f64)),
    ];
    if let Some((key, value)) = args {
        fields.push(("args".to_owned(), Json::Obj(vec![(key, value)])));
    }
    Json::Obj(fields)
}

/// Wraps rendered events in the trace-event document shape.
pub fn chrome_document(events: Vec<Json>) -> Json {
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ms".into())),
    ])
}

/// Renders a merged flight snapshot as trace events. Span enter/exit
/// pairs become `B`/`E` on the recording thread's track; counter, tick
/// and queue events become `C` counter samples. See the module docs for
/// the per-tid sanitization that keeps `B`/`E` balanced under ring
/// overwrite.
pub fn flight_to_events(snap: &FlightSnapshot) -> Vec<Json> {
    use std::collections::BTreeMap;
    let mut events = Vec::with_capacity(snap.events.len());
    // Open-span stacks per tid, for balance under ring overwrite.
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    for e in &snap.events {
        let ts = e.ts_us as f64;
        last_ts.insert(e.tid, ts);
        match e.kind {
            FlightKind::SpanEnter => {
                open.entry(e.tid).or_default().push(e.name.to_string());
                events.push(event("B", &e.name, ts, e.tid, None));
            }
            FlightKind::SpanExit => {
                // Only close what this window saw open: an exit whose
                // enter was overwritten (or never recorded) is dropped.
                let stack = open.entry(e.tid).or_default();
                if stack.last().map(String::as_str) == Some(e.name.as_ref()) {
                    stack.pop();
                    events.push(event("E", &e.name, ts, e.tid, None));
                }
            }
            FlightKind::Counter | FlightKind::Tick | FlightKind::Queue
            | FlightKind::Mark => {
                events.push(event(
                    "C",
                    &e.name,
                    ts,
                    e.tid,
                    Some(("value".to_owned(), Json::Num(e.value as f64))),
                ));
            }
        }
    }
    // Close anything still open at the end of the window, innermost
    // first, at the thread's last seen timestamp.
    for (tid, stack) in open {
        let ts = last_ts.get(&tid).copied().unwrap_or(0.0);
        for name in stack.into_iter().rev() {
            events.push(event("E", &name, ts, tid, None));
        }
    }
    events
}

/// [`flight_to_events`] wrapped as a full trace-event document.
pub fn flight_to_chrome(snap: &FlightSnapshot) -> Json {
    chrome_document(flight_to_events(snap))
}

/// Emits one span and its children as nested `B`/`E` pairs starting at
/// `start_us`; returns the span's synthesized end.
fn emit_span(span: &SpanReport, start_us: f64, events: &mut Vec<Json>) -> f64 {
    events.push(event("B", &span.name, start_us, SPAN_TREE_TID, None));
    let mut cursor = start_us;
    for child in &span.children {
        cursor = emit_span(child, cursor, events);
    }
    // A parent's recorded time can exceed its children's sum (self
    // time); a parent still open at snapshot time reports ns == 0, so
    // its children's extent is the only width it has.
    let end = (start_us + span.ns as f64 / 1_000.0).max(cursor);
    events.push(event("E", &span.name, end, SPAN_TREE_TID, None));
    end
}

/// Renders a span forest as trace events on [`SPAN_TREE_TID`] with a
/// synthesized sequential timeline (see the module docs).
pub fn trace_report_to_events(report: &TraceReport) -> Vec<Json> {
    let mut events = Vec::new();
    let mut cursor = 0.0;
    for root in &report.spans {
        cursor = emit_span(root, cursor, &mut events);
    }
    events
}

/// [`trace_report_to_events`] wrapped as a full trace-event document.
pub fn trace_report_to_chrome(report: &TraceReport) -> Json {
    chrome_document(trace_report_to_events(report))
}

/// One document holding both sources: the flight journal on its real
/// thread tracks plus the span tree on [`SPAN_TREE_TID`].
pub fn merged_chrome(report: &TraceReport, snap: &FlightSnapshot) -> Json {
    let mut events = flight_to_events(snap);
    events.extend(trace_report_to_events(report));
    chrome_document(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::flight::FlightEvent;

    fn flight_event(
        seq: u64,
        ts_us: u64,
        tid: u64,
        kind: FlightKind,
        name: &str,
    ) -> FlightEvent {
        FlightEvent { seq, ts_us, tid, kind, name: name.to_owned().into(), value: 1 }
    }

    /// Walks the events of one tid asserting B/E balance, nesting, and
    /// non-decreasing ts; returns the number of B/E pairs seen.
    fn assert_balanced(events: &[Json], tid: u64) -> usize {
        let mut stack: Vec<String> = Vec::new();
        let mut pairs = 0;
        let mut last_ts = f64::MIN;
        for e in events {
            if e.get("tid").and_then(Json::as_f64) != Some(tid as f64) {
                continue;
            }
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            assert!(ts >= last_ts, "ts regressed on tid {tid}");
            last_ts = ts;
            let name = e.get("name").and_then(Json::as_str).unwrap().to_owned();
            match e.get("ph").and_then(Json::as_str).unwrap() {
                "B" => stack.push(name),
                "E" => {
                    assert_eq!(stack.pop().as_deref(), Some(name.as_str()), "bad nesting");
                    pairs += 1;
                }
                _ => {}
            }
        }
        assert!(stack.is_empty(), "unbalanced B on tid {tid}: {stack:?}");
        pairs
    }

    #[test]
    fn flight_spans_balance_even_when_the_enter_was_overwritten() {
        let snap = FlightSnapshot {
            events: vec![
                // tid 0: a well-formed pair, plus an orphan exit whose
                // enter the ring overwrote, plus an enter never closed.
                flight_event(0, 10, 0, FlightKind::SpanEnter, "a"),
                flight_event(1, 20, 0, FlightKind::SpanExit, "a"),
                flight_event(2, 30, 0, FlightKind::SpanExit, "lost"),
                flight_event(3, 40, 0, FlightKind::SpanEnter, "open"),
                // tid 1: counters only.
                flight_event(4, 15, 1, FlightKind::Counter, "c"),
                flight_event(5, 25, 1, FlightKind::Tick, "loop.tick"),
            ],
            dropped: 1,
            total: 7,
        };
        let doc = flight_to_chrome(&snap);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(assert_balanced(events, 0), 2, "pair `a` + synthesized close of `open`");
        assert_balanced(events, 1);
        let orphan = events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("lost")
        });
        assert!(!orphan, "orphan exit leaked into the export");
        let counters = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .count();
        assert_eq!(counters, 2);
    }

    #[test]
    fn span_tree_synthesizes_a_nested_sequential_timeline() {
        let report = TraceReport {
            spans: vec![SpanReport {
                name: "build".into(),
                ns: 10_000,
                children: vec![
                    SpanReport { name: "mine".into(), ns: 4_000, children: vec![] },
                    SpanReport { name: "augment".into(), ns: 3_000, children: vec![] },
                ],
            }],
            counters: vec![],
            histograms: vec![],
        };
        let doc = trace_report_to_chrome(&report);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(assert_balanced(events, SPAN_TREE_TID), 3);
        // Children pack sequentially: mine [0,4), augment [4,7), and the
        // parent's own 10us duration wins over the children's extent.
        let find = |name: &str, ph: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("name").and_then(Json::as_str) == Some(name)
                        && e.get("ph").and_then(Json::as_str) == Some(ph)
                })
                .and_then(|e| e.get("ts").and_then(Json::as_f64))
                .unwrap()
        };
        assert_eq!(find("mine", "B"), 0.0);
        assert_eq!(find("mine", "E"), 4.0);
        assert_eq!(find("augment", "B"), 4.0);
        assert_eq!(find("augment", "E"), 7.0);
        assert_eq!(find("build", "E"), 10.0);
    }

    #[test]
    fn open_parents_inherit_their_childrens_extent() {
        // A span still open at snapshot time has ns == 0; its E event
        // must not land before its children's.
        let report = TraceReport {
            spans: vec![SpanReport {
                name: "open".into(),
                ns: 0,
                children: vec![SpanReport {
                    name: "done".into(),
                    ns: 5_000,
                    children: vec![],
                }],
            }],
            counters: vec![],
            histograms: vec![],
        };
        let events = trace_report_to_events(&report);
        assert_balanced(&events, SPAN_TREE_TID);
    }

    #[test]
    fn merged_document_keeps_sources_on_disjoint_tracks() {
        let report = TraceReport {
            spans: vec![SpanReport { name: "b".into(), ns: 1_000, children: vec![] }],
            counters: vec![],
            histograms: vec![],
        };
        let snap = FlightSnapshot {
            events: vec![
                flight_event(0, 5, 3, FlightKind::SpanEnter, "s"),
                flight_event(1, 9, 3, FlightKind::SpanExit, "s"),
            ],
            dropped: 0,
            total: 2,
        };
        let doc = merged_chrome(&report, &snap);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_balanced(events, 3);
        assert_balanced(events, SPAN_TREE_TID);
        assert!(doc.get("displayTimeUnit").is_some());
    }
}
