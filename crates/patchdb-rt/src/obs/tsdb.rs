//! An embedded metrics time-series store: one fixed-memory ring of
//! per-second scalar samples behind each metric name.
//!
//! `/metrics` answers "what is the value now"; the rolling windows
//! answer "what happened over the last minute". Neither answers "what
//! did this counter look like over the last ten minutes" — the question
//! an operator asks when a burn-rate alert fires and they want the
//! shape of the regression, not its instantaneous value. The tsdb keeps
//! that history in bounded memory: each series is a ring of
//! `(second, value)` slots sized by a configurable retention, reclaimed
//! lazily on collision exactly like [`WindowHist`](super::WindowHist) —
//! rotation costs nothing when idle and one slot overwrite per second
//! under load. The store never allocates past
//! `series × retention × 16 bytes`, so a long-lived server's history
//! cost is fixed at boot.
//!
//! [`sample_registry`] is the bridge from the live registry: called
//! once per second (the serve event loop drives it off its tick), it
//! records every counter and gauge at its current value plus, for each
//! rolling window, the trailing-1 s rate and p99 — the series a latency
//! SLO wants to plot. Counters are sampled *cumulative*; consumers
//! difference adjacent points to recover per-second deltas, which keeps
//! the store stateless about what it sampled last.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Default per-series retention in seconds (10 minutes).
pub const DEFAULT_RETENTION_S: usize = 600;

/// Marks a ring slot that has never been written.
const VACANT: u64 = u64::MAX;

/// One fixed-capacity ring of per-second samples. Slot `second % len`
/// covers absolute second `second`; a newer second reclaims the slot it
/// collides with, an older one is dropped (it aged past the horizon).
#[derive(Debug, Clone)]
pub struct SeriesRing {
    slots: Vec<(u64, f64)>,
}

impl SeriesRing {
    /// A ring retaining `retention_s` one-second samples (clamped to at
    /// least 1).
    pub fn new(retention_s: usize) -> SeriesRing {
        SeriesRing { slots: vec![(VACANT, 0.0); retention_s.max(1)] }
    }

    /// How many one-second samples the ring can hold.
    pub fn retention_s(&self) -> usize {
        self.slots.len()
    }

    /// Records the sample for absolute second `second`. A second the
    /// ring already holds is overwritten (last write wins — the sampler
    /// runs once per second, so this is the refresh path); a newer
    /// second reclaims its colliding slot; an older-than-held second is
    /// dropped rather than resurrecting evicted history.
    pub fn record_at(&mut self, second: u64, value: f64) {
        let idx = (second % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != VACANT && slot.0 > second {
            return; // late arrival from an evicted second
        }
        *slot = (second, value);
    }

    /// Every sample with a second in `(now_s - secs, now_s]`, ascending
    /// by second. Lookback clamps to the retention; seconds newer than
    /// `now_s` are excluded so a query at `now_s` is self-consistent.
    pub fn query(&self, now_s: u64, secs: u64) -> Vec<(u64, f64)> {
        if secs == 0 {
            return Vec::new();
        }
        let lookback = secs.min(self.slots.len() as u64);
        let oldest = now_s.saturating_sub(lookback - 1);
        let mut out: Vec<(u64, f64)> = self
            .slots
            .iter()
            .filter(|(s, _)| *s != VACANT && *s >= oldest && *s <= now_s)
            .copied()
            .collect();
        out.sort_by_key(|&(s, _)| s);
        out
    }
}

struct Store {
    series: BTreeMap<String, SeriesRing>,
    retention_s: usize,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| {
        Mutex::new(Store { series: BTreeMap::new(), retention_s: DEFAULT_RETENTION_S })
    })
}

/// Sets the retention for *new* series (existing rings keep their
/// size — resizing would re-hash history for no operational gain).
/// Clamped to at least 1.
pub fn set_retention_s(retention_s: usize) {
    store().lock().unwrap().retention_s = retention_s.max(1);
}

/// The retention new series are created with.
pub fn retention_s() -> usize {
    store().lock().unwrap().retention_s
}

/// Records one sample into the named series at absolute second
/// `second`, creating the series (at the configured retention) on first
/// touch.
pub fn record_at(name: &str, second: u64, value: f64) {
    let mut st = store().lock().unwrap();
    let retention = st.retention_s;
    st.series
        .entry(name.to_owned())
        .or_insert_with(|| SeriesRing::new(retention))
        .record_at(second, value);
}

/// The named series over the trailing `secs` seconds ending at `now_s`,
/// ascending by second. `None` when the series has never been recorded.
pub fn query(name: &str, now_s: u64, secs: u64) -> Option<Vec<(u64, f64)>> {
    let st = store().lock().unwrap();
    st.series.get(name).map(|ring| ring.query(now_s, secs))
}

/// Every series name currently held, ascending.
pub fn names() -> Vec<String> {
    store().lock().unwrap().series.keys().cloned().collect()
}

/// Drops every series (the retention setting survives). Called by
/// [`reset`](super::reset) so a registry wipe cannot leave the store
/// plotting metrics that no longer exist.
pub fn reset() {
    store().lock().unwrap().series.clear();
}

/// Samples the live registry into the store at `now_s`: every counter
/// and gauge at its current value, plus `<name>.rate1s` /
/// `<name>.p99_1s` for each rolling window (the trailing-1 s request
/// rate and latency quantile — the raw series a latency SLO plots).
/// One registry snapshot per call; meant to run once per second.
pub fn sample_registry(now_s: u64) {
    let snap = super::metrics_snapshot();
    let mut st = store().lock().unwrap();
    let retention = st.retention_s;
    let put = |series: &mut BTreeMap<String, SeriesRing>, name: String, value: f64| {
        series
            .entry(name)
            .or_insert_with(|| SeriesRing::new(retention))
            .record_at(now_s, value);
    };
    for (name, value) in &snap.counters {
        put(&mut st.series, name.clone(), *value as f64);
    }
    for (name, value) in &snap.gauges {
        put(&mut st.series, name.clone(), *value as f64);
    }
    for (name, wh) in &snap.windows {
        let last = wh.merged(now_s, 1);
        put(&mut st.series, format!("{name}.rate1s"), last.count() as f64);
        put(&mut st.series, format!("{name}.p99_1s"), last.quantile(0.99) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_query_round_trips_in_second_order() {
        let mut ring = SeriesRing::new(8);
        ring.record_at(5, 1.5);
        ring.record_at(3, 0.5);
        ring.record_at(4, 1.0);
        assert_eq!(ring.query(5, 8), vec![(3, 0.5), (4, 1.0), (5, 1.5)]);
        assert_eq!(ring.query(5, 2), vec![(4, 1.0), (5, 1.5)]);
        assert_eq!(ring.query(4, 8), vec![(3, 0.5), (4, 1.0)], "future samples excluded");
    }

    #[test]
    fn newer_seconds_reclaim_and_older_are_dropped() {
        let mut ring = SeriesRing::new(4);
        ring.record_at(0, 10.0);
        ring.record_at(4, 40.0); // collides with second 0, reclaims it
        assert_eq!(ring.query(4, 4), vec![(4, 40.0)]);
        ring.record_at(0, 99.0); // beyond the horizon: dropped
        assert_eq!(ring.query(4, 4), vec![(4, 40.0)]);
    }

    #[test]
    fn same_second_refreshes_in_place() {
        let mut ring = SeriesRing::new(4);
        ring.record_at(7, 1.0);
        ring.record_at(7, 2.0);
        assert_eq!(ring.query(7, 1), vec![(7, 2.0)]);
    }

    #[test]
    fn lookback_clamps_to_retention_and_zero_is_empty() {
        let mut ring = SeriesRing::new(4);
        for s in 0..8u64 {
            ring.record_at(s, s as f64);
        }
        assert_eq!(ring.query(7, 0), vec![]);
        // Only the last 4 seconds survive the 4-slot ring.
        assert_eq!(
            ring.query(7, 100),
            vec![(4, 4.0), (5, 5.0), (6, 6.0), (7, 7.0)]
        );
        assert_eq!(SeriesRing::new(0).retention_s(), 1);
    }

    #[test]
    fn global_store_creates_series_lazily_and_resets() {
        // The store is process-global; use names no other test touches.
        record_at("tsdb.test.alpha", 10, 1.0);
        record_at("tsdb.test.alpha", 11, 2.0);
        assert_eq!(
            query("tsdb.test.alpha", 11, 60),
            Some(vec![(10, 1.0), (11, 2.0)])
        );
        assert_eq!(query("tsdb.test.never", 11, 60), None);
        assert!(names().contains(&"tsdb.test.alpha".to_owned()));
        reset();
        assert_eq!(query("tsdb.test.alpha", 11, 60), None);
    }
}
