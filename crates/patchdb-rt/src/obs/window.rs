//! Rolling-window histograms: a fixed ring of per-second [`Hist`] slots.
//!
//! A [`WindowHist`] answers "what was the p99 over the last N seconds"
//! and "how many events per second right now" — the live-telemetry
//! questions a cumulative histogram cannot, because its since-start
//! totals bury the present under the past. Each slot covers one
//! absolute second (the caller supplies the clock, which keeps the type
//! deterministic and testable across simulated second boundaries);
//! recording into a new second lazily reclaims the slot whose ring index
//! it collides with, so rotation costs nothing when idle and one slot
//! reset per second under load.
//!
//! Merging two windows is commutative (given equal capacities): equal
//! seconds merge their [`Hist`]s, colliding unequal seconds keep the
//! newer — exactly what a per-worker-shard combine needs.

use super::Hist;

/// One ring slot: the absolute second it covers plus its histogram.
/// `second == VACANT` marks a slot that has never been written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    second: u64,
    hist: Hist,
}

const VACANT: u64 = u64::MAX;

impl Slot {
    fn vacant() -> Slot {
        Slot { second: VACANT, hist: Hist::default() }
    }

    fn is_vacant(&self) -> bool {
        self.second == VACANT
    }
}

/// A rolling-window histogram over the last `capacity_s` seconds. See
/// the module docs for the slot-ring mechanics.
///
/// ```rust
/// use patchdb_rt::obs::WindowHist;
///
/// let mut w = WindowHist::new(60);
/// w.record_at(100, 5);
/// w.record_at(101, 7);
/// assert_eq!(w.merged(101, 1).count(), 1);  // only second 101
/// assert_eq!(w.merged(101, 10).count(), 2); // both
/// assert_eq!(w.merged(200, 60).count(), 0); // everything aged out
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowHist {
    slots: Vec<Slot>,
}

impl WindowHist {
    /// A window keeping `capacity_s` one-second slots (clamped to at
    /// least 1).
    pub fn new(capacity_s: usize) -> WindowHist {
        WindowHist { slots: vec![Slot::vacant(); capacity_s.max(1)] }
    }

    /// How many one-second slots the ring holds — the longest lookback
    /// [`merged`](Self::merged) can answer in full.
    pub fn capacity_s(&self) -> usize {
        self.slots.len()
    }

    /// Records one observation at absolute second `second`. A value for
    /// the slot's current second accumulates; a *newer* second reclaims
    /// the slot (the old second has aged past the ring horizon); an
    /// *older* second than the slot holds is dropped — it is beyond the
    /// horizon already, and accepting it would resurrect evicted data.
    pub fn record_at(&mut self, second: u64, value: u64) {
        let idx = (second % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.second != second {
            if !slot.is_vacant() && slot.second > second {
                return; // late arrival from a second the ring already evicted
            }
            *slot = Slot { second, hist: Hist::default() };
        }
        slot.hist.record(value);
    }

    /// Folds every slot covering a second in `(now_s - window_s, now_s]`
    /// into one [`Hist`] — count/sum/max/quantiles over the trailing
    /// window. Seconds newer than `now_s` are excluded too, so a
    /// snapshot taken at `now_s` is self-consistent. A `window_s` beyond
    /// [`capacity_s`](Self::capacity_s) is clamped to the capacity:
    /// slots are reclaimed lazily on collision, so a quiet ring may
    /// still *hold* seconds past its horizon, but they never count.
    pub fn merged(&self, now_s: u64, window_s: u64) -> Hist {
        let mut out = Hist::default();
        if window_s == 0 {
            return out;
        }
        let lookback = window_s.min(self.slots.len() as u64);
        let oldest = now_s.saturating_sub(lookback - 1);
        for slot in &self.slots {
            if !slot.is_vacant() && slot.second >= oldest && slot.second <= now_s {
                out.merge(&slot.hist);
            }
        }
        out
    }

    /// Observations in the trailing window.
    pub fn count(&self, now_s: u64, window_s: u64) -> u64 {
        self.merged(now_s, window_s).count()
    }

    /// Observations per second over the trailing window.
    pub fn rate_per_s(&self, now_s: u64, window_s: u64) -> f64 {
        if window_s == 0 {
            return 0.0;
        }
        self.count(now_s, window_s) as f64 / window_s as f64
    }

    /// Folds `other` into `self`, slot by slot: equal seconds merge
    /// their histograms, a colliding newer second wins, vacant loses to
    /// anything. For equal capacities the operation is commutative —
    /// `a.merge(&b)` and `b.merge(&a)` are equal (pinned by the
    /// `rt::check` property in `crates/patchdb-rt/tests/obs.rs`).
    pub fn merge(&mut self, other: &WindowHist) {
        for slot in &other.slots {
            if slot.is_vacant() {
                continue;
            }
            let idx = (slot.second % self.slots.len() as u64) as usize;
            let mine = &mut self.slots[idx];
            if mine.is_vacant() || mine.second < slot.second {
                *mine = *slot;
            } else if mine.second == slot.second {
                mine.hist.merge(&slot.hist);
            }
            // mine.second > slot.second: other's slot already aged out.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_rotate_across_second_boundaries() {
        let mut w = WindowHist::new(4);
        w.record_at(0, 10);
        w.record_at(1, 20);
        w.record_at(2, 30);
        assert_eq!(w.merged(2, 4).count(), 3);
        // Second 4 collides with second 0's slot (4 % 4 == 0) and
        // reclaims it; second 0's value is gone from every window.
        w.record_at(4, 40);
        assert_eq!(w.merged(4, 4).count(), 3); // seconds 1, 2, 4
        assert_eq!(w.merged(4, 4).sum(), 90);
        assert_eq!(w.merged(4, 1).count(), 1); // only second 4
    }

    #[test]
    fn window_edges_evict_exactly() {
        let mut w = WindowHist::new(64);
        w.record_at(0, 1);
        // Window of 64 ending at second 63 still covers second 0...
        assert_eq!(w.count(63, 64), 1);
        // ...and ending at second 64 no longer does.
        assert_eq!(w.count(64, 64), 0);
        // A 1-second window sees only its own second.
        assert_eq!(w.count(0, 1), 1);
        assert_eq!(w.count(1, 1), 0);
    }

    #[test]
    fn future_slots_are_excluded_from_a_past_now() {
        let mut w = WindowHist::new(8);
        w.record_at(5, 1);
        w.record_at(6, 1);
        assert_eq!(w.count(5, 8), 1, "second 6 must not leak into a now_s=5 view");
    }

    #[test]
    fn late_records_into_evicted_seconds_are_dropped() {
        let mut w = WindowHist::new(4);
        w.record_at(7, 70); // slot 3
        w.record_at(3, 30); // same slot, older second: dropped
        assert_eq!(w.merged(7, 4).count(), 1);
        assert_eq!(w.merged(7, 4).max(), 70);
    }

    #[test]
    fn zero_window_is_empty_and_rate_divides_by_window() {
        let mut w = WindowHist::new(8);
        for s in 0..4 {
            w.record_at(s, 1);
            w.record_at(s, 2);
        }
        assert_eq!(w.count(3, 0), 0);
        assert_eq!(w.rate_per_s(3, 0), 0.0);
        assert_eq!(w.rate_per_s(3, 4), 2.0);
        assert_eq!(w.rate_per_s(3, 8), 1.0); // ring truncates at second 0
    }

    #[test]
    fn quantiles_come_from_the_window_not_the_lifetime() {
        let mut w = WindowHist::new(16);
        for _ in 0..100 {
            w.record_at(0, 1_000_000); // an old slow burst
        }
        for _ in 0..10 {
            w.record_at(10, 100); // the recent regime
        }
        let recent = w.merged(10, 5);
        assert_eq!(recent.count(), 10);
        assert!(recent.quantile(0.99) < 1000, "old burst leaked into the window");
        let all = w.merged(10, 16);
        assert_eq!(all.count(), 110);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut w = WindowHist::new(0);
        assert_eq!(w.capacity_s(), 1);
        w.record_at(9, 3);
        assert_eq!(w.count(9, 1), 1);
    }
}
