//! The flight recorder: an always-available, fixed-memory, per-thread
//! structured event journal — the "black box" an operator opens after a
//! p99 spike or a panic to see what the process was doing in the moments
//! before.
//!
//! Each thread owns a bounded, overwrite-oldest [`EventRing`] of
//! [`FlightEvent`]s (span enter/exit, counter deltas, event-loop ticks,
//! queue transitions). Recording is one monotonic clock read and one
//! push into the thread's own ring, stamped from a per-thread sequence
//! counter — no allocation for the `'static` names the hot paths use,
//! and no cross-thread contention beyond the ring's uncontended mutex
//! (a shared sequence counter's cacheline ping-pong was measured at
//! double-digit percent serve throughput). Memory is fixed: at most
//! [`FLIGHT_CAPACITY`] events per thread, oldest overwritten first, with
//! the drop count retained so a reader knows how much history was lost.
//!
//! Thread journals are registered in a process-global list and *outlive
//! their threads*: a postmortem wants the last events of a thread that
//! already exited. [`snapshot`] merges every journal into one
//! chronological stream (ordered by `(ts_us, tid, seq)`, which also
//! preserves per-thread program order).
//!
//! [`install_panic_hook`] chains onto the existing panic hook and dumps
//! the merged journal as Chrome trace-event JSON to `FLIGHT_<pid>.json`
//! (in `PATCHDB_FLIGHT_DIR`, or the working directory), so the file a
//! crash leaves behind opens directly in `chrome://tracing` / Perfetto.
//!
//! Recording is gated on its own toggle ([`set_enabled`] /
//! `PATCHDB_FLIGHT`), independent of the span registry: the serve path
//! turns it on by default and prices it in `BENCH_serve.json`. Like
//! every `rt::obs` family, the recorder observes and never steers —
//! nothing here feeds back into output bytes.

use std::borrow::Cow;
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

use super::ring::EventRing;
use crate::json::Json;

/// Events each thread's journal retains before overwriting the oldest.
pub const FLIGHT_CAPACITY: usize = 2048;

/// What a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A span opened (`value` unused).
    SpanEnter,
    /// A span closed (`value` = elapsed nanoseconds).
    SpanExit,
    /// A counter was bumped (`value` = the delta).
    Counter,
    /// One event-loop iteration completed (`value` = fds dispatched).
    Tick,
    /// A queue transition — admission, dequeue (`value` = request id or
    /// depth, per the recording site).
    Queue,
    /// A freeform marker.
    Mark,
}

impl FlightKind {
    /// Stable lowercase tag used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::SpanEnter => "span_enter",
            FlightKind::SpanExit => "span_exit",
            FlightKind::Counter => "counter",
            FlightKind::Tick => "tick",
            FlightKind::Queue => "queue",
            FlightKind::Mark => "mark",
        }
    }
}

/// One journal entry: sequence-stamped within its thread, timestamped
/// in microseconds since the process metrics epoch, tagged with the
/// small integer id of the recording thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Per-thread sequence stamp — program order within `tid`. The
    /// merge key `(ts_us, tid, seq)` gives a deterministic total order
    /// without a shared counter on the record path.
    pub seq: u64,
    /// Microseconds since [`super::process_micros`]'s epoch.
    pub ts_us: u64,
    /// Small integer id of the recording thread (assigned at first
    /// record, stable for the thread's lifetime).
    pub tid: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The span/counter/queue name. Borrowed for the `'static` literals
    /// the hot paths record; owned only for dynamic names.
    pub name: Cow<'static, str>,
    /// Kind-specific payload (see [`FlightKind`]).
    pub value: u64,
}

// 0 = uninitialized (consult PATCHDB_FLIGHT), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

/// Whether flight recording is on: one relaxed load on the fast path.
/// The first call consults `PATCHDB_FLIGHT` (any value other than
/// empty/`"0"` enables it).
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PATCHDB_FLIGHT")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatic override of the `PATCHDB_FLIGHT` toggle.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

struct ThreadJournal {
    tid: u64,
    /// Per-thread sequence stamp. A single global counter here would put
    /// one cacheline under fetch_add ping-pong from every recording
    /// thread — measured at double-digit percent throughput loss on the
    /// serve path — so each thread numbers its own events and the merge
    /// key `(ts_us, tid, seq)` restores a deterministic total order.
    seq: AtomicU64,
    ring: EventRing<FlightEvent>,
}

/// Every journal ever created, including those of exited threads — a
/// postmortem wants the final events of a thread that died.
fn journals() -> &'static Mutex<Vec<Arc<ThreadJournal>>> {
    static JOURNALS: OnceLock<Mutex<Vec<Arc<ThreadJournal>>>> = OnceLock::new();
    JOURNALS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static JOURNAL: Arc<ThreadJournal> = {
        let journal = Arc::new(ThreadJournal {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            seq: AtomicU64::new(0),
            ring: EventRing::new(FLIGHT_CAPACITY),
        });
        journals().lock().unwrap().push(Arc::clone(&journal));
        journal
    };
}

/// The small integer id the flight recorder assigned to this thread
/// (allocating one on first use). Exporters share this id so span and
/// loop events from one thread land on one timeline track.
pub fn thread_id() -> u64 {
    JOURNAL.with(|j| j.tid)
}

/// Records one event into this thread's journal. A no-op when the
/// recorder is off. Never blocks beyond the thread-own ring mutex, and
/// never allocates: the hot call sites all have `'static` names, so the
/// event borrows the name instead of copying it. Dynamic names (counter
/// echoes, span exits) go through [`record_dyn`].
pub fn record(kind: FlightKind, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    push_event(kind, Cow::Borrowed(name), value);
}

/// [`record`] for a name that only lives as long as the caller's borrow
/// — the one code path that pays a per-event allocation.
pub fn record_dyn(kind: FlightKind, name: &str, value: u64) {
    if !enabled() {
        return;
    }
    push_event(kind, Cow::Owned(name.to_owned()), value);
}

fn push_event(kind: FlightKind, name: Cow<'static, str>, value: u64) {
    let ts_us = super::process_micros();
    JOURNAL.with(|j| {
        let seq = j.seq.fetch_add(1, Ordering::Relaxed);
        j.ring.push(FlightEvent { seq, ts_us, tid: j.tid, kind, name, value });
    });
}

/// The calling thread's sequence watermark: every event this thread
/// records after this call carries `seq >=` the returned value. Lets a
/// reader scope a snapshot to "what this thread did since I last
/// looked"; stamps are per-thread, so the watermark says nothing about
/// other threads' journals.
pub fn seq_watermark() -> u64 {
    JOURNAL.with(|j| j.seq.load(Ordering::Relaxed))
}

/// The merged journal: every thread's retained events in one
/// chronological stream, plus how many events were overwritten.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// Events ordered by `(ts_us, tid, seq)` — chronological, with the
    /// thread id and its sequence stamp breaking microsecond ties
    /// (which also preserves each thread's program order).
    pub events: Vec<FlightEvent>,
    /// Events lost to overwrite across all journals.
    pub dropped: u64,
    /// Events ever recorded across all journals.
    pub total: u64,
}

/// Drains a merged chronological snapshot of every thread journal.
/// `window_us` limits the view to events at most that many microseconds
/// old; `None` returns everything retained.
pub fn snapshot(window_us: Option<u64>) -> FlightSnapshot {
    let cutoff = window_us.map(|w| super::process_micros().saturating_sub(w));
    let mut out = FlightSnapshot::default();
    let journals = journals().lock().unwrap();
    for journal in journals.iter() {
        out.dropped += journal.ring.dropped();
        out.total += journal.ring.total();
        for event in journal.ring.recent(FLIGHT_CAPACITY) {
            if cutoff.map_or(true, |c| event.ts_us >= c) {
                out.events.push(event);
            }
        }
    }
    out.events.sort_by_key(|e| (e.ts_us, e.tid, e.seq));
    out
}

/// Chains a panic hook that dumps the merged journal as Chrome
/// trace-event JSON to `FLIGHT_<pid>.json` before the previous hook
/// runs. The directory is `PATCHDB_FLIGHT_DIR` when set, else the
/// working directory. Installing twice is a no-op; the dump itself is
/// best-effort (a failed write never masks the panic).
pub fn install_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_to_default_path();
            previous(info);
        }));
    });
}

fn dump_to_default_path() {
    let dir = std::env::var("PATCHDB_FLIGHT_DIR").unwrap_or_else(|_| ".".to_owned());
    let path = format!("{dir}/FLIGHT_{}.json", std::process::id());
    let _ = dump_to(&path);
}

/// Writes the merged journal as Chrome trace-event JSON to `path`.
///
/// # Errors
///
/// Propagates the filesystem error when the write fails.
pub fn dump_to(path: &str) -> std::io::Result<()> {
    let snap = snapshot(None);
    let json = super::export::flight_to_chrome(&snap);
    std::fs::write(path, json.to_compact_string() + "\n")
}

/// Serializes a snapshot as the raw journal (`schema patchdb-flight/v1`)
/// — the unrendered form, one object per event.
pub fn snapshot_to_json(snap: &FlightSnapshot) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str("patchdb-flight/v1".into())),
        ("dropped".into(), Json::Num(snap.dropped as f64)),
        ("total".into(), Json::Num(snap.total as f64)),
        (
            "events".into(),
            Json::Arr(
                snap.events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("seq".into(), Json::Num(e.seq as f64)),
                            ("ts_us".into(), Json::Num(e.ts_us as f64)),
                            ("tid".into(), Json::Num(e.tid as f64)),
                            ("kind".into(), Json::Str(e.kind.as_str().into())),
                            ("name".into(), Json::Str(e.name.to_string())),
                            ("value".into(), Json::Num(e.value as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flight tests share the process-global journal list with every
    /// other test in the binary, so they assert on events above a seq
    /// watermark rather than absolute contents.
    #[test]
    fn records_merge_chronologically_across_threads() {
        set_enabled(true);
        let mark = seq_watermark();
        record(FlightKind::Mark, "main.before", 1);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                record(FlightKind::Mark, "worker.a", 2);
                record(FlightKind::Mark, "worker.b", 3);
            });
        });
        record(FlightKind::Mark, "main.after", 4);
        set_enabled(false);

        let snap = snapshot(None);
        let mine: Vec<&FlightEvent> =
            snap.events.iter().filter(|e| e.seq >= mark).collect();
        assert_eq!(mine.len(), 4, "{mine:?}");
        // Chronological order, and the worker's own order preserved.
        for pair in mine.windows(2) {
            assert!((pair[0].ts_us, pair[0].seq) <= (pair[1].ts_us, pair[1].seq));
        }
        let a = mine.iter().position(|e| e.name == "worker.a").unwrap();
        let b = mine.iter().position(|e| e.name == "worker.b").unwrap();
        assert!(a < b, "per-thread program order lost");
        // The worker got its own tid.
        let main_tid = mine.iter().find(|e| e.name == "main.before").unwrap().tid;
        let worker_tid = mine.iter().find(|e| e.name == "worker.a").unwrap().tid;
        assert_ne!(main_tid, worker_tid);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        set_enabled(false);
        let mark = seq_watermark();
        record(FlightKind::Mark, "ghost", 1);
        assert_eq!(seq_watermark(), mark, "disabled record consumed a seq stamp");
    }

    #[test]
    fn window_filter_drops_old_events() {
        set_enabled(true);
        let mark = seq_watermark();
        record(FlightKind::Mark, "windowed", 1);
        set_enabled(false);
        // A zero-width window can only hold events recorded in the same
        // microsecond as the snapshot; everything has *some* age, so the
        // generous window must see the event and the snapshot must order
        // it after the watermark.
        let wide = snapshot(Some(60_000_000));
        assert!(
            wide.events.iter().any(|e| e.seq >= mark && e.name == "windowed"),
            "a 60s window missed a just-recorded event"
        );
    }

    #[test]
    fn snapshot_json_carries_schema_and_events() {
        set_enabled(true);
        record(FlightKind::Counter, "json.check", 7);
        set_enabled(false);
        let json = snapshot_to_json(&snapshot(None));
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("patchdb-flight/v1")
        );
        assert!(!json.get("events").and_then(Json::as_arr).unwrap().is_empty());
    }
}
