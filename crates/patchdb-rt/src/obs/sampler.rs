//! The span-path sampling profiler: a zero-dependency answer to "where
//! does CPU/wall time go" for NLS builds and for serve under load.
//!
//! ## How it works
//!
//! Every instrumented thread *mirrors* its current span path — the
//! stack of open [`super::span`]s plus any lightweight [`frame`]s —
//! into a shared, fixed-size **seqlock slot**. A sampler thread walks
//! all slots at a configurable rate and aggregates span-path →
//! sample-count, which renders as folded-stacks text
//! (`frame;frame;frame count`, directly consumable by `flamegraph.pl`)
//! and a top-N self-time table.
//!
//! ## The seqlock protocol
//!
//! Each slot holds a sequence counter, a depth, and a fixed array of
//! interned frame ids. The *owning thread* is the only writer:
//!
//! 1. writer: load `seq` (relaxed; it is the sole writer), store
//!    `seq + 1` (relaxed), then a **`Release` fence** — the fence keeps
//!    the data stores from sinking above the odd "write in progress"
//!    marker;
//! 2. writer: store depth and frame ids (relaxed stores);
//! 3. writer: store `seq + 2` with `Release` — even again, ordered
//!    after the data.
//!
//! The sampler loads `seq` with `Acquire` (ordering the data loads
//! after it); an odd value means a write is in flight, so it retries.
//! After reading depth and frames it issues an **`Acquire` fence** and
//! loads `seq` again (relaxed) — the fence keeps the data loads from
//! sinking below the second `seq` load, so an unchanged even value
//! proves the window was quiet and the sample is consistent; anything
//! else discards the read. (Without the fences, weakly-ordered CPUs may
//! reorder the data accesses across the seq checks and a torn path can
//! pass validation.) No lock is ever held, so a suspended sampler can
//! never stall a worker, and a worker's mirror cost is a handful of
//! relaxed stores.
//!
//! Frame *names* never cross the seqlock: they are interned once into
//! small integer ids (a mutex-guarded table, hit only on the first
//! occurrence of each name per call site in the common case), and the
//! sampler resolves ids back to names at aggregation time.
//!
//! Mirroring has its own toggle ([`set_mirroring`] / `PATCHDB_SAMPLER`)
//! so the per-span cost can be priced independently of the span
//! registry; the sampler itself runs either inline ([`profile_for`],
//! behind `GET /debug/profile`) or continuously
//! ([`BackgroundSampler`]). Sampling observes and never steers:
//! toggling it cannot change output bytes.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{
    fence, AtomicBool, AtomicU8, AtomicU32, AtomicU64, AtomicUsize, Ordering,
};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::json::Json;

/// Deepest span path a slot can mirror; deeper paths are truncated to
/// their outermost [`MAX_DEPTH`] frames.
pub const MAX_DEPTH: usize = 32;

/// The stack name reported for a sampled thread with no open frames.
pub const IDLE_FRAME: &str = "(idle)";

// 0 = uninitialized (consult PATCHDB_SAMPLER), 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether span-path mirroring is on: one relaxed load on the fast
/// path. The first call consults `PATCHDB_SAMPLER` (any value other
/// than empty/`"0"` enables it).
#[inline]
pub fn mirroring() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => init_from_env(),
        s => s == 2,
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("PATCHDB_SAMPLER")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Programmatic override of the `PATCHDB_SAMPLER` toggle.
pub fn set_mirroring(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The name-interning table: names in, dense `u32` ids out.
struct Intern {
    ids: HashMap<String, u32>,
    names: Vec<String>,
}

fn intern_table() -> &'static Mutex<Intern> {
    static TABLE: OnceLock<Mutex<Intern>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Intern { ids: HashMap::new(), names: Vec::new() }))
}

fn intern(name: &str) -> u32 {
    let mut table = intern_table().lock().unwrap();
    if let Some(&id) = table.ids.get(name) {
        return id;
    }
    let id = table.names.len() as u32;
    table.names.push(name.to_owned());
    table.ids.insert(name.to_owned(), id);
    id
}

fn resolve(ids: &[u32]) -> String {
    let table = intern_table().lock().unwrap();
    ids.iter()
        .map(|&id| table.names.get(id as usize).map_or("?", String::as_str))
        .collect::<Vec<_>>()
        .join(";")
}

/// One thread's shared mirror of its current span path. See the module
/// docs for the seqlock protocol.
struct PathSlot {
    seq: AtomicU64,
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
}

impl PathSlot {
    fn new() -> PathSlot {
        PathSlot {
            seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Writer side (owning thread only): odd-publish, store, even-publish.
    fn write(&self, path: &[u32]) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Relaxed);
        // Keep the data stores from sinking above the odd marker; a
        // `Release` on the odd store itself orders nothing that follows.
        fence(Ordering::Release);
        let depth = path.len().min(MAX_DEPTH);
        for (slot, &frame) in self.frames.iter().zip(path.iter().take(MAX_DEPTH)) {
            slot.store(frame, Ordering::Relaxed);
        }
        self.depth.store(depth, Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Reader side (the sampler): returns `None` when a write raced the
    /// read — the sampler just moves on to the next slot.
    fn read(&self) -> Option<Vec<u32>> {
        for _ in 0..4 {
            let before = self.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                continue; // write in progress
            }
            let depth = self.depth.load(Ordering::Relaxed).min(MAX_DEPTH);
            let mut path = Vec::with_capacity(depth);
            for frame in &self.frames[..depth] {
                path.push(frame.load(Ordering::Relaxed));
            }
            // Keep the data loads from sinking below the validating seq
            // load; an `Acquire` on that load orders nothing before it.
            fence(Ordering::Acquire);
            let after = self.seq.load(Ordering::Relaxed);
            if before == after {
                return Some(path);
            }
        }
        None
    }
}

fn slots() -> &'static Mutex<Vec<Arc<PathSlot>>> {
    static SLOTS: OnceLock<Mutex<Vec<Arc<PathSlot>>>> = OnceLock::new();
    SLOTS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// This thread's open frame ids, outermost first.
    static PATH: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    static SLOT: Arc<PathSlot> = {
        let slot = Arc::new(PathSlot::new());
        slots().lock().unwrap().push(Arc::clone(&slot));
        slot
    };
}

/// Pushes `name` onto this thread's mirrored span path. Returns whether
/// the push happened (mirroring was on) — the caller must balance a
/// `true` with one [`pop_frame`]. Prefer the RAII [`frame`] wrapper.
pub fn push_frame(name: &str) -> bool {
    if !mirroring() {
        return false;
    }
    let id = intern(name);
    PATH.with(|p| {
        let mut path = p.borrow_mut();
        path.push(id);
        SLOT.with(|s| s.write(&path));
    });
    true
}

/// Pops the innermost mirrored frame (the balance of a successful
/// [`push_frame`]).
pub fn pop_frame() {
    PATH.with(|p| {
        let mut path = p.borrow_mut();
        path.pop();
        SLOT.with(|s| s.write(&path));
    });
}

/// An RAII mirrored frame for hot paths that cannot afford a full
/// [`super::span`] (which grows the span registry per call): one intern
/// lookup and a seqlock publish on entry, a publish on drop, nothing in
/// the global registry. This is how the serve event loop and workers
/// appear in profiles.
#[must_use = "a frame mirrors nothing unless the guard lives to the end of the scope"]
pub struct FrameGuard {
    pushed: bool,
}

/// Opens a mirrored frame named `name`. A no-op guard when mirroring is
/// off.
pub fn frame(name: &str) -> FrameGuard {
    FrameGuard { pushed: push_frame(name) }
}

impl Drop for FrameGuard {
    fn drop(&mut self) {
        if self.pushed {
            pop_frame();
        }
    }
}

/// Aggregated samples from one profiling run.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Sampling rate the run asked for.
    pub hz: u64,
    /// Wall-clock seconds the run covered.
    pub seconds: f64,
    /// Thread-samples taken (threads observed × sweeps).
    pub samples: u64,
    /// `;`-joined span path → samples observed in that path. Threads
    /// with no open frames aggregate under [`IDLE_FRAME`].
    pub stacks: BTreeMap<String, u64>,
}

impl Profile {
    /// Folded-stacks text: one `path count` line per distinct path,
    /// sorted by path — feed straight into `flamegraph.pl`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            out.push_str(&format!("{stack} {count}\n"));
        }
        out
    }

    /// The top `n` frames by *self* samples — samples whose path ends
    /// at that frame — as `(frame, self_samples)` descending (frame
    /// name ascending on ties, so the table is deterministic for a
    /// given sample set).
    pub fn self_time_top(&self, n: usize) -> Vec<(String, u64)> {
        let mut by_leaf: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, count) in &self.stacks {
            let leaf = stack.rsplit(';').next().unwrap_or(stack);
            *by_leaf.entry(leaf).or_insert(0) += count;
        }
        let mut top: Vec<(String, u64)> =
            by_leaf.into_iter().map(|(f, c)| (f.to_owned(), c)).collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(n);
        top
    }

    /// Serializes as `schema patchdb-profile/v1`: run parameters, the
    /// folded-stacks text, and the top-10 self-time table.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str("patchdb-profile/v1".into())),
            ("hz".into(), Json::Num(self.hz as f64)),
            ("seconds".into(), Json::Num(self.seconds)),
            ("samples".into(), Json::Num(self.samples as f64)),
            ("folded".into(), Json::Str(self.folded())),
            (
                "self_top".into(),
                Json::Arr(
                    self.self_time_top(10)
                        .into_iter()
                        .map(|(frame, samples)| {
                            Json::Obj(vec![
                                ("frame".into(), Json::Str(frame)),
                                ("samples".into(), Json::Num(samples as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One sweep over every registered slot, folded into `agg` (by interned
/// path; the empty path counts as idle). Returns threads sampled.
fn sample_once(agg: &mut BTreeMap<Vec<u32>, u64>) -> u64 {
    let slots = slots().lock().unwrap();
    let mut sampled = 0;
    for slot in slots.iter() {
        if let Some(path) = slot.read() {
            sampled += 1;
            *agg.entry(path).or_insert(0) += 1;
        }
    }
    sampled
}

fn finish_profile(
    agg: BTreeMap<Vec<u32>, u64>,
    hz: u64,
    seconds: f64,
    samples: u64,
) -> Profile {
    let mut stacks = BTreeMap::new();
    for (path, count) in agg {
        let name =
            if path.is_empty() { IDLE_FRAME.to_owned() } else { resolve(&path) };
        *stacks.entry(name).or_insert(0) += count;
    }
    Profile { hz, seconds, samples, stacks }
}

/// Clamps a requested rate into something the sleep loop can honor.
fn clamp_hz(hz: u64) -> u64 {
    hz.clamp(1, 1000)
}

/// Samples every registered thread inline for `duration` at `hz`
/// (clamped to `1..=1000`), blocking the calling thread. This is the
/// `GET /debug/profile?seconds=&hz=` path.
pub fn profile_for(duration: Duration, hz: u64) -> Profile {
    let hz = clamp_hz(hz);
    let period = Duration::from_nanos(1_000_000_000 / hz);
    let started = Instant::now();
    let mut agg = BTreeMap::new();
    let mut samples = 0;
    loop {
        samples += sample_once(&mut agg);
        if started.elapsed() >= duration {
            break;
        }
        std::thread::sleep(period);
    }
    finish_profile(agg, hz, started.elapsed().as_secs_f64(), samples)
}

/// A continuously running sampler thread; [`BackgroundSampler::stop`]
/// joins it and returns the accumulated [`Profile`]. This is what
/// `patchdb profile` runs around a build, and what the serve bench's
/// sampler pricing row runs during its drive.
pub struct BackgroundSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<(BTreeMap<Vec<u32>, u64>, u64)>>,
    hz: u64,
    started: Instant,
}

impl BackgroundSampler {
    /// Spawns the sampler thread at `hz` (clamped to `1..=1000`).
    pub fn start(hz: u64) -> BackgroundSampler {
        let hz = clamp_hz(hz);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let period = Duration::from_nanos(1_000_000_000 / hz);
        let handle = std::thread::Builder::new()
            .name("patchdb-sampler".to_owned())
            .spawn(move || {
                let mut agg = BTreeMap::new();
                let mut samples = 0;
                while !stop_flag.load(Ordering::Relaxed) {
                    samples += sample_once(&mut agg);
                    std::thread::sleep(period);
                }
                (agg, samples)
            })
            .expect("spawn sampler thread");
        BackgroundSampler { stop, handle: Some(handle), hz, started: Instant::now() }
    }

    /// Stops the sampler thread and returns what it aggregated.
    pub fn stop(mut self) -> Profile {
        self.stop.store(true, Ordering::Relaxed);
        let (agg, samples) = self
            .handle
            .take()
            .expect("sampler joined once")
            .join()
            .expect("sampler thread panicked");
        finish_profile(agg, self.hz, self.started.elapsed().as_secs_f64(), samples)
    }
}

impl Drop for BackgroundSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the process-global mirroring state.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn frames_mirror_and_resolve_in_stack_order() {
        let _g = guard();
        set_mirroring(true);
        let observed = {
            let _outer = frame("outer");
            let _inner = frame("inner");
            // Read back this thread's own slot the way the sampler would.
            SLOT.with(|s| s.read()).expect("uncontended slot read")
        };
        set_mirroring(false);
        assert_eq!(resolve(&observed), "outer;inner");
        // Guards popped their frames on drop.
        PATH.with(|p| assert!(p.borrow().is_empty()));
    }

    #[test]
    fn mirroring_off_pushes_nothing() {
        let _g = guard();
        set_mirroring(false);
        let guard = frame("ghost");
        assert!(!guard.pushed);
        PATH.with(|p| assert!(p.borrow().is_empty()));
    }

    #[test]
    fn deep_paths_truncate_to_max_depth() {
        let ids: Vec<u32> = (0..MAX_DEPTH as u32 + 8).collect();
        let slot = PathSlot::new();
        slot.write(&ids);
        let read = slot.read().expect("uncontended read");
        assert_eq!(read.len(), MAX_DEPTH);
        assert_eq!(read[..], ids[..MAX_DEPTH]);
    }

    #[test]
    fn profile_folds_stacks_and_ranks_self_time() {
        let mut profile = Profile {
            hz: 97,
            seconds: 1.0,
            samples: 10,
            stacks: BTreeMap::new(),
        };
        profile.stacks.insert("build;augment".into(), 6);
        profile.stacks.insert("build".into(), 3);
        profile.stacks.insert(IDLE_FRAME.into(), 1);
        let folded = profile.folded();
        assert!(folded.contains("build;augment 6\n"), "{folded}");
        assert!(folded.contains("build 3\n"), "{folded}");
        let top = profile.self_time_top(2);
        assert_eq!(top[0], ("augment".to_owned(), 6));
        assert_eq!(top[1], ("build".to_owned(), 3));
        let json = profile.to_json();
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some("patchdb-profile/v1")
        );
        assert!(json.get("folded").and_then(Json::as_str).unwrap().contains(';'));
    }

    #[test]
    fn background_sampler_catches_a_busy_thread() {
        let _g = guard();
        set_mirroring(true);
        let sampler = BackgroundSampler::start(500);
        {
            let _f = frame("sampler.target");
            std::thread::sleep(Duration::from_millis(60));
        }
        let profile = sampler.stop();
        set_mirroring(false);
        assert!(profile.samples > 0, "sampler took no samples");
        assert!(
            profile.stacks.keys().any(|s| s.contains("sampler.target")),
            "busy frame never sampled: {:?}",
            profile.stacks
        );
    }

    #[test]
    fn seqlock_read_rejects_a_torn_window() {
        // Simulate the torn case directly: an odd seq means a write is
        // in flight and the reader must refuse the slot.
        let slot = PathSlot::new();
        slot.write(&[1, 2]);
        slot.seq.store(slot.seq.load(Ordering::Relaxed) + 1, Ordering::Release);
        assert!(slot.read().is_none(), "reader accepted an in-progress write");
    }
}
