//! A fixed-capacity, overwrite-oldest ring buffer for structured event
//! records — the "flight recorder" behind `GET /debug/requests`.
//!
//! Unlike counters and histograms, which aggregate, the ring keeps the
//! *individual* most-recent events (request records, slow exemplars) so
//! an operator can ask "what were the last N requests and where did each
//! spend its time". Pushing never blocks and never grows memory: at
//! capacity the oldest record is overwritten and counted as dropped, so
//! the drop counter tells a reader exactly how much history the window
//! has lost. One short mutex-guarded critical section per operation —
//! cheap next to the socket work surrounding every push.

use std::collections::VecDeque;
use std::sync::Mutex;

struct Inner<T> {
    items: VecDeque<T>,
    dropped: u64,
    total: u64,
}

/// A thread-safe, fixed-capacity, overwrite-oldest event buffer.
///
/// ```rust
/// use patchdb_rt::obs::EventRing;
///
/// let ring = EventRing::new(2);
/// ring.push("a");
/// ring.push("b");
/// ring.push("c"); // overwrites "a"
/// assert_eq!(ring.recent(8), vec!["b", "c"]);
/// assert_eq!(ring.dropped(), 1);
/// assert_eq!(ring.total(), 3);
/// ```
pub struct EventRing<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
}

impl<T: Clone> EventRing<T> {
    /// A ring holding at most `capacity` records (clamped to at least 1).
    pub fn new(capacity: usize) -> EventRing<T> {
        let capacity = capacity.max(1);
        EventRing {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                dropped: 0,
                total: 0,
            }),
            capacity,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record, overwriting (and drop-counting) the oldest when
    /// the ring is full. Never blocks beyond the ring mutex.
    pub fn push(&self, item: T) {
        let mut inner = self.inner.lock().unwrap();
        if inner.items.len() == self.capacity {
            inner.items.pop_front();
            inner.dropped += 1;
        }
        inner.items.push_back(item);
        inner.total += 1;
    }

    /// The last `n` records, oldest first (fewer when the ring holds
    /// fewer).
    pub fn recent(&self, n: usize) -> Vec<T> {
        let inner = self.inner.lock().unwrap();
        let skip = inner.items.len().saturating_sub(n);
        inner.items.iter().skip(skip).cloned().collect()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Records ever pushed (held + dropped).
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap().total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_and_counts_the_drops() {
        let ring = EventRing::new(4);
        for v in 0..10 {
            ring.push(v);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.recent(99), vec![6, 7, 8, 9]);
        assert_eq!(ring.recent(2), vec![8, 9]);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.total(), 10);
    }

    #[test]
    fn under_capacity_nothing_drops() {
        let ring = EventRing::new(8);
        ring.push('x');
        ring.push('y');
        assert_eq!(ring.recent(8), vec!['x', 'y']);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.total(), 2);
        assert!(!ring.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(1);
        ring.push(2);
        assert_eq!(ring.recent(9), vec![2]);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn concurrent_pushes_conserve_totals() {
        let ring = std::sync::Arc::new(EventRing::new(16));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..50 {
                        ring.push(t * 100 + i);
                    }
                });
            }
        });
        assert_eq!(ring.total(), 200);
        assert_eq!(ring.len(), 16);
        assert_eq!(ring.dropped(), 200 - 16);
    }
}
