//! Property: per-worker `obs::Shard`s merged in spawn order (the
//! `fold_chunked` combine discipline) carry exactly the totals a
//! single-threaded pass produces, at every thread count — the
//! determinism story of the tentpole's "thread-aware registry" — plus
//! the rolling-window and event-ring laws the serve-path telemetry
//! leans on: window merges commute, windowed counts match a brute-force
//! oracle over the event log, and the ring conserves pushed = held +
//! dropped.

use patchdb_rt::check::check;
use patchdb_rt::obs::{self, EventRing, Shard, WindowHist};
use patchdb_rt::par;

/// Folds `items` into a shard exactly as an instrumented parallel pass
/// would: one shard per chunk, combined left-to-right in chunk order.
fn sharded_totals(items: &[u64], threads: usize) -> Shard {
    par::fold_chunked(
        items,
        threads,
        Shard::new,
        |mut shard, &v| {
            shard.add("events", 1);
            shard.add("weight", v % 97);
            shard.record("value", v % 1000);
            shard
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    )
}

#[test]
fn shard_merge_equals_single_threaded_totals() {
    check("obs_shard_merge_thread_invariant", 128, |g| {
        let items = g.vec_with(0, 64, |g| g.u64());
        let serial = sharded_totals(&items, 1);
        for threads in [2usize, 8] {
            let parallel = sharded_totals(&items, threads);
            assert_eq!(
                serial.counter("events"),
                parallel.counter("events"),
                "event count drift at {threads} threads"
            );
            assert_eq!(
                serial.counter("weight"),
                parallel.counter("weight"),
                "weight drift at {threads} threads"
            );
        }
    });
}

/// Window merges are commutative for equal capacities: however two
/// workers' per-second shards are combined, the merged window reports
/// the same slots, counts and quantiles.
#[test]
fn window_merge_is_commutative() {
    check("obs_window_merge_commutative", 128, |g| {
        let capacity = g.usize_in(1, 12);
        let events = |g: &mut patchdb_rt::check::Gen| -> Vec<(u64, u64)> {
            g.vec_with(0, 40, |g| (g.u64_in(0, 30), g.u64_in(0, 5_000)))
        };
        let (ea, eb) = (events(g), events(g));
        let fill = |events: &[(u64, u64)]| {
            let mut w = WindowHist::new(capacity);
            for &(second, value) in events {
                w.record_at(second, value);
            }
            w
        };
        let (a, b) = (fill(&ea), fill(&eb));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge order changed the window (capacity {capacity})");
    });
}

/// Windowed counts agree with a brute-force oracle over the raw event
/// log, for every (now, window) pair — slot rotation and window-edge
/// eviction can't silently double-count or resurrect seconds.
#[test]
fn window_counts_match_the_event_log_oracle() {
    check("obs_window_count_oracle", 128, |g| {
        let capacity = g.usize_in(1, 16) as u64;
        // Non-decreasing event seconds: a monotonic clock never hands a
        // recorder an already-evicted second, so every event is kept
        // unless the ring itself rotated past it.
        let mut second = 0u64;
        let events: Vec<(u64, u64)> = g.vec_with(0, 50, |g| {
            second += g.u64_in(0, 3);
            (second, g.u64_in(0, 100))
        });
        let mut w = WindowHist::new(capacity as usize);
        for &(s, v) in &events {
            w.record_at(s, v);
        }
        let now = second;
        for window in [1u64, 2, capacity, capacity + 7] {
            let oracle = events
                .iter()
                .filter(|&&(s, _)| {
                    // In the trailing window, and not rotated out of the ring.
                    s + window > now && s + capacity > now && s <= now
                })
                .count() as u64;
            assert_eq!(
                w.count(now, window),
                oracle,
                "window {window} at now {now} (capacity {capacity}): {events:?}"
            );
        }
    });
}

/// The ring conserves records: pushed = held + dropped, and what is
/// held is exactly the newest suffix in push order.
#[test]
fn ring_overwrites_oldest_and_counts_drops() {
    check("obs_ring_conservation", 128, |g| {
        let capacity = g.usize_in(1, 8);
        let pushes = g.usize_in(0, 40);
        let ring: EventRing<usize> = EventRing::new(capacity);
        for i in 0..pushes {
            ring.push(i);
        }
        assert_eq!(ring.total(), pushes as u64);
        assert_eq!(ring.len(), pushes.min(capacity));
        assert_eq!(ring.dropped(), pushes.saturating_sub(capacity) as u64);
        let expect: Vec<usize> = (pushes.saturating_sub(capacity)..pushes).collect();
        assert_eq!(ring.recent(capacity + 5), expect, "ring lost order");
        let tail = ring.recent(1);
        if pushes > 0 {
            assert_eq!(tail, vec![pushes - 1]);
        } else {
            assert!(tail.is_empty());
        }
    });
}

/// A recorder that skips far ahead in absolute seconds — an idle server
/// waking after minutes of silence — must reclaim every stale slot it
/// collides with, across multiple full ring wraps, and never resurrect
/// evicted history into a fresh window.
#[test]
fn window_lookback_survives_multi_wrap_second_skips() {
    check("obs_window_multi_wrap_skip", 128, |g| {
        let capacity = g.usize_in(1, 8) as u64;
        // Fill an initial busy second range, then jump several full
        // wraps ahead (always > 2 rings), then record a small burst.
        let busy = g.u64_in(1, 20);
        for_each_skip(capacity, busy, g.u64_in(2, 5), g.u64_in(0, capacity - 1));
    });

    fn for_each_skip(capacity: u64, busy: u64, wraps: u64, offset: u64) {
        let mut w = WindowHist::new(capacity as usize);
        for s in 0..busy {
            w.record_at(s, 100 + s);
        }
        let jump = busy + capacity * wraps + offset;
        w.record_at(jump, 7);
        // The old burst is beyond the horizon: no window anchored at the
        // new now may see it, even one as wide as the whole ring.
        let all = w.merged(jump, capacity);
        assert_eq!(all.count(), 1, "old seconds leaked after a {wraps}-wrap skip");
        assert_eq!(all.max(), 7);
        // Colliding slots were reclaimed lazily, so slots not collided
        // with may still *hold* stale seconds — but merged() must
        // exclude them at every window width.
        for window in 1..=capacity {
            assert!(
                w.count(jump, window) <= 1,
                "stale slot counted at window {window} after skip to {jump}"
            );
        }
        // Recording into the current second keeps accumulating.
        w.record_at(jump, 9);
        assert_eq!(w.count(jump, 1), 2);
    }
}

/// Drop accounting at the exact capacity boundary: the push that fills
/// the ring drops nothing; the very next push drops exactly one.
#[test]
fn ring_drop_counting_at_exact_capacity_boundaries() {
    for capacity in [1usize, 2, 7, 64] {
        let ring: EventRing<usize> = EventRing::new(capacity);
        for i in 0..capacity {
            ring.push(i);
            assert_eq!(ring.dropped(), 0, "dropped before full at capacity {capacity}");
        }
        assert_eq!(ring.len(), capacity);
        assert_eq!(ring.total(), capacity as u64);
        // The boundary push: exactly one drop, length pinned at capacity.
        ring.push(capacity);
        assert_eq!(ring.dropped(), 1, "boundary push at capacity {capacity}");
        assert_eq!(ring.len(), capacity);
        assert_eq!(ring.total(), capacity as u64 + 1);
        assert_eq!(ring.recent(1), vec![capacity]);
        // And the one after: monotone by exactly one again.
        ring.push(capacity + 1);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), capacity);
    }
}

/// Flushing a shard lands its totals in the global registry (and is a
/// no-op while tracing is off). Serialized into one test because the
/// registry is process-global.
#[test]
fn shard_flush_respects_the_toggle() {
    obs::set_enabled(false);
    let mut shard = Shard::new();
    shard.add("obs_test.flush", 5);
    shard.record("obs_test.hist", 3);
    shard.flush(); // off: must not land
    assert_eq!(obs::counter_value("obs_test.flush"), 0);

    obs::set_enabled(true);
    obs::reset();
    shard.flush();
    shard.flush();
    let report = obs::report();
    obs::set_enabled(false);
    assert_eq!(report.counter("obs_test.flush"), Some(10));
    let (name, hist) = &report.histograms[0];
    assert_eq!(name, "obs_test.hist");
    assert_eq!(hist.count(), 2);
    assert_eq!(hist.sum(), 6);
}
