//! Property: per-worker `obs::Shard`s merged in spawn order (the
//! `fold_chunked` combine discipline) carry exactly the totals a
//! single-threaded pass produces, at every thread count — the
//! determinism story of the tentpole's "thread-aware registry".

use patchdb_rt::check::check;
use patchdb_rt::obs::{self, Shard};
use patchdb_rt::par;

/// Folds `items` into a shard exactly as an instrumented parallel pass
/// would: one shard per chunk, combined left-to-right in chunk order.
fn sharded_totals(items: &[u64], threads: usize) -> Shard {
    par::fold_chunked(
        items,
        threads,
        Shard::new,
        |mut shard, &v| {
            shard.add("events", 1);
            shard.add("weight", v % 97);
            shard.record("value", v % 1000);
            shard
        },
        |mut a, b| {
            a.merge(&b);
            a
        },
    )
}

#[test]
fn shard_merge_equals_single_threaded_totals() {
    check("obs_shard_merge_thread_invariant", 128, |g| {
        let items = g.vec_with(0, 64, |g| g.u64());
        let serial = sharded_totals(&items, 1);
        for threads in [2usize, 8] {
            let parallel = sharded_totals(&items, threads);
            assert_eq!(
                serial.counter("events"),
                parallel.counter("events"),
                "event count drift at {threads} threads"
            );
            assert_eq!(
                serial.counter("weight"),
                parallel.counter("weight"),
                "weight drift at {threads} threads"
            );
        }
    });
}

/// Flushing a shard lands its totals in the global registry (and is a
/// no-op while tracing is off). Serialized into one test because the
/// registry is process-global.
#[test]
fn shard_flush_respects_the_toggle() {
    obs::set_enabled(false);
    let mut shard = Shard::new();
    shard.add("obs_test.flush", 5);
    shard.record("obs_test.hist", 3);
    shard.flush(); // off: must not land
    assert_eq!(obs::counter_value("obs_test.flush"), 0);

    obs::set_enabled(true);
    obs::reset();
    shard.flush();
    shard.flush();
    let report = obs::report();
    obs::set_enabled(false);
    assert_eq!(report.counter("obs_test.flush"), Some(10));
    let (name, hist) = &report.histograms[0];
    assert_eq!(name, "obs_test.hist");
    assert_eq!(hist.count(), 2);
    assert_eq!(hist.sum(), 6);
}
