//! Subprocess verification of the flight recorder's panic hook: a
//! panicking process must leave a `FLIGHT_<pid>.json` black box behind,
//! and the dump must be well-formed Chrome trace-event JSON carrying
//! the events recorded before the crash.
//!
//! The child is this same test binary re-executed with
//! `PATCHDB_FLIGHT_PANIC_CHILD=1`, filtered down to the one test that
//! installs the hook and panics — the standard re-exec trick for
//! testing process-fatal paths without a fixture binary.

use patchdb_rt::json::Json;

/// The child: records some events, installs the hook, panics. Inert (an
/// immediately passing test) unless the driver env var is set.
#[test]
fn child_panics_for_flight_dump() {
    if std::env::var("PATCHDB_FLIGHT_PANIC_CHILD").is_err() {
        return;
    }
    patchdb_rt::obs::flight::set_enabled(true);
    patchdb_rt::obs::flight::install_panic_hook();
    patchdb_rt::obs::flight::record(
        patchdb_rt::obs::flight::FlightKind::SpanEnter,
        "doomed.work",
        0,
    );
    patchdb_rt::obs::flight::record(
        patchdb_rt::obs::flight::FlightKind::Counter,
        "doomed.counter",
        3,
    );
    panic!("intentional crash for the flight-dump test");
}

#[test]
fn panic_leaves_a_flight_dump_behind() {
    let dir = std::env::temp_dir().join(format!("patchdb_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dump dir");

    let exe = std::env::current_exe().expect("own test binary");
    let output = std::process::Command::new(exe)
        .args(["child_panics_for_flight_dump", "--exact", "--test-threads=1"])
        .env("PATCHDB_FLIGHT_PANIC_CHILD", "1")
        .env("PATCHDB_FLIGHT_DIR", &dir)
        .output()
        .expect("spawn the panicking child");
    assert!(!output.status.success(), "the child was supposed to panic");

    // Exactly one FLIGHT_<pid>.json, named with the child's pid.
    let dumps: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .expect("read dump dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("FLIGHT_") && n.ends_with(".json"))
                .unwrap_or(false)
        })
        .collect();
    assert_eq!(dumps.len(), 1, "expected one flight dump, found {dumps:?}");

    let text = std::fs::read_to_string(&dumps[0]).expect("read the dump");
    let json = Json::parse(&text).expect("dump is valid JSON");
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("dump is Chrome trace-event JSON");
    assert!(!events.is_empty(), "dump carries no events");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(names.contains(&"doomed.work"), "pre-panic span missing: {names:?}");
    assert!(names.contains(&"doomed.counter"), "pre-panic counter missing: {names:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
