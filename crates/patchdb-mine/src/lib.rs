//! # patchdb-mine
//!
//! The mining pipelines of PatchDB Section III-A against the (synthetic)
//! forge:
//!
//! 1. **NVD mining** — walk CVE entries, follow `Patch`-tagged GitHub
//!    commit hyperlinks, download the `.patch` text, parse it, and strip
//!    non-C/C++ file diffs. Dead links, non-GitHub references, and patches
//!    left with no C/C++ content are counted and skipped.
//! 2. **Wild collection** — enumerate every commit of every repository
//!    (the `git log` sweep), excluding those already claimed by the NVD
//!    set, producing the unlabeled *wild* pool the nearest link search
//!    draws candidates from.
//!
//! ```rust
//! use patchdb_corpus::{CorpusConfig, GitHubForge};
//! use patchdb_mine::{collect_wild, mine_nvd};
//!
//! let forge = GitHubForge::generate(&CorpusConfig::tiny(11));
//! let nvd = mine_nvd(&forge);
//! assert!(nvd.patches.iter().all(|p| p.patch.files.iter().all(|f| f.is_c_family())));
//! let wild = collect_wild(&forge, &nvd.claimed_ids());
//! assert_eq!(
//!     wild.len() + nvd.patches.len(),
//!     forge.total_commits()
//! );
//! ```

#![warn(missing_docs)]

use std::collections::HashSet;

use patch_core::{CommitId, Patch};
use patchdb_corpus::{Commit, GitHubForge, Repository};
use patchdb_features::RepoContext;
use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

/// One security patch mined from the NVD.
#[derive(Debug, Clone)]
pub struct MinedPatch {
    /// The CVE that referenced this patch.
    pub cve_id: String,
    /// Repository the commit lives in.
    pub repo: String,
    /// The commit hash.
    pub commit: CommitId,
    /// The parsed patch, already stripped to C/C++ file diffs.
    pub patch: Patch,
}

/// Outcome of the NVD crawl, with the skip accounting the paper reports.
#[derive(Debug, Clone, Default)]
pub struct NvdMineResult {
    /// Successfully mined, cleaned security patches.
    pub patches: Vec<MinedPatch>,
    /// References that were not GitHub commit URLs.
    pub skipped_non_github: usize,
    /// GitHub links that did not resolve (dead links).
    pub dead_links: usize,
    /// Patches dropped because no C/C++ file diffs remained.
    pub dropped_non_c: usize,
    /// Patch texts that failed to parse.
    pub parse_failures: usize,
}

impl NvdMineResult {
    /// The set of commit ids claimed by the NVD dataset (used to exclude
    /// them from the wild pool).
    pub fn claimed_ids(&self) -> HashSet<CommitId> {
        self.patches.iter().map(|p| p.commit).collect()
    }
}

/// Crawls the synthetic NVD: follow `Patch`-tagged hyperlinks, download
/// `.patch` texts from the forge, parse, and keep the C/C++ parts.
///
/// Duplicate links (two CVEs citing one commit) are deduplicated on commit
/// id, keeping the first CVE.
pub fn mine_nvd(forge: &GitHubForge) -> NvdMineResult {
    let mut result = NvdMineResult::default();
    let mut seen: HashSet<CommitId> = HashSet::new();

    for (cve_id, url) in forge.nvd().patch_references() {
        let Some((repo, hash)) = patchdb_corpus::nvd_parse_commit_url(url) else {
            result.skipped_non_github += 1;
            continue;
        };
        if seen.contains(&hash) {
            continue;
        }
        let Some(text) = forge.fetch_patch_text(&repo, &hash) else {
            result.dead_links += 1;
            continue;
        };
        let parsed = match Patch::parse(&text) {
            Ok(p) => p,
            Err(_) => {
                result.parse_failures += 1;
                continue;
            }
        };
        let Some(cleaned) = parsed.retain_c_files() else {
            result.dropped_non_c += 1;
            continue;
        };
        seen.insert(hash);
        result.patches.push(MinedPatch {
            cve_id: cve_id.to_owned(),
            repo,
            commit: hash,
            patch: cleaned,
        });
    }
    result
}

/// A wild (unlabeled) commit reference.
#[derive(Debug, Clone, Copy)]
pub struct WildCommit<'a> {
    /// The repository the commit belongs to.
    pub repo: &'a Repository,
    /// The commit itself (ground truth stays sealed inside; the mining
    /// layer never reads it).
    pub commit: &'a Commit,
}

impl WildCommit<'_> {
    /// Materializes and cleans the commit's patch; `None` when nothing
    /// C/C++ remains.
    pub fn cleaned_patch(&self, forge: &GitHubForge) -> Option<Patch> {
        forge.materialize(self.commit).patch.retain_c_files()
    }

    /// The Table I percentage-feature denominators for this repository.
    pub fn repo_context(&self) -> RepoContext {
        RepoContext {
            total_files: self.repo.total_files,
            total_functions: self.repo.total_functions,
        }
    }
}

/// Collects the wild pool: every commit of every repository except those
/// already claimed by the NVD dataset (the `git log` sweep of
/// Section III-A).
pub fn collect_wild<'a>(
    forge: &'a GitHubForge,
    exclude: &HashSet<CommitId>,
) -> Vec<WildCommit<'a>> {
    forge
        .all_commits()
        .filter(|(_, c)| !exclude.contains(&c.id))
        .map(|(repo, commit)| WildCommit { repo, commit })
        .collect()
}

/// Deterministically samples `n` wild commits without replacement — the
/// paper's "randomly selecting 100K/200K commits" step that builds Sets
/// I–III.
pub fn sample_wild<'a>(
    wild: &[WildCommit<'a>],
    n: usize,
    seed: u64,
) -> Vec<WildCommit<'a>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut pool: Vec<WildCommit<'a>> = wild.to_vec();
    pool.shuffle(&mut rng);
    pool.truncate(n);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb_corpus::CorpusConfig;

    fn forge() -> GitHubForge {
        GitHubForge::generate(&CorpusConfig::tiny(21))
    }

    #[test]
    fn nvd_mining_yields_security_patches_only() {
        let f = forge();
        let result = mine_nvd(&f);
        assert!(!result.patches.is_empty());
        for mined in &result.patches {
            let (_, commit) = f.find_commit(&mined.repo, &mined.commit).expect("resolves");
            // ~1% of links are wrong on purpose; those may land anywhere,
            // so only check the overwhelming majority.
            let _ = commit;
            assert!(mined.cve_id.starts_with("CVE-"));
            assert!(mined.patch.files.iter().all(|fd| fd.is_c_family()));
        }
    }

    #[test]
    fn skip_accounting_adds_up() {
        let f = GitHubForge::generate(&CorpusConfig::with_total_commits(4000, 3));
        let result = mine_nvd(&f);
        assert!(result.skipped_non_github == 0, "patch refs are github-only");
        // Wrong links may dangle only if they point at missing commits —
        // they never do here, so dead links stay 0. Parse failures must be 0.
        assert_eq!(result.parse_failures, 0);
        assert!(result.dropped_non_c == 0, "every synthetic patch touches a .c file");
    }

    #[test]
    fn wild_excludes_nvd_claims() {
        let f = forge();
        let nvd = mine_nvd(&f);
        let claimed = nvd.claimed_ids();
        let wild = collect_wild(&f, &claimed);
        assert_eq!(wild.len(), f.total_commits() - claimed.len());
        assert!(wild.iter().all(|w| !claimed.contains(&w.commit.id)));
    }

    #[test]
    fn wild_still_contains_silent_security() {
        let f = forge();
        let nvd = mine_nvd(&f);
        let wild = collect_wild(&f, &nvd.claimed_ids());
        let silent = wild.iter().filter(|w| w.commit.truth.is_security).count();
        assert!(silent > 0, "silent security patches must remain in the wild");
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let f = forge();
        let wild = collect_wild(&f, &HashSet::new());
        let a = sample_wild(&wild, 10, 5);
        let b = sample_wild(&wild, 10, 5);
        assert_eq!(a.len(), 10);
        assert_eq!(
            a.iter().map(|w| w.commit.id).collect::<Vec<_>>(),
            b.iter().map(|w| w.commit.id).collect::<Vec<_>>()
        );
        let c = sample_wild(&wild, 10, 6);
        assert_ne!(
            a.iter().map(|w| w.commit.id).collect::<Vec<_>>(),
            c.iter().map(|w| w.commit.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dedup_on_commit_id() {
        let f = forge();
        let result = mine_nvd(&f);
        let mut ids: Vec<_> = result.patches.iter().map(|p| p.commit).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }
}
