//! Property tests for the synthetic forge: every (seed, kind) must
//! materialize into a self-consistent change — patch applies to the
//! before-files, yields the after-files, and round-trips through text.

use proptest::prelude::*;

use patch_core::{apply_file_diff, Patch};
use patchdb_corpus::{ChangeKind, NonSecKind, PatchCategory, ALL_CATEGORIES};

fn any_kind() -> impl Strategy<Value = ChangeKind> {
    prop_oneof![
        (0..ALL_CATEGORIES.len()).prop_map(|i| ChangeKind::Security(ALL_CATEGORIES[i])),
        prop::sample::select(vec![
            ChangeKind::NonSecurity(NonSecKind::NewFeature),
            ChangeKind::NonSecurity(NonSecKind::BugFix),
            ChangeKind::NonSecurity(NonSecKind::Performance),
            ChangeKind::NonSecurity(NonSecKind::Refactor),
            ChangeKind::NonSecurity(NonSecKind::Documentation),
            ChangeKind::NonSecurity(NonSecKind::Style),
            ChangeKind::NonSecurity(NonSecKind::Rework),
        ]),
        (0..ALL_CATEGORIES.len()).prop_map(|i| {
            ChangeKind::NonSecurity(NonSecKind::ShapeTwin(ALL_CATEGORIES[i]))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Materialization is total and self-consistent for every kind/seed.
    #[test]
    fn change_is_self_consistent(
        seed in 0u64..1_000_000,
        kind in any_kind(),
        mention in any::<bool>(),
        reported in any::<bool>(),
    ) {
        let change = patchdb_corpus::generate_change_raw(seed, kind, mention, reported);
        prop_assert!(change.patch.hunk_count() > 0, "{kind:?} produced an empty patch");
        prop_assert!(change.patch.validate().is_ok(), "{:?}", change.patch.validate());

        for file in &change.patch.files {
            if file.new_path == "ChangeLog" {
                continue;
            }
            let before = change.before_files.get(&file.old_path).expect("before file");
            let after = change.after_files.get(&file.new_path).expect("after file");
            let rebuilt = apply_file_diff(file, before).expect("patch applies");
            prop_assert_eq!(&rebuilt, after);
        }

        // Textual round trip, exactly like a GitHub `.patch` download.
        let text = change.patch.to_unified_string();
        let reparsed = Patch::parse(&text).expect("parses");
        prop_assert_eq!(reparsed, change.patch);
    }

    /// Determinism: same inputs, byte-identical outputs.
    #[test]
    fn materialization_is_deterministic(seed in 0u64..100_000, kind in any_kind()) {
        let a = patchdb_corpus::generate_change_raw(seed, kind, false, true);
        let b = patchdb_corpus::generate_change_raw(seed, kind, false, true);
        prop_assert_eq!(a.patch, b.patch);
        prop_assert_eq!(a.before_files, b.before_files);
    }

    /// Security/non-security ground truth matches the requested kind, and
    /// the generated C lexes with balanced braces.
    #[test]
    fn generated_code_is_balanced(seed in 0u64..100_000, kind in any_kind()) {
        let change = patchdb_corpus::generate_change_raw(seed, kind, false, false);
        prop_assert_eq!(change.kind.is_security(), matches!(kind, ChangeKind::Security(_)));
        for text in change.after_files.values() {
            let toks = clang_lite::tokenize(text);
            let open = toks.iter().filter(|t| t.is_punct("{")).count();
            let close = toks.iter().filter(|t| t.is_punct("}")).count();
            prop_assert_eq!(open, close, "unbalanced braces in generated file:\n{}", text);
        }
    }

    /// Twin patches never carry CVE ids or security words in messages.
    #[test]
    fn twin_messages_stay_functional(seed in 0u64..50_000, cat_idx in 0usize..12) {
        let kind = ChangeKind::NonSecurity(NonSecKind::ShapeTwin(ALL_CATEGORIES[cat_idx]));
        let change = patchdb_corpus::generate_change_raw(seed, kind, false, false);
        let msg = change.patch.message.to_lowercase();
        prop_assert!(!msg.contains("cve"));
        prop_assert!(!msg.contains("security"));
        prop_assert!(!msg.contains("vulnerab"));
    }
}

// Keep the unused import warning away when only some tests run.
#[allow(unused_imports)]
use PatchCategory as _Unused;
