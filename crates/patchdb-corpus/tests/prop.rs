//! Property tests for the synthetic forge: every (seed, kind) must
//! materialize into a self-consistent change — patch applies to the
//! before-files, yields the after-files, and round-trips through text.
//! Runs on `patchdb_rt::check`, the in-repo property harness.

use patchdb_rt::check::{check, Gen};

use patch_core::{apply_file_diff, Patch};
use patchdb_corpus::{ChangeKind, NonSecKind, ALL_CATEGORIES};

const CASES: u32 = 256;

fn any_kind(g: &mut Gen) -> ChangeKind {
    const NONSEC: &[NonSecKind] = &[
        NonSecKind::NewFeature,
        NonSecKind::BugFix,
        NonSecKind::Performance,
        NonSecKind::Refactor,
        NonSecKind::Documentation,
        NonSecKind::Style,
        NonSecKind::Rework,
    ];
    match g.usize_in(0, 2) {
        0 => ChangeKind::Security(ALL_CATEGORIES[g.index(ALL_CATEGORIES.len())]),
        1 => ChangeKind::NonSecurity(*g.pick(NONSEC)),
        _ => ChangeKind::NonSecurity(NonSecKind::ShapeTwin(
            ALL_CATEGORIES[g.index(ALL_CATEGORIES.len())],
        )),
    }
}

/// Materialization is total and self-consistent for every kind/seed.
#[test]
fn change_is_self_consistent() {
    check("change_is_self_consistent", CASES, |g| {
        let seed = g.u64_in(0, 999_999);
        let kind = any_kind(g);
        let mention = g.bool();
        let reported = g.bool();
        let change = patchdb_corpus::generate_change_raw(seed, kind, mention, reported);
        assert!(change.patch.hunk_count() > 0, "{kind:?} produced an empty patch");
        assert!(change.patch.validate().is_ok(), "{:?}", change.patch.validate());

        for file in &change.patch.files {
            if file.new_path == "ChangeLog" {
                continue;
            }
            let before = change.before_files.get(&file.old_path).expect("before file");
            let after = change.after_files.get(&file.new_path).expect("after file");
            let rebuilt = apply_file_diff(file, before).expect("patch applies");
            assert_eq!(&rebuilt, after);
        }

        // Textual round trip, exactly like a GitHub `.patch` download.
        let text = change.patch.to_unified_string();
        let reparsed = Patch::parse(&text).expect("parses");
        assert_eq!(reparsed, change.patch);
    });
}

/// Determinism: same inputs, byte-identical outputs.
#[test]
fn materialization_is_deterministic() {
    check("materialization_is_deterministic", CASES, |g| {
        let seed = g.u64_in(0, 99_999);
        let kind = any_kind(g);
        let a = patchdb_corpus::generate_change_raw(seed, kind, false, true);
        let b = patchdb_corpus::generate_change_raw(seed, kind, false, true);
        assert_eq!(a.patch, b.patch);
        assert_eq!(a.before_files, b.before_files);
    });
}

/// Security/non-security ground truth matches the requested kind, and
/// the generated C lexes with balanced braces.
#[test]
fn generated_code_is_balanced() {
    check("generated_code_is_balanced", CASES, |g| {
        let seed = g.u64_in(0, 99_999);
        let kind = any_kind(g);
        let change = patchdb_corpus::generate_change_raw(seed, kind, false, false);
        assert_eq!(change.kind.is_security(), matches!(kind, ChangeKind::Security(_)));
        for text in change.after_files.values() {
            let toks = clang_lite::tokenize(text);
            let open = toks.iter().filter(|t| t.is_punct("{")).count();
            let close = toks.iter().filter(|t| t.is_punct("}")).count();
            assert_eq!(open, close, "unbalanced braces in generated file:\n{text}");
        }
    });
}

/// Twin patches never carry CVE ids or security words in messages.
#[test]
fn twin_messages_stay_functional() {
    check("twin_messages_stay_functional", CASES, |g| {
        let seed = g.u64_in(0, 49_999);
        let cat_idx = g.usize_in(0, 11);
        let kind = ChangeKind::NonSecurity(NonSecKind::ShapeTwin(ALL_CATEGORIES[cat_idx]));
        let change = patchdb_corpus::generate_change_raw(seed, kind, false, false);
        let msg = change.patch.message.to_lowercase();
        assert!(!msg.contains("cve"));
        assert!(!msg.contains("security"));
        assert!(!msg.contains("vulnerab"));
    });
}
