//! The 12 security-patch change-pattern categories of Table V, and the
//! per-source category mixes (Fig. 6) the generator is calibrated to.

use patchdb_rt::rng::Xoshiro256pp;

/// Table V's taxonomy of security patches by code change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatchCategory {
    /// Type 1: add or change bound checks.
    BoundCheck,
    /// Type 2: add or change null checks.
    NullCheck,
    /// Type 3: add or change other sanity checks.
    OtherSanityCheck,
    /// Type 4: change variable definitions.
    VariableDefinition,
    /// Type 5: change variable values.
    VariableValue,
    /// Type 6: change function declarations.
    FunctionDeclaration,
    /// Type 7: change function parameters.
    FunctionParameter,
    /// Type 8: add or change function calls.
    FunctionCall,
    /// Type 9: add or change jump statements.
    JumpStatement,
    /// Type 10: move statements without modification.
    MoveStatement,
    /// Type 11: add or change functions (redesign).
    Redesign,
    /// Type 12: others.
    Others,
}

/// All categories in Table V order.
pub const ALL_CATEGORIES: [PatchCategory; 12] = [
    PatchCategory::BoundCheck,
    PatchCategory::NullCheck,
    PatchCategory::OtherSanityCheck,
    PatchCategory::VariableDefinition,
    PatchCategory::VariableValue,
    PatchCategory::FunctionDeclaration,
    PatchCategory::FunctionParameter,
    PatchCategory::FunctionCall,
    PatchCategory::JumpStatement,
    PatchCategory::MoveStatement,
    PatchCategory::Redesign,
    PatchCategory::Others,
];

patchdb_rt::impl_json_unit_enum!(PatchCategory {
    BoundCheck,
    NullCheck,
    OtherSanityCheck,
    VariableDefinition,
    VariableValue,
    FunctionDeclaration,
    FunctionParameter,
    FunctionCall,
    JumpStatement,
    MoveStatement,
    Redesign,
    Others,
});

impl PatchCategory {
    /// Table V 1-based type id.
    pub fn type_id(self) -> usize {
        ALL_CATEGORIES.iter().position(|c| *c == self).expect("member of ALL") + 1
    }

    /// Table V row label.
    pub fn label(self) -> &'static str {
        match self {
            PatchCategory::BoundCheck => "add or change bound checks",
            PatchCategory::NullCheck => "add or change null checks",
            PatchCategory::OtherSanityCheck => "add or change other sanity checks",
            PatchCategory::VariableDefinition => "change variable definitions",
            PatchCategory::VariableValue => "change variable values",
            PatchCategory::FunctionDeclaration => "change function declarations",
            PatchCategory::FunctionParameter => "change function parameters",
            PatchCategory::FunctionCall => "add or change function calls",
            PatchCategory::JumpStatement => "add or change jump statements",
            PatchCategory::MoveStatement => "move statements without modification",
            PatchCategory::Redesign => "add or change functions (redesign)",
            PatchCategory::Others => "others",
        }
    }
}

/// A categorical distribution over the 12 types.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryMix {
    weights: [f64; 12],
}

impl CategoryMix {
    /// Builds a mix from weights in [`ALL_CATEGORIES`] order (need not be
    /// normalized).
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any is negative.
    pub fn new(weights: [f64; 12]) -> Self {
        assert!(weights.iter().all(|w| *w >= 0.0), "negative weight");
        assert!(weights.iter().sum::<f64>() > 0.0, "all-zero weights");
        CategoryMix { weights }
    }

    /// The NVD-side mix: long tail with Redesign (11), FunctionCall (8)
    /// and OtherSanityCheck (3) heads ≈60 % (Fig. 6, left bars).
    pub fn nvd() -> Self {
        CategoryMix::new([
            8.0,  // bound checks
            7.0,  // null checks
            15.0, // other sanity checks
            4.0,  // variable definitions
            6.0,  // variable values
            2.0,  // function declarations
            3.0,  // function parameters
            20.0, // function calls
            2.0,  // jump statements
            4.0,  // move statements
            25.0, // redesign  ← NVD head class
            4.0,  // others
        ])
    }

    /// The wild-side mix: FunctionCall (8) head, Redesign (11) ≈5 %
    /// (Fig. 6, right bars).
    pub fn wild() -> Self {
        CategoryMix::new([
            13.0, // bound checks
            8.5,  // null checks
            15.0, // other sanity checks
            5.0,  // variable definitions
            11.0, // variable values
            1.5,  // function declarations
            2.5,  // function parameters
            34.0, // function calls ← wild head class
            1.5,  // jump statements
            5.5,  // move statements
            2.0,  // redesign      ← collapses in the wild
            0.5,  // others
        ])
    }

    /// Samples one category.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> PatchCategory {
        let total: f64 = self.weights.iter().sum();
        let mut t = rng.gen_range(0.0..total);
        for (c, w) in ALL_CATEGORIES.iter().zip(&self.weights) {
            if t < *w {
                return *c;
            }
            t -= w;
        }
        PatchCategory::Others
    }

    /// The normalized probability of one category.
    pub fn probability(&self, c: PatchCategory) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[c.type_id() - 1] / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn type_ids_are_table_v_order() {
        assert_eq!(PatchCategory::BoundCheck.type_id(), 1);
        assert_eq!(PatchCategory::FunctionCall.type_id(), 8);
        assert_eq!(PatchCategory::Others.type_id(), 12);
    }

    #[test]
    fn sampling_matches_weights() {
        let mix = CategoryMix::nvd();
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut counts: HashMap<PatchCategory, usize> = HashMap::new();
        let n = 20_000;
        for _ in 0..n {
            *counts.entry(mix.sample(&mut rng)).or_insert(0) += 1;
        }
        let redesign = counts[&PatchCategory::Redesign] as f64 / n as f64;
        assert!((redesign - 0.25).abs() < 0.02, "redesign {redesign}");
        let jump = counts[&PatchCategory::JumpStatement] as f64 / n as f64;
        assert!((jump - 0.02).abs() < 0.01, "jump {jump}");
    }

    #[test]
    fn nvd_vs_wild_heads_differ() {
        let nvd = CategoryMix::nvd();
        let wild = CategoryMix::wild();
        assert!(nvd.probability(PatchCategory::Redesign) > 0.2);
        assert!(wild.probability(PatchCategory::Redesign) < 0.07);
        assert!(
            wild.probability(PatchCategory::FunctionCall)
                > nvd.probability(PatchCategory::FunctionCall)
        );
    }

    #[test]
    #[should_panic(expected = "all-zero weights")]
    fn zero_mix_rejected() {
        CategoryMix::new([0.0; 12]);
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = ALL_CATEGORIES.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 12);
    }
}
