//! Generators producing realistic (BEFORE, AFTER) function pairs for each
//! of the 12 security-patch categories of Table V. Every generator yields
//! code that lexes and structurally parses under `clang-lite`, so the
//! whole downstream pipeline — feature extraction, oversampling,
//! categorization — exercises real paths.

use patchdb_rt::rng::Xoshiro256pp;

use crate::builder::{filler_statement, Scope};
use crate::category::PatchCategory;
use crate::words::{ident, pick};

/// A target function in both versions plus the commit message.
#[derive(Debug, Clone)]
pub(crate) struct TargetPair {
    pub before: Vec<String>,
    pub after: Vec<String>,
    pub message: String,
}

/// Generates one security fix of the requested category.
///
/// `reported` selects the *stylistic sub-variant mix*: NVD-reported fixes
/// and silent wild fixes realize each category with different idiom
/// frequencies (fresh checks vs strengthened ones, `!p` vs `== NULL`,
/// call swaps vs lock hygiene, error-constant dialects). This is the
/// distribution discrepancy between the NVD and the wild that Section
/// IV-B/IV-E attributes the baselines' and NVD-only models' weakness to.
pub(crate) fn generate_security(
    rng: &mut Xoshiro256pp,
    category: PatchCategory,
    mention_security: bool,
    reported: bool,
) -> TargetPair {
    let scope = Scope::generate(rng);
    let (before, after) = match category {
        PatchCategory::BoundCheck => bound_check(rng, &scope, reported),
        PatchCategory::NullCheck => null_check(rng, &scope, reported),
        PatchCategory::OtherSanityCheck => sanity_check(rng, &scope, reported),
        PatchCategory::VariableDefinition => variable_definition(rng, &scope),
        PatchCategory::VariableValue => variable_value(rng, &scope),
        PatchCategory::FunctionDeclaration => function_declaration(rng, &scope),
        PatchCategory::FunctionParameter => function_parameter(rng, &scope),
        PatchCategory::FunctionCall => function_call(rng, &scope, reported),
        PatchCategory::JumpStatement => jump_statement(rng, &scope),
        PatchCategory::MoveStatement => move_statement(rng, &scope),
        PatchCategory::Redesign => redesign(rng, &scope),
        PatchCategory::Others => others(rng, &scope),
    };
    let message = security_message(rng, &scope, category, mention_security);
    let mut pair = TargetPair { before, after, message };
    vary_error_returns(rng, &mut pair, reported);
    if reported {
        add_reported_hardening(rng, &scope, &mut pair);
    }
    pair
}

/// NVD-reported fixes frequently land with extra hardening or telemetry
/// alongside the core change (they were vetted, reviewed, and released),
/// while silent wild fixes stay minimal. This count-*visible* style gap is
/// the NVD↔wild feature-distribution discrepancy Section IV-B blames for
/// the weakness of globally-trained models, which local nearest-link
/// matching tolerates.
fn add_reported_hardening(rng: &mut Xoshiro256pp, s: &Scope, pair: &mut TargetPair) {
    if !rng.gen_bool(0.85) {
        return;
    }
    let extra = match rng.gen_range(0..3) {
        0 => format!("    log_warn(\"{}: rejected input\");", s.fn_name),
        1 => format!("    {}->err_count++;", s.obj),
        _ => format!("    {}_audit({});", s.helper, s.obj),
    };
    let at = pair
        .after
        .iter()
        .rposition(|l| l.trim_start().starts_with("return"))
        .unwrap_or(pair.after.len().saturating_sub(1));
    pair.after.insert(at, extra);
}

/// Replaces the template error returns on *added* lines with a random
/// security-idiom variant, so the security population itself mixes plain
/// and symbolic error constants (as real kernels do). The twin generator
/// substitutes a disjoint functional pool, keeping token streams
/// separable while count features overlap.
fn vary_error_returns(rng: &mut Xoshiro256pp, pair: &mut TargetPair, reported: bool) {
    // Overlapping but shifted error-constant dialects per source.
    let pool: [&str; 4] =
        ["return -1;", "return -EINVAL;", "return -EFAULT;", "return -EOVERFLOW;"];
    let idx = if reported {
        // NVD dialect: mostly -1 / -EINVAL.
        if rng.gen_bool(0.8) { rng.gen_range(0..2) } else { rng.gen_range(2..4) }
    } else {
        // Silent-wild dialect: mostly -EFAULT / -EOVERFLOW.
        if rng.gen_bool(0.7) { rng.gen_range(2..4) } else { rng.gen_range(0..2) }
    };
    let choice = pool[idx];
    let before_set: std::collections::HashSet<String> = pair.before.iter().cloned().collect();
    for line in pair.after.iter_mut() {
        if before_set.contains(line) {
            continue;
        }
        let t = line.trim_start();
        if t == "return -1;" || t == "return -EINVAL;" || t == "return -EBUSY;" {
            let indent: String = line.chars().take_while(|c| c.is_whitespace()).collect();
            *line = format!("{indent}{choice}");
        }
    }
}

/// Base body: signature, locals, a worker region (returned index marks
/// where the "vulnerable operation" sits), and a return.
fn base(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, usize) {
    let mut lines = vec![
        format!(
            "{} {}(struct {} *{}, size_t {})",
            s.ret_ty, s.fn_name, s.struct_name, s.obj, s.len
        ),
        "{".to_owned(),
        format!("    int {} = {}->pos;", s.idx, s.obj),
        format!("    char *{} = {}->data;", s.buf, s.obj),
        format!("    int {} = 0;", s.val),
    ];
    if rng.gen_bool(0.5) {
        lines.push(filler_statement(rng, s));
    }
    let vuln_at = lines.len();
    lines.push(format!("    {}[{}] = {}({}, {});", s.buf, s.idx, s.helper, s.obj, s.idx));
    if rng.gen_bool(0.4) {
        lines.push(filler_statement(rng, s));
    }
    lines.push(format!("    {}->pos = {} + 1;", s.obj, s.idx));
    lines.push(format!("    return {};", s.val));
    lines.push("}".to_owned());
    (lines, vuln_at)
}

fn bound_check(rng: &mut Xoshiro256pp, s: &Scope, reported: bool) -> (Vec<String>, Vec<String>) {
    let (before, vuln_at) = base(rng, s);
    let mut after = before.clone();
    // Reported fixes mostly insert a fresh check; silent ones mostly
    // strengthen an existing one (Listing-1 style).
    if rng.gen_bool(if reported { 0.85 } else { 0.25 }) {
        // Variant 1: insert a fresh bound check before the raw write.
        after.splice(
            vuln_at..vuln_at,
            [
                format!("    if ({} >= (int){})", s.idx, s.len),
                "        return -1;".to_owned(),
            ],
        );
    } else {
        // Variant 2 (Listing-1 style): strengthen an existing check.
        let weak = format!("    if ({} <= (int){})", s.idx, s.len);
        let strong = format!("    if ({} < (int){} && {} >= 0)", s.idx, s.len, s.idx);
        let mut b2 = before.clone();
        b2.splice(
            vuln_at..vuln_at,
            [weak, format!("        {}[{}] = 0;", s.buf, s.idx)],
        );
        let mut a2 = b2.clone();
        a2[vuln_at] = strong;
        return (b2, a2);
    }
    (before, after)
}

fn null_check(rng: &mut Xoshiro256pp, s: &Scope, reported: bool) -> (Vec<String>, Vec<String>) {
    let (before, _) = base(rng, s);
    let mut after = before.clone();
    // Insert right after `{`. Reported fixes prefer the terse `!p` idiom;
    // silent ones the explicit `== NULL` comparison.
    let guard = if rng.gen_bool(if reported { 0.8 } else { 0.2 }) {
        vec![
            format!("    if (!{})", s.obj),
            "        return -EINVAL;".to_owned(),
        ]
    } else {
        vec![
            format!("    if ({} == NULL || {}->data == NULL)", s.obj, s.obj),
            "        return -EINVAL;".to_owned(),
        ]
    };
    after.splice(2..2, guard);
    (before, after)
}

fn sanity_check(rng: &mut Xoshiro256pp, s: &Scope, reported: bool) -> (Vec<String>, Vec<String>) {
    let (before, vuln_at) = base(rng, s);
    let mut after = before.clone();
    let max = ident(rng).to_uppercase();
    // Reported fixes skew toward range checks; silent ones toward state
    // and alignment checks.
    let variant = if reported {
        if rng.gen_bool(0.7) { 0 } else { rng.gen_range(1..3) }
    } else {
        if rng.gen_bool(0.3) { 0 } else { rng.gen_range(1..3) }
    };
    let guard = match variant {
        0 => vec![
            format!("    if ({} > {}_MAX || {} == 0)", s.len, max, s.len),
            "        return -1;".to_owned(),
        ],
        1 => vec![
            format!("    if ({}->state != {}_READY)", s.obj, max),
            "        return -EBUSY;".to_owned(),
        ],
        _ => vec![
            format!("    if ({} % 4 != 0)", s.len),
            "        return -1;".to_owned(),
        ],
    };
    after.splice(vuln_at..vuln_at, guard);
    (before, after)
}

fn variable_definition(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let mut before = vec![
        format!("{} {}(struct {} *{})", s.ret_ty, s.fn_name, s.struct_name, s.obj),
        "{".to_owned(),
    ];
    let (old_decl, new_decl) = if rng.gen_bool(0.5) {
        (
            format!("    int {} = {}->length;", s.len, s.obj),
            format!("    unsigned int {} = {}->length;", s.len, s.obj),
        )
    } else {
        let small = [16, 32, 64][rng.gen_range(0..3)];
        (
            format!("    char {}[{}];", s.buf, small),
            format!("    char {}[{}];", s.buf, small * 4),
        )
    };
    before.push(old_decl);
    before.push(format!("    snprintf({0}, sizeof({0}), \"%s\", {1}->name);", s.buf, s.obj));
    before.push(format!("    return (int){};", s.len));
    before.push("}".to_owned());
    let mut after = before.clone();
    after[2] = new_decl;
    (before, after)
}

fn variable_value(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let (mut before, vuln_at) = base(rng, s);
    let mut after;
    if rng.gen_bool(0.5) {
        // Uninitialized-memory style: `char tmp[N];` → `char tmp[N] = {0};`
        let n = [32, 64, 128][rng.gen_range(0..3)];
        before.splice(vuln_at..vuln_at, [format!("    char {}_tmp[{}];", s.buf, n)]);
        after = before.clone();
        after[vuln_at] = format!("    char {}_tmp[{}] = {{0}};", s.buf, n);
    } else {
        after = before.clone();
        // Initial value hardening: -1 sentinel → 0.
        after[4] = format!("    int {} = 1;", s.val);
    }
    (before, after)
}

fn function_declaration(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let (before, _) = base(rng, s);
    let mut after = before.clone();
    // Widening the return type is a no-op when it's already `ssize_t`;
    // fall back to the `static` variant there.
    after[0] = if rng.gen_bool(0.5) || s.ret_ty == "ssize_t" {
        format!("static {}", before[0])
    } else {
        before[0].replacen(&s.ret_ty, "ssize_t", 1)
    };
    (before, after)
}

fn function_parameter(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let _ = rng;
    let mut before = vec![
        format!("{} {}(struct {} *{})", s.ret_ty, s.fn_name, s.struct_name, s.obj),
        "{".to_owned(),
        format!("    char *{} = {}->data;", s.buf, s.obj),
        format!("    memcpy({}, {}->src, {}->length);", s.buf, s.obj, s.obj),
        "    return 0;".to_owned(),
        "}".to_owned(),
    ];
    let mut after = before.clone();
    after[0] = format!(
        "{} {}(struct {} *{}, size_t {})",
        s.ret_ty, s.fn_name, s.struct_name, s.obj, s.len
    );
    after[3] = format!("    memcpy({}, {}->src, {});", s.buf, s.obj, s.len);
    // Both versions keep a caller comment line so context is shared.
    before.push(format!("/* callers: {}_dispatch */", s.fn_name));
    after.push(format!("/* callers: {}_dispatch */", s.fn_name));
    (before, after)
}

fn function_call(rng: &mut Xoshiro256pp, s: &Scope, reported: bool) -> (Vec<String>, Vec<String>) {
    // Reported fixes skew toward unsafe-call swaps; silent ones toward
    // locking and scrubbing hygiene.
    let variant = if reported {
        if rng.gen_bool(0.6) { 0 } else { rng.gen_range(1..3) }
    } else {
        if rng.gen_bool(0.2) { 0 } else { rng.gen_range(1..3) }
    };
    match variant {
        0 => {
            // Unsafe library call swap.
            let (bad, good) = match rng.gen_range(0..3) {
                0 => (
                    format!("    strcpy({}, {}->name);", s.buf, s.obj),
                    format!("    strlcpy({}, {}->name, {});", s.buf, s.obj, s.len),
                ),
                1 => (
                    format!("    sprintf({}, \"%s\", {}->name);", s.buf, s.obj),
                    format!("    snprintf({}, {}, \"%s\", {}->name);", s.buf, s.len, s.obj),
                ),
                _ => (
                    format!("    strcat({}, {}->suffix);", s.buf, s.obj),
                    format!("    strncat({}, {}->suffix, {} - 1);", s.buf, s.obj, s.len),
                ),
            };
            let (mut before, vuln_at) = base(rng, s);
            before[vuln_at] = bad.clone();
            let mut after = before.clone();
            after[vuln_at] = good;
            (before, after)
        }
        1 => {
            // Race condition: wrap the vulnerable op with lock/unlock
            // (Table VII's race-condition fix pattern).
            let (before, vuln_at) = base(rng, s);
            let mut after = before.clone();
            after.insert(vuln_at, format!("    mutex_lock(&{}->lock);", s.obj));
            after.insert(vuln_at + 2, format!("    mutex_unlock(&{}->lock);", s.obj));
            (before, after)
        }
        _ => {
            // Data leakage: scrub or release the critical value after last
            // use (Table VII's data-leakage fix pattern).
            let (before, _) = base(rng, s);
            let mut after = before.clone();
            let ret_at = after.len() - 2; // before `return`
            after.insert(
                ret_at,
                format!("    memset({}, 0, {});", s.buf, s.len),
            );
            (before, after)
        }
    }
}

fn jump_statement(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let (mut before, vuln_at) = base(rng, s);
    // Give the function an error branch that returns directly (leaking).
    before.splice(
        vuln_at..vuln_at,
        [
            format!("    if ({}({}, {}) < 0)", s.helper, s.obj, s.len),
            "        return -1;".to_owned(),
        ],
    );
    let mut after = before.clone();
    after[vuln_at + 1] = "        goto out_free;".to_owned();
    let end = after.len() - 1; // before closing brace
    after.splice(
        end..end,
        [
            "out_free:".to_owned(),
            format!("    free({});", s.buf),
            "    return -1;".to_owned(),
        ],
    );
    let _ = rng;
    (before, after)
}

fn move_statement(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    // Use-before-init: the assignment moves above the use.
    let stmt = format!("    {}->length = (int){};", s.obj, s.len);
    let (mut before, vuln_at) = base(rng, s);
    let tail_at = before.len() - 2;
    before.insert(tail_at, stmt.clone());
    let mut after = before.clone();
    after.remove(tail_at);
    after.insert(vuln_at, stmt);
    let _ = rng;
    (before, after)
}

/// Redesigns are deliberately **heterogeneous**: both versions are drawn
/// from a randomized statement pool with variable size, so redesign
/// patches spread widely in the Table I feature space. That heterogeneity
/// is what keeps nearest link search from simply transferring the NVD's
/// redesign-heavy mix onto the wild dataset (the paper's Fig. 6 finds
/// redesign collapsing to ~5% in the wild).
fn redesign(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let sig = format!(
        "{} {}(struct {} *{}, size_t {})",
        s.ret_ty, s.fn_name, s.struct_name, s.obj, s.len
    );
    let before = {
        let mut b = vec![sig.clone(), "{".to_owned()];
        b.extend(random_body(rng, s, false));
        b.push("}".to_owned());
        b
    };
    let after = {
        let mut a = vec![sig, "{".to_owned()];
        a.extend(random_body(rng, s, true));
        a.push("}".to_owned());
        a
    };
    (before, after)
}

/// A randomized function body of 5–16 statements. `hardened` bodies lead
/// with defensive guards (the rewritten, safe implementation).
pub(crate) fn random_body(rng: &mut Xoshiro256pp, s: &Scope, hardened: bool) -> Vec<String> {
    let tmp = ident(rng);
    let mut lines = vec![
        format!("    char *{} = {}->data;", s.buf, s.obj),
        format!("    size_t {} = 0;", tmp),
    ];
    if hardened {
        lines.push(format!("    if (!{} || !{}->data)", s.obj, s.obj));
        lines.push("        return -EINVAL;".to_owned());
    }
    let n = rng.gen_range(3..11);
    for _ in 0..n {
        match rng.gen_range(0..6) {
            0 => lines.push(format!("    {} += {}({}, {});", tmp, s.helper, s.obj, tmp)),
            1 => {
                lines.push(format!("    while ({} < {})", tmp, s.len));
                lines.push(format!("        {}[{}++] = 0;", s.buf, tmp));
            }
            2 => {
                lines.push(format!("    if ({}->mode == {})", s.obj, rng.gen_range(0..4)));
                lines.push(format!("        {}({});", s.helper, s.obj));
            }
            3 => lines.push(format!("    memcpy({}, {}->src, {});", s.buf, s.obj, tmp)),
            4 => lines.push(filler_statement(rng, s)),
            _ => lines.push(format!("    {}->pos = (int){};", s.obj, tmp)),
        }
    }
    lines.push(format!("    return (int){};", tmp));
    lines
}

fn others(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let (before, vuln_at) = base(rng, s);
    let mut after = before.clone();
    match rng.gen_range(0..3) {
        0 => {
            // Integer-width cast fix.
            after[vuln_at] =
                format!("    {}[(size_t){}] = {}({}, {});", s.buf, s.idx, s.helper, s.obj, s.idx);
        }
        1 => {
            // Format-string hardening in a log call.
            after.insert(vuln_at, format!("    log_info(\"%.64s\", {}->name);", s.obj));
            after.remove(vuln_at + 1);
        }
        _ => {
            // Volatile on a flag read.
            after[2] = format!("    volatile int {} = {}->pos;", s.idx, s.obj);
        }
    }
    (before, after)
}

/// Commit messages. Silent security patches (the majority, per the Linux
/// study the paper cites) avoid security words; reported ones sometimes
/// carry CVE ids.
fn security_message(
    rng: &mut Xoshiro256pp,
    s: &Scope,
    category: PatchCategory,
    mention_security: bool,
) -> String {
    if mention_security {
        let year = rng.gen_range(2015..2020);
        let num = rng.gen_range(1000..20000);
        match rng.gen_range(0..3) {
            0 => format!(
                "Fix {} in {} (CVE-{year}-{num})",
                vuln_noun(category),
                s.fn_name
            ),
            1 => format!("security: prevent {} in {}", vuln_noun(category), s.fn_name),
            _ => format!("{}: fix {} vulnerability", s.fn_name, vuln_noun(category)),
        }
    } else {
        match rng.gen_range(0..5) {
            0 => format!("{}: fix crash on malformed input", s.fn_name),
            1 => format!("fix corner case in {}", s.fn_name),
            2 => format!("{}: harden {} handling", s.fn_name, pick(rng, crate::words::NOUNS)),
            3 => format!("avoid invalid access in {}", s.fn_name),
            _ => format!("{}: correct {} handling", s.fn_name, pick(rng, crate::words::NOUNS)),
        }
    }
}

fn vuln_noun(category: PatchCategory) -> &'static str {
    match category {
        PatchCategory::BoundCheck => "buffer overflow",
        PatchCategory::NullCheck => "null pointer dereference",
        PatchCategory::OtherSanityCheck => "invalid input",
        PatchCategory::VariableDefinition => "integer overflow",
        PatchCategory::VariableValue => "information leak",
        PatchCategory::FunctionDeclaration => "symbol exposure",
        PatchCategory::FunctionParameter => "out-of-bounds copy",
        PatchCategory::FunctionCall => "unsafe call",
        PatchCategory::JumpStatement => "memory leak",
        PatchCategory::MoveStatement => "use of uninitialized value",
        PatchCategory::Redesign => "memory corruption",
        PatchCategory::Others => "undefined behavior",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::ALL_CATEGORIES;

    #[test]
    fn every_category_produces_a_real_change() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for c in ALL_CATEGORIES {
            for round in 0..10 {
                let pair = generate_security(&mut rng, c, round % 2 == 0, round % 3 == 0);
                assert_ne!(pair.before, pair.after, "{c:?} produced identical versions");
                assert!(!pair.message.is_empty());
            }
        }
    }

    #[test]
    fn generated_functions_lex_balanced() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for c in ALL_CATEGORIES {
            for _ in 0..5 {
                let pair = generate_security(&mut rng, c, false, false);
                for version in [&pair.before, &pair.after] {
                    let text = version.join("\n");
                    let toks = clang_lite::tokenize(&text);
                    let open = toks.iter().filter(|t| t.is_punct("{")).count();
                    let close = toks.iter().filter(|t| t.is_punct("}")).count();
                    assert_eq!(open, close, "{c:?}: unbalanced braces\n{text}");
                }
            }
        }
    }

    #[test]
    fn check_categories_add_if_statements() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for c in [
            PatchCategory::BoundCheck,
            PatchCategory::NullCheck,
            PatchCategory::OtherSanityCheck,
        ] {
            let pair = generate_security(&mut rng, c, false, false);
            let ifs_before = clang_lite::find_if_statements(&pair.before.join("\n")).len();
            let ifs_after = clang_lite::find_if_statements(&pair.after.join("\n")).len();
            assert!(
                ifs_after >= ifs_before,
                "{c:?}: ifs {ifs_before} → {ifs_after}"
            );
        }
    }

    #[test]
    fn move_statement_preserves_content() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let pair = generate_security(&mut rng, PatchCategory::MoveStatement, false, false);
        let mut b = pair.before.clone();
        let mut a = pair.after.clone();
        b.sort();
        a.sort();
        assert_eq!(b, a, "move must not alter the multiset of lines");
    }

    #[test]
    fn cve_appears_only_when_reported() {
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut saw_cve = false;
        for _ in 0..20 {
            let pair = generate_security(&mut rng, PatchCategory::BoundCheck, true, true);
            saw_cve |= pair.message.contains("CVE-");
        }
        assert!(saw_cve);
        for _ in 0..20 {
            let pair = generate_security(&mut rng, PatchCategory::BoundCheck, false, false);
            assert!(!pair.message.contains("CVE-"));
        }
    }
}
