//! The synthetic GitHub: repositories and seed-backed commit streams.

use patch_core::CommitId;
use patchdb_rt::rng::Xoshiro256pp;

use crate::category::CategoryMix;
use crate::change::{generate_change, ChangeKind, GeneratedChange};
use crate::config::CorpusConfig;
use crate::nonsecurity::sample_nonsec_kind;
use crate::nvd::NvdIndex;
use crate::words::repo_name;

/// Ground-truth labels attached to every synthetic commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruth {
    /// Whether the commit fixes a vulnerability.
    pub is_security: bool,
    /// Whether the fix is indexed by the synthetic NVD.
    pub reported_to_nvd: bool,
    /// Whether the commit message mentions security/CVE terms.
    pub mentions_security: bool,
}

/// One commit: a seed (for materialization), its id, and ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// The commit hash (derived from the seed).
    pub id: CommitId,
    /// Materialization seed.
    pub seed: u64,
    /// What the commit does.
    pub kind: ChangeKind,
    /// Ground-truth labels.
    pub truth: GroundTruth,
}

/// A synthetic repository.
#[derive(Debug, Clone)]
pub struct Repository {
    /// Repository name, e.g. `libjson-parser`.
    pub name: String,
    /// The commit stream, oldest first (as `git log --reverse`).
    pub commits: Vec<Commit>,
    /// Number of files in the repository (for the Table I % features).
    pub total_files: usize,
    /// Number of function definitions in the repository.
    pub total_functions: usize,
}

/// The synthetic GitHub plus its NVD index.
#[derive(Debug, Clone)]
pub struct GitHubForge {
    repos: Vec<Repository>,
    nvd: NvdIndex,
    config: CorpusConfig,
}

impl GitHubForge {
    /// Generates a forge from a configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: &CorpusConfig) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(config.seed);
        let nvd_mix = CategoryMix::nvd();
        let wild_mix = CategoryMix::wild();
        let mut repos = Vec::with_capacity(config.n_repos);
        let mut seed_counter: u64 = config.seed.wrapping_mul(0x9e37_79b9) + 1;

        for _ in 0..config.n_repos {
            let name = unique_repo_name(&mut rng, &repos);
            let spread = (config.mean_commits_per_repo / 2).max(1);
            let n_commits = config.mean_commits_per_repo - spread / 2
                + rng.gen_range(0..=spread.max(1));
            let mut commits = Vec::with_capacity(n_commits);
            for _ in 0..n_commits {
                seed_counter = seed_counter.wrapping_add(0x2545_f491_4f6c_dd1d);
                let is_security = rng.gen_bool(config.security_rate);
                let (kind, reported, mentions) = if is_security {
                    let reported = rng.gen_bool(config.nvd_report_rate);
                    // Reported fixes follow the NVD category mix; silent
                    // ones the wild mix (this is what makes Fig. 6 emerge).
                    let mix = if reported { &nvd_mix } else { &wild_mix };
                    let cat = mix.sample(&mut rng);
                    let mentions = if reported {
                        rng.gen_bool(config.reported_mention_rate)
                    } else {
                        rng.gen_bool(config.silent_mention_rate)
                    };
                    (ChangeKind::Security(cat), reported, mentions)
                } else if rng.gen_bool(config.twin_rate) {
                    // A shape twin of a (wild-mix) security fix.
                    let cat = wild_mix.sample(&mut rng);
                    (
                        ChangeKind::NonSecurity(crate::NonSecKind::ShapeTwin(cat)),
                        false,
                        false,
                    )
                } else {
                    (ChangeKind::NonSecurity(sample_nonsec_kind(&mut rng)), false, false)
                };
                commits.push(Commit {
                    id: CommitId::from_seed(seed_counter),
                    seed: seed_counter,
                    kind,
                    truth: GroundTruth {
                        is_security,
                        reported_to_nvd: reported,
                        mentions_security: mentions,
                    },
                });
            }
            repos.push(Repository {
                name,
                commits,
                total_files: rng.gen_range(40..400),
                total_functions: rng.gen_range(300..4000),
            });
        }

        let nvd = NvdIndex::build(&repos, &mut rng);
        GitHubForge { repos, nvd, config: *config }
    }

    /// The repositories.
    pub fn repos(&self) -> &[Repository] {
        &self.repos
    }

    /// The synthetic NVD.
    pub fn nvd(&self) -> &NvdIndex {
        &self.nvd
    }

    /// The configuration the forge was generated from.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Materializes a commit into its file pair and patch.
    pub fn materialize(&self, commit: &Commit) -> GeneratedChange {
        generate_change(
            commit.seed,
            commit.kind,
            commit.truth.mentions_security,
            commit.truth.reported_to_nvd,
        )
    }

    /// Serves the textual `.patch` download for a commit URL's repo/hash,
    /// like `https://github.com/{owner}/{repo}/commit/{hash}.patch`.
    ///
    /// Returns `None` for unknown repos or hashes (dead links happen in
    /// the real NVD too, and the miner must tolerate them).
    pub fn fetch_patch_text(&self, repo: &str, hash: &CommitId) -> Option<String> {
        let repository = self.repos.iter().find(|r| r.name == repo)?;
        let commit = repository.commits.iter().find(|c| c.id == *hash)?;
        Some(self.materialize(commit).patch.to_unified_string())
    }

    /// Looks a commit up by repository name and hash.
    pub fn find_commit(&self, repo: &str, hash: &CommitId) -> Option<(&Repository, &Commit)> {
        let repository = self.repos.iter().find(|r| r.name == repo)?;
        let commit = repository.commits.iter().find(|c| c.id == *hash)?;
        Some((repository, commit))
    }

    /// Iterates over every `(repository, commit)` pair — the "wild".
    pub fn all_commits(&self) -> impl Iterator<Item = (&Repository, &Commit)> {
        self.repos.iter().flat_map(|r| r.commits.iter().map(move |c| (r, c)))
    }

    /// Total commit count across repositories.
    pub fn total_commits(&self) -> usize {
        self.repos.iter().map(|r| r.commits.len()).sum()
    }
}

fn unique_repo_name(rng: &mut Xoshiro256pp, existing: &[Repository]) -> String {
    loop {
        let name = repo_name(rng);
        if !existing.iter().any(|r| r.name == name) {
            return name;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;

    #[test]
    fn forge_is_deterministic() {
        let a = GitHubForge::generate(&CorpusConfig::tiny(5));
        let b = GitHubForge::generate(&CorpusConfig::tiny(5));
        assert_eq!(a.repos().len(), b.repos().len());
        assert_eq!(a.repos()[0].commits, b.repos()[0].commits);
        let c = GitHubForge::generate(&CorpusConfig::tiny(6));
        assert_ne!(a.repos()[0].commits, c.repos()[0].commits);
    }

    #[test]
    fn security_rate_is_calibrated() {
        let config = CorpusConfig {
            n_repos: 20,
            mean_commits_per_repo: 200,
            ..CorpusConfig::default_scale(3)
        };
        let forge = GitHubForge::generate(&config);
        let total = forge.total_commits();
        let sec = forge.all_commits().filter(|(_, c)| c.truth.is_security).count();
        let rate = sec as f64 / total as f64;
        assert!((0.06..=0.10).contains(&rate), "security rate {rate}");
    }

    #[test]
    fn commit_hashes_are_unique() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(8));
        let mut ids: Vec<_> = forge.all_commits().map(|(_, c)| c.id).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn fetch_patch_serves_parsable_text() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(1));
        let repo = &forge.repos()[0];
        let commit = &repo.commits[0];
        let text = forge.fetch_patch_text(&repo.name, &commit.id).unwrap();
        let parsed = patch_core::Patch::parse(&text).unwrap();
        assert_eq!(parsed.commit, commit.id);
    }

    #[test]
    fn fetch_unknown_returns_none() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(1));
        let bogus = CommitId::from_seed(0xdead);
        assert!(forge.fetch_patch_text("no-such-repo", &bogus).is_none());
        let repo = &forge.repos()[0];
        assert!(forge.fetch_patch_text(&repo.name, &bogus).is_none());
    }

    #[test]
    fn only_security_commits_report_to_nvd() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(12));
        for (_, c) in forge.all_commits() {
            if c.truth.reported_to_nvd {
                assert!(c.truth.is_security);
                assert!(c.kind.is_security());
            }
            assert_eq!(c.kind.is_security(), c.truth.is_security);
        }
    }
}
