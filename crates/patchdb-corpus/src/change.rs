//! Change materialization: a 64-bit seed plus a [`ChangeKind`]
//! deterministically expands into file pairs and a unified-diff patch.

use std::collections::HashMap;

use patch_core::{diff_files, CommitId, FileDiff, Hunk, Line, Patch};
use patchdb_rt::rng::Xoshiro256pp;

use crate::builder::FileSketch;
use crate::category::PatchCategory;
use crate::nonsecurity::generate_nonsecurity;
use crate::security::generate_security;

pub use crate::nonsecurity::NonSecKind;

/// What a commit does, at ground-truth level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChangeKind {
    /// A security fix of the given Table V category.
    Security(PatchCategory),
    /// A non-security change of the given kind.
    NonSecurity(NonSecKind),
}

impl ChangeKind {
    /// True for security fixes.
    pub fn is_security(self) -> bool {
        matches!(self, ChangeKind::Security(_))
    }

    /// The Table V category, for security fixes.
    pub fn category(self) -> Option<PatchCategory> {
        match self {
            ChangeKind::Security(c) => Some(c),
            ChangeKind::NonSecurity(_) => None,
        }
    }
}

/// A fully materialized commit: both file versions and the diff.
#[derive(Debug, Clone)]
pub struct GeneratedChange {
    /// The commit's patch (diff of all touched files).
    pub patch: Patch,
    /// Touched files' content before the commit, by path.
    pub before_files: HashMap<String, String>,
    /// Touched files' content after the commit, by path.
    pub after_files: HashMap<String, String>,
    /// Ground-truth kind.
    pub kind: ChangeKind,
}

/// Expands `(seed, kind)` into a concrete change. Deterministic: the same
/// inputs always produce byte-identical output, which is what lets the
/// forge store commits as seeds.
pub fn generate_change(
    seed: u64,
    kind: ChangeKind,
    mention_security: bool,
    reported: bool,
) -> GeneratedChange {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let sketch = FileSketch::generate(&mut rng);
    let pair = match kind {
        ChangeKind::Security(cat) => generate_security(&mut rng, cat, mention_security, reported),
        ChangeKind::NonSecurity(k) => generate_nonsecurity(&mut rng, k),
    };

    let before_text = sketch.render(&pair.before);
    let after_text = sketch.render(&pair.after);
    let mut files = vec![diff_files(&sketch.path, &before_text, &after_text, 3)];
    let mut before_files = HashMap::new();
    let mut after_files = HashMap::new();
    before_files.insert(sketch.path.clone(), before_text);
    after_files.insert(sketch.path.clone(), after_text);

    // Some real commits also touch a ChangeLog / docs file; the miner's
    // C/C++ filter must strip these (Section III-A).
    if rng.gen_bool(0.15) {
        files.push(changelog_diff(&pair.message));
    }

    let patch = Patch::builder(CommitId::from_seed(seed).to_string())
        .message(pair.message)
        .files(files)
        .build();
    GeneratedChange { patch, before_files, after_files, kind }
}

fn changelog_diff(message: &str) -> FileDiff {
    FileDiff::new(
        "ChangeLog",
        vec![Hunk {
            old_start: 0,
            old_count: 0,
            new_start: 1,
            new_count: 1,
            section: String::new(),
            lines: vec![Line::added(format!("* {message}"))],
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::ALL_CATEGORIES;
    use patch_core::apply_file_diff;

    #[test]
    fn deterministic_generation() {
        let a = generate_change(99, ChangeKind::Security(PatchCategory::BoundCheck), false, true);
        let b = generate_change(99, ChangeKind::Security(PatchCategory::BoundCheck), false, true);
        assert_eq!(a.patch, b.patch);
        let c = generate_change(100, ChangeKind::Security(PatchCategory::BoundCheck), false, true);
        assert_ne!(a.patch.commit, c.patch.commit);
    }

    #[test]
    fn patch_applies_to_before_files() {
        for (i, cat) in ALL_CATEGORIES.iter().enumerate() {
            let change = generate_change(1000 + i as u64, ChangeKind::Security(*cat), false, false);
            for file in &change.patch.files {
                if file.new_path == "ChangeLog" {
                    continue;
                }
                let before = &change.before_files[&file.old_path];
                let after = &change.after_files[&file.new_path];
                let rebuilt = apply_file_diff(file, before)
                    .unwrap_or_else(|e| panic!("{cat:?}: {e}"));
                assert_eq!(&rebuilt, after, "{cat:?}");
            }
        }
    }

    #[test]
    fn patch_round_trips_via_text() {
        let change = generate_change(5, ChangeKind::NonSecurity(NonSecKind::BugFix), false, false);
        let text = change.patch.to_unified_string();
        let back = Patch::parse(&text).unwrap();
        assert_eq!(change.patch, back);
    }

    #[test]
    fn changelog_sometimes_present_and_strippable() {
        let mut saw_changelog = false;
        for seed in 0..80 {
            let change =
                generate_change(seed, ChangeKind::Security(PatchCategory::FunctionCall), false, true);
            if change.patch.files.iter().any(|f| f.new_path == "ChangeLog") {
                saw_changelog = true;
                let cleaned = change.patch.retain_c_files().expect("C file remains");
                assert!(cleaned.files.iter().all(|f| f.is_c_family()));
            }
        }
        assert!(saw_changelog, "changelog path never exercised in 80 seeds");
    }

    #[test]
    fn every_patch_has_hunks() {
        for seed in 0..30 {
            for kind in [
                ChangeKind::Security(PatchCategory::Redesign),
                ChangeKind::NonSecurity(NonSecKind::Style),
            ] {
                let change = generate_change(seed, kind, false, false);
                assert!(change.patch.hunk_count() > 0, "{kind:?} seed {seed}");
            }
        }
    }
}
