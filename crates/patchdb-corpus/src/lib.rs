//! # patchdb-corpus
//!
//! A deterministic synthetic stand-in for the external data PatchDB mines:
//! GitHub (313 C/C++ repositories, ~6M commits) and the NVD's CVE index.
//!
//! The corpus generator produces C source files, repositories, and commit
//! streams in which every commit carries **ground truth**: whether it is a
//! security patch, which of the paper's 12 change-pattern categories
//! (Table V) it realizes, and whether it was "reported" to the synthetic
//! NVD. Commits are stored as 16-byte seeds and **materialized on demand**
//! — regenerating a commit from its seed is deterministic — so corpora of
//! hundreds of thousands of commits fit in memory.
//!
//! Calibration targets from the paper that the generator reproduces:
//!
//! * 6–10 % of wild commits are security patches (Sections I, III-A);
//! * the NVD category distribution is long-tailed (types 11/8/3 ≈ 60 %,
//!   Fig. 6), while the wild distribution has type 8 as head and type 11
//!   at ≈5 %;
//! * security patches are frequently *silent* — their messages do not
//!   mention security (61 % in the Linux study the paper cites).
//!
//! ```rust
//! use patchdb_corpus::{CorpusConfig, GitHubForge};
//!
//! let forge = GitHubForge::generate(&CorpusConfig::tiny(7));
//! let repo = &forge.repos()[0];
//! let commit = &repo.commits[0];
//! let change = forge.materialize(commit);
//! assert!(!change.patch.files.is_empty());
//! // The textual form parses back like a real GitHub .patch download.
//! let text = change.patch.to_unified_string();
//! assert!(patch_core::Patch::parse(&text).is_ok());
//! ```

#![warn(missing_docs)]

mod builder;
mod category;
mod change;
mod config;
mod forge;
mod nonsecurity;
mod nvd;
mod oracle;
mod security;
mod words;

pub use category::{CategoryMix, PatchCategory, ALL_CATEGORIES};
pub use change::{generate_change as generate_change_raw, ChangeKind, GeneratedChange, NonSecKind};
pub use config::CorpusConfig;
pub use forge::{Commit, GitHubForge, GroundTruth, Repository};
pub use nvd::{parse_commit_url as nvd_parse_commit_url, CveEntry, NvdIndex, Reference};
pub use oracle::VerificationOracle;
