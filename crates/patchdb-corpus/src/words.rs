//! Identifier and vocabulary pools for the code generator. Drawn from the
//! kinds of names that dominate real C system code so that generated
//! diffs lex like genuine ones.

use patchdb_rt::rng::SliceRandom;
use patchdb_rt::rng::Xoshiro256pp;

pub(crate) const NOUNS: &[&str] = &[
    "buf", "buffer", "data", "packet", "frame", "msg", "entry", "node", "item", "ctx",
    "state", "conn", "session", "req", "resp", "hdr", "header", "payload", "chunk", "block",
    "page", "cache", "queue", "list", "table", "map", "key", "value", "record", "field",
    "stream", "file", "path", "name", "addr", "sock", "dev", "drv", "cfg", "opt",
];

pub(crate) const VERBS: &[&str] = &[
    "parse", "read", "write", "init", "alloc", "free", "copy", "send", "recv", "open",
    "close", "flush", "update", "insert", "remove", "lookup", "find", "check", "validate",
    "process", "handle", "decode", "encode", "load", "store", "reset", "setup", "destroy",
];

pub(crate) const ADJS: &[&str] = &[
    "new", "old", "tmp", "cur", "next", "prev", "max", "min", "total", "local", "last",
    "first", "src", "dst", "in", "out", "raw", "pending",
];

pub(crate) const TYPES: &[&str] =
    &["int", "unsigned int", "size_t", "long", "char", "uint32_t", "uint8_t", "u64"];

pub(crate) const STRUCT_NAMES: &[&str] = &[
    "device", "context", "request", "buffer_head", "session", "parser", "channel",
    "connection", "inode", "frame_info", "pkt_desc", "io_ring",
];

pub(crate) const REPO_WORDS: &[&str] = &[
    "lib", "open", "free", "core", "net", "media", "crypto", "json", "xml", "http", "ssl",
    "img", "audio", "video", "pdf", "zip", "db", "kv", "proto", "mesh",
];

pub(crate) const REPO_SUFFIX: &[&str] =
    &["parser", "codec", "server", "utils", "tools", "engine", "d", "fs", "kit", "stack"];

/// Picks a random element of a slice.
pub(crate) fn pick<'a>(rng: &mut Xoshiro256pp, pool: &[&'a str]) -> &'a str {
    pool.choose(rng).expect("non-empty pool")
}

/// Generates a fresh snake_case identifier like `tmp_buffer` or
/// `parse_hdr_len`.
pub(crate) fn ident(rng: &mut Xoshiro256pp) -> String {
    match rng.gen_range(0..4) {
        0 => format!("{}_{}", pick(rng, ADJS), pick(rng, NOUNS)),
        1 => format!("{}_{}", pick(rng, VERBS), pick(rng, NOUNS)),
        2 => pick(rng, NOUNS).to_owned(),
        _ => format!("{}_{}", pick(rng, NOUNS), pick(rng, &["len", "size", "count", "idx", "off"])),
    }
}

/// Generates a function name like `net_parse_header`.
pub(crate) fn func_name(rng: &mut Xoshiro256pp) -> String {
    if rng.gen_bool(0.5) {
        format!("{}_{}", pick(rng, VERBS), pick(rng, NOUNS))
    } else {
        format!("{}_{}_{}", pick(rng, NOUNS), pick(rng, VERBS), pick(rng, NOUNS))
    }
}

/// Generates a repository name like `libjson-parser`.
pub(crate) fn repo_name(rng: &mut Xoshiro256pp) -> String {
    format!("{}{}-{}", pick(rng, REPO_WORDS), pick(rng, REPO_WORDS), pick(rng, REPO_SUFFIX))
}

/// Generates a C file path like `src/net/parse.c`.
pub(crate) fn file_path(rng: &mut Xoshiro256pp) -> String {
    let dir = pick(rng, &["src", "lib", "core", "drivers", "fs", "net", "util"]);
    if rng.gen_bool(0.3) {
        format!("{dir}/{}/{}.c", pick(rng, REPO_WORDS), pick(rng, VERBS))
    } else {
        format!("{dir}/{}.c", pick(rng, NOUNS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(5);
        let mut b = Xoshiro256pp::seed_from_u64(5);
        assert_eq!(ident(&mut a), ident(&mut b));
        assert_eq!(func_name(&mut a), func_name(&mut b));
        assert_eq!(repo_name(&mut a), repo_name(&mut b));
        assert_eq!(file_path(&mut a), file_path(&mut b));
    }

    #[test]
    fn identifiers_are_lexable() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..50 {
            let id = ident(&mut rng);
            let toks = clang_lite::tokenize(&id);
            assert_eq!(toks.len(), 1, "{id} lexed as {toks:?}");
        }
    }

    #[test]
    fn file_paths_are_c_files() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..20 {
            assert!(file_path(&mut rng).ends_with(".c"));
        }
    }
}
