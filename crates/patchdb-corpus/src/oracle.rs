//! The manual-verification oracle: three synthetic "security experts" who
//! label candidates and cross-check each other (Section III-B's human-in-
//! the-loop step). Ground truth plus independent per-expert noise,
//! resolved by majority vote.

use patch_core::CommitId;
use patchdb_rt::rng::Xoshiro256pp;

use crate::forge::Commit;

/// Simulates the paper's three-expert manual verification.
#[derive(Debug, Clone)]
pub struct VerificationOracle {
    /// Per-expert probability of an individual labeling error.
    expert_error: f64,
    seed: u64,
    /// Running count of verified candidates (the "human effort" meter).
    verified: std::cell::Cell<usize>,
}

impl VerificationOracle {
    /// Creates an oracle with the given per-expert error rate.
    ///
    /// With a 5 % individual error rate, the majority-vote error is
    /// ≈0.7 %, matching the high-confidence labels cross-checking buys.
    pub fn new(expert_error: f64, seed: u64) -> Self {
        VerificationOracle { expert_error, seed, verified: std::cell::Cell::new(0) }
    }

    /// A perfect oracle (no labeling noise).
    pub fn perfect(seed: u64) -> Self {
        Self::new(0.0, seed)
    }

    /// Verifies one candidate commit: is it a security patch?
    ///
    /// Deterministic per (oracle seed, commit id): re-asking about the same
    /// commit returns the same answer, like re-reading a settled label.
    pub fn verify(&self, commit: &Commit) -> bool {
        self.verified.set(self.verified.get() + 1);
        let truth = commit.truth.is_security;
        if self.expert_error <= 0.0 {
            return truth;
        }
        let mut rng = self.rng_for(commit.id);
        let mut votes = 0;
        for _ in 0..3 {
            let expert_says = if rng.gen_bool(self.expert_error) { !truth } else { truth };
            if expert_says {
                votes += 1;
            }
        }
        votes >= 2
    }

    /// How many candidates this oracle has been asked to verify — the
    /// human-effort metric Table II/III trade on.
    pub fn effort(&self) -> usize {
        self.verified.get()
    }

    /// Resets the effort counter.
    pub fn reset_effort(&self) {
        self.verified.set(0);
    }

    fn rng_for(&self, id: CommitId) -> Xoshiro256pp {
        let mut k = self.seed;
        for chunk in id.as_bytes().chunks(8) {
            let mut b = [0u8; 8];
            b[..chunk.len()].copy_from_slice(chunk);
            k = k.rotate_left(17) ^ u64::from_le_bytes(b);
        }
        Xoshiro256pp::seed_from_u64(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::forge::GitHubForge;

    #[test]
    fn perfect_oracle_is_truth() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(2));
        let oracle = VerificationOracle::perfect(1);
        for (_, c) in forge.all_commits() {
            assert_eq!(oracle.verify(c), c.truth.is_security);
        }
        assert_eq!(oracle.effort(), forge.total_commits());
    }

    #[test]
    fn noisy_oracle_is_consistent_per_commit() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(2));
        let oracle = VerificationOracle::new(0.2, 9);
        for (_, c) in forge.all_commits().take(30) {
            assert_eq!(oracle.verify(c), oracle.verify(c));
        }
    }

    #[test]
    fn majority_vote_suppresses_noise() {
        let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(4000, 7));
        let oracle = VerificationOracle::new(0.05, 3);
        let mut errors = 0;
        let mut total = 0;
        for (_, c) in forge.all_commits() {
            total += 1;
            if oracle.verify(c) != c.truth.is_security {
                errors += 1;
            }
        }
        let rate = errors as f64 / total as f64;
        // 3-way majority with p=0.05 → 3p²(1−p)+p³ ≈ 0.0073.
        assert!(rate < 0.02, "majority error rate {rate}");
    }

    #[test]
    fn effort_counter_tracks_and_resets() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(2));
        let oracle = VerificationOracle::perfect(1);
        let (_, c) = forge.all_commits().next().unwrap();
        oracle.verify(c);
        oracle.verify(c);
        assert_eq!(oracle.effort(), 2);
        oracle.reset_effort();
        assert_eq!(oracle.effort(), 0);
    }
}
