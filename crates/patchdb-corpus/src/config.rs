//! Corpus-generation configuration.


/// Parameters controlling forge generation. Defaults are calibrated to
/// the paper's reported statistics at laptop scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of repositories (the paper mines 313).
    pub n_repos: usize,
    /// Mean commits per repository (commit counts are spread ±50 %).
    pub mean_commits_per_repo: usize,
    /// Fraction of commits that are security patches (paper: 6–10 %).
    pub security_rate: f64,
    /// Fraction of *security* patches indexed by the synthetic NVD.
    pub nvd_report_rate: f64,
    /// Probability that a reported security patch's message mentions
    /// security/CVE terms.
    pub reported_mention_rate: f64,
    /// Probability that a silent security patch's message mentions
    /// security terms anyway (paper cites 39 % for Linux).
    pub silent_mention_rate: f64,
    /// Fraction of non-security commits that are *shape twins* of security
    /// fixes (see `NonSecKind::ShapeTwin`). Calibrated so nearest-link
    /// candidates verify at the paper's ~22–30%.
    pub twin_rate: f64,
    /// Master seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// A paper-shaped corpus at roughly 1/20 scale: 313 repos, ~64 commits
    /// each → ~20K commits, ~8 % security, NVD dataset ≈ 450 patches.
    pub fn default_scale(seed: u64) -> Self {
        CorpusConfig {
            n_repos: 313,
            mean_commits_per_repo: 64,
            security_rate: 0.08,
            nvd_report_rate: 0.28,
            reported_mention_rate: 0.7,
            silent_mention_rate: 0.12,
            twin_rate: 0.25,
            seed,
        }
    }

    /// A corpus sized by total commit count, keeping the paper's rates.
    pub fn with_total_commits(total: usize, seed: u64) -> Self {
        let n_repos = 313.min(total.max(1));
        CorpusConfig {
            n_repos,
            mean_commits_per_repo: (total / n_repos).max(1),
            ..Self::default_scale(seed)
        }
    }

    /// A tiny corpus for unit tests: 4 repos, ~30 commits each.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            n_repos: 4,
            mean_commits_per_repo: 30,
            security_rate: 0.15,
            nvd_report_rate: 0.5,
            reported_mention_rate: 0.7,
            silent_mention_rate: 0.12,
            twin_rate: 0.25,
            seed,
        }
    }

    /// Expected total commit count.
    pub fn expected_commits(&self) -> usize {
        self.n_repos * self.mean_commits_per_repo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_total_commits_hits_target() {
        let c = CorpusConfig::with_total_commits(10_000, 1);
        let expected = c.expected_commits();
        assert!((9_000..=11_000).contains(&expected), "{expected}");
    }

    #[test]
    fn tiny_is_small() {
        assert!(CorpusConfig::tiny(0).expected_commits() < 200);
    }
}
