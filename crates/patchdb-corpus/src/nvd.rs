//! The synthetic NVD: CVE entries with reference hyperlinks, some tagged
//! `Patch`, some noise — mirroring the shape Section III-A crawls.

use patch_core::CommitId;
use patchdb_rt::rng::Xoshiro256pp;

use crate::forge::Repository;

/// A reference hyperlink attached to a CVE entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reference {
    /// The URL.
    pub url: String,
    /// NVD-style tags (`Patch`, `Third Party Advisory`, …).
    pub tags: Vec<String>,
}

impl Reference {
    /// True when the reference is tagged as a patch link.
    pub fn is_patch(&self) -> bool {
        self.tags.iter().any(|t| t == "Patch")
    }
}

/// One synthetic CVE entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CveEntry {
    /// The CVE identifier, e.g. `CVE-2018-12345`.
    pub id: String,
    /// CVSS-ish severity score in [0, 10].
    pub severity: f64,
    /// A CWE id, e.g. `CWE-119`.
    pub cwe: String,
    /// Reference hyperlinks.
    pub references: Vec<Reference>,
}

/// The synthetic vulnerability database.
#[derive(Debug, Clone, Default)]
pub struct NvdIndex {
    entries: Vec<CveEntry>,
}

impl NvdIndex {
    /// Builds the index from repositories: every commit whose ground truth
    /// says `reported_to_nvd` gets an entry with a `Patch`-tagged GitHub
    /// commit URL; entries also carry advisory-link noise, a fraction have
    /// **no** patch link at all (the paper notes patch info is often
    /// missing), and ~1 % of patch links are wrong (Section V-B).
    pub(crate) fn build(repos: &[Repository], rng: &mut Xoshiro256pp) -> Self {
        let mut entries = Vec::new();
        let mut all_ids: Vec<(String, CommitId)> = Vec::new();
        for r in repos {
            for c in &r.commits {
                all_ids.push((r.name.clone(), c.id));
            }
        }

        for repo in repos {
            for commit in &repo.commits {
                if !commit.truth.reported_to_nvd {
                    continue;
                }
                let year = rng.gen_range(1999..2020);
                let num = rng.gen_range(1000..99999);
                let mut references = vec![Reference {
                    url: format!("https://security-advisories.example/adv/{num}"),
                    tags: vec!["Third Party Advisory".to_owned()],
                }];
                let dropped = rng.gen_bool(0.12); // missing patch link
                if !dropped {
                    // ~1% wrong links: point at some other commit.
                    let (link_repo, link_id) = if rng.gen_bool(0.01) && !all_ids.is_empty() {
                        let pick = rng.gen_range(0..all_ids.len());
                        all_ids[pick].clone()
                    } else {
                        (repo.name.clone(), commit.id)
                    };
                    references.push(Reference {
                        url: format!(
                            "https://github.com/synthetic/{link_repo}/commit/{link_id}"
                        ),
                        tags: vec!["Patch".to_owned()],
                    });
                }
                entries.push(CveEntry {
                    id: format!("CVE-{year}-{num}"),
                    severity: rng.gen_range(2.0..10.0),
                    cwe: format!("CWE-{}", [119, 125, 787, 476, 416, 190, 20][rng.gen_range(0..7)]),
                    references,
                });
            }
        }

        // Pure-noise entries with no GitHub link at all.
        let noise = entries.len() / 10;
        for _ in 0..noise {
            let year = rng.gen_range(1999..2020);
            let num = rng.gen_range(1000..99999);
            entries.push(CveEntry {
                id: format!("CVE-{year}-{num}"),
                severity: rng.gen_range(2.0..10.0),
                cwe: "CWE-20".to_owned(),
                references: vec![Reference {
                    url: format!("https://vendor.example/bulletin/{num}"),
                    tags: vec!["Vendor Advisory".to_owned()],
                }],
            });
        }
        NvdIndex { entries }
    }

    /// All CVE entries.
    pub fn entries(&self) -> &[CveEntry] {
        &self.entries
    }

    /// Iterates `(cve_id, url)` over `Patch`-tagged references.
    pub fn patch_references(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().flat_map(|e| {
            e.references
                .iter()
                .filter(|r| r.is_patch())
                .map(move |r| (e.id.as_str(), r.url.as_str()))
        })
    }
}

/// Parses a GitHub commit URL of the form
/// `https://github.com/{owner}/{repo}/commit/{hash}` into `(repo, hash)`.
///
/// Returns `None` for non-GitHub or malformed URLs — the crawler skips
/// those, as the paper's does.
pub fn parse_commit_url(url: &str) -> Option<(String, CommitId)> {
    let rest = url.strip_prefix("https://github.com/")?;
    let mut parts = rest.split('/');
    let _owner = parts.next()?;
    let repo = parts.next()?;
    if parts.next()? != "commit" {
        return None;
    }
    let hash = parts.next()?.trim_end_matches(".patch");
    Some((repo.to_owned(), hash.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::forge::GitHubForge;

    #[test]
    fn patch_links_resolve_to_reported_commits() {
        let forge = GitHubForge::generate(&CorpusConfig::tiny(3));
        let mut resolved = 0;
        for (_cve, url) in forge.nvd().patch_references() {
            let (repo, hash) = parse_commit_url(url).expect("github url");
            if let Some((_, commit)) = forge.find_commit(&repo, &hash) {
                resolved += 1;
                // The link may be one of the ~1% wrong ones, but it still
                // points at a real commit.
                let _ = commit;
            }
        }
        assert!(resolved > 0);
    }

    #[test]
    fn some_entries_lack_patch_links() {
        let forge = GitHubForge::generate(&CorpusConfig::with_total_commits(4000, 5));
        let without = forge
            .nvd()
            .entries()
            .iter()
            .filter(|e| !e.references.iter().any(Reference::is_patch))
            .count();
        assert!(without > 0, "noise entries missing");
    }

    #[test]
    fn url_parser_rejects_non_github() {
        assert!(parse_commit_url("https://vendor.example/x").is_none());
        assert!(parse_commit_url("https://github.com/o/r/issues/4").is_none());
        assert!(parse_commit_url("https://github.com/o/r/commit/zzz").is_none());
    }

    #[test]
    fn url_parser_accepts_patch_suffix() {
        let id = CommitId::from_seed(4);
        let url = format!("https://github.com/synthetic/repo/commit/{id}.patch");
        let (repo, hash) = parse_commit_url(&url).unwrap();
        assert_eq!(repo, "repo");
        assert_eq!(hash, id);
    }
}
