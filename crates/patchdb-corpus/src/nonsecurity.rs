//! Non-security change generators: new features, non-security bug fixes,
//! performance work, refactors, and documentation/style churn — the 90-94%
//! of wild commits that are *not* security patches, including the hard
//! negatives (bug fixes that also add `if` statements, like the paper's
//! Listing 2).

use patchdb_rt::rng::Xoshiro256pp;

use crate::builder::{filler_statement, Scope};
use crate::security::TargetPair;
use crate::words::{ident, pick, NOUNS, VERBS};

/// The non-security change kinds the forge emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonSecKind {
    /// Adds new functionality (new branch, new function, new field use).
    NewFeature,
    /// Fixes a functional (non-security) bug — the hard negatives.
    BugFix,
    /// Performance work: caching, loop restructuring.
    Performance,
    /// Behavior-preserving renames and reshuffles.
    Refactor,
    /// Comment-only changes.
    Documentation,
    /// Whitespace/style churn.
    Style,
    /// A substantial functional rewrite — ordinary development that
    /// reshapes a whole function. In the Table I feature space these are
    /// the non-security population nearest to NVD redesign fixes, which
    /// keeps both pseudo labeling's top-confidence picks and nearest-link
    /// redesign seeds honest (the paper's wild has far more rewrites than
    /// redesign *fixes*, Fig. 6).
    Rework,
    /// A *shape twin*: a functional change whose diff shape matches a
    /// security fix of the given category (defensive checks added for
    /// robustness, lock hygiene, type refactors, rewrites, …). These are
    /// the commits that force manual verification in the first place —
    /// without them any shape-based search would be 100% precise, where
    /// the paper measures ~30% (Table II/III).
    ShapeTwin(crate::category::PatchCategory),
}

/// All non-security kinds, with sampling weights matching commit-stream
/// folklore (features and fixes dominate).
pub(crate) const NONSEC_WEIGHTED: &[(NonSecKind, f64)] = &[
    (NonSecKind::NewFeature, 34.0),
    (NonSecKind::BugFix, 30.0),
    (NonSecKind::Performance, 10.0),
    (NonSecKind::Refactor, 12.0),
    (NonSecKind::Documentation, 6.0),
    (NonSecKind::Style, 4.0),
    (NonSecKind::Rework, 11.0),
];

pub(crate) fn sample_nonsec_kind(rng: &mut Xoshiro256pp) -> NonSecKind {
    let total: f64 = NONSEC_WEIGHTED.iter().map(|(_, w)| w).sum();
    let mut t = rng.gen_range(0.0..total);
    for (k, w) in NONSEC_WEIGHTED {
        if t < *w {
            return *k;
        }
        t -= w;
    }
    NonSecKind::Style
}

/// Generates one non-security change of the requested kind.
pub(crate) fn generate_nonsecurity(rng: &mut Xoshiro256pp, kind: NonSecKind) -> TargetPair {
    if let NonSecKind::ShapeTwin(cat) = kind {
        return shape_twin(rng, cat);
    }
    let scope = Scope::generate(rng);
    let (before, after) = match kind {
        NonSecKind::NewFeature => new_feature(rng, &scope),
        NonSecKind::BugFix => bug_fix(rng, &scope),
        NonSecKind::Performance => performance(rng, &scope),
        NonSecKind::Refactor => refactor(rng, &scope),
        NonSecKind::Documentation => documentation(rng, &scope),
        NonSecKind::Style => style(rng, &scope),
        NonSecKind::Rework => rework(rng, &scope),
        NonSecKind::ShapeTwin(_) => unreachable!("handled above"),
    };
    TargetPair { before, after, message: nonsec_message(rng, &scope, kind) }
}

fn base(rng: &mut Xoshiro256pp, s: &Scope) -> Vec<String> {
    let mut lines = vec![
        format!(
            "{} {}(struct {} *{}, int {})",
            s.ret_ty, s.fn_name, s.struct_name, s.obj, s.val
        ),
        "{".to_owned(),
        format!("    int {} = 0;", s.idx),
        format!("    char *{} = {}->data;", s.buf, s.obj),
    ];
    if rng.gen_bool(0.5) {
        lines.push(filler_statement(rng, s));
    }
    lines.push(format!("    for ({0} = 0; {0} < {1}; {0}++)", s.idx, s.val));
    lines.push(format!("        {}[{}] = {}({}, {});", s.buf, s.idx, s.helper, s.obj, s.idx));
    lines.push(format!("    return {};", s.idx));
    lines.push("}".to_owned());
    lines
}

fn new_feature(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let before = base(rng, s);
    let mut after = before.clone();
    match rng.gen_range(0..3) {
        0 => {
            // New optional behavior behind a flag (adds an if — looks
            // security-ish in the feature space, but adds functionality).
            let flag = ident(rng);
            let at = after.len() - 2;
            after.splice(
                at..at,
                [
                    format!("    if ({}->{}_enabled)", s.obj, flag),
                    format!("        {}_notify({}, {});", flag, s.obj, s.idx),
                ],
            );
        }
        1 => {
            // New statistics counter.
            let at = after.len() - 2;
            after.insert(at, format!("    {}->stats.{}_total += {};", s.obj, pick(rng, NOUNS), s.idx));
        }
        _ => {
            // New trailing helper function (pure addition).
            after.push(String::new());
            after.push(format!("int {}_{}(struct {} *{})", s.fn_name, pick(rng, VERBS), s.struct_name, s.obj));
            after.push("{".to_owned());
            after.push(format!("    return {}->pos;", s.obj));
            after.push("}".to_owned());
        }
    }
    (before, after)
}

fn bug_fix(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let before = base(rng, s);
    let mut after = before.clone();
    match rng.gen_range(0..6) {
        0 => {
            // Listing-2 style: special-case a condition to avoid a crash of
            // the *functional* kind (adds an if + call, a hard negative).
            let at = after.len() - 2;
            after.splice(
                at..at,
                [
                    format!("    if ({}->mode == 1)", s.obj),
                    format!("        {}_flush({});", pick(rng, VERBS), s.obj),
                ],
            );
        }
        1 => {
            // Off-by-one in an iteration count (functional, not memory):
            // loop bound variable swapped for the right field.
            let loop_at = after
                .iter()
                .position(|l| l.contains("for ("))
                .expect("base body has a loop");
            after[loop_at] =
                format!("    for ({0} = 0; {0} < {1}->count; {0}++)", s.idx, s.obj);
        }
        2 => {
            // Wrong return value.
            let ret_at = after.len() - 2;
            after[ret_at] = format!("    return {} > 0 ? {} : -EAGAIN;", s.idx, s.idx);
        }
        // The remaining variants are the **hard negatives** that make real
        // wild mining hard (and keep the nearest-link hit rate at the
        // paper's ~30% rather than ~100%): functional fixes whose code
        // shape is indistinguishable from a security check in the Table I
        // feature space — only semantics (and ground truth) differ.
        3 => {
            // Retry-on-full: syntactically a bound check.
            let at = after.len() - 3;
            after.splice(
                at..at,
                [
                    format!("    if ({} >= (int){})", s.idx, s.val),
                    "        return -EAGAIN;".to_owned(),
                ],
            );
        }
        4 => {
            // Skip-inactive: syntactically a null/flag check.
            after.splice(
                3..3,
                [
                    format!("    if (!{}->active)", s.obj),
                    "        return 0;".to_owned(),
                ],
            );
        }
        _ => {
            // Config clamp: syntactically a sanity check.
            let at = after.len() - 3;
            after.splice(
                at..at,
                [
                    format!("    if ({} > {}_MAX || {} == 0)", s.val, s.buf.to_uppercase(), s.val),
                    "        return -ERANGE;".to_owned(),
                ],
            );
        }
    }
    (before, after)
}

fn performance(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let before = base(rng, s);
    let mut after = before.clone();
    if rng.gen_bool(0.5) {
        // Hoist a repeated computation out of the loop.
        let loop_at = after.iter().position(|l| l.contains("for (")).expect("loop");
        after.insert(loop_at, format!("    int cached_{} = {}({}, 0);", s.val, s.helper, s.obj));
        after[loop_at + 2] = format!("        {}[{}] = cached_{} + {};", s.buf, s.idx, s.val, s.idx);
    } else {
        // Batch update outside the loop.
        let at = after.len() - 2;
        after.insert(at, format!("    prefetch({}->data);", s.obj));
    }
    (before, after)
}

fn refactor(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let before = base(rng, s);
    let new_name = format!("{}_{}", s.idx, pick(rng, &["iter", "cursor", "n"]));
    let after: Vec<String> = before
        .iter()
        .map(|l| l.replace(&format!(" {} ", s.idx), &format!(" {new_name} "))
            .replace(&format!("({}", s.idx), &format!("({new_name}"))
            .replace(&format!("{})", s.idx), &format!("{new_name})"))
            .replace(&format!("[{}]", s.idx), &format!("[{new_name}]"))
            .replace(&format!("{}++", s.idx), &format!("{new_name}++")))
        .collect();
    (before, after)
}

fn documentation(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let mut before = base(rng, s);
    before.insert(0, format!("/* {}: process one {} */", s.fn_name, pick(rng, NOUNS)));
    let mut after = before.clone();
    after[0] = format!(
        "/* {}: process one {}. Returns the consumed count. */",
        s.fn_name,
        pick(rng, NOUNS)
    );
    if rng.gen_bool(0.4) {
        after.insert(1, " /* NOTE: caller holds the ref. */".to_owned());
    }
    (before, after)
}

fn style(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let before = base(rng, s);
    let mut after = before.clone();
    // Re-indent one statement or convert spacing around an operator.
    if let Some(at) = after.iter().position(|l| l.contains(" = 0;")) {
        after[at] = after[at].replace(" = 0;", " = 0; ").trim_end().to_owned() + "";
        after[at] = format!("    {}", after[at].trim_start());
        // Ensure something actually changed; otherwise tweak brace style.
        if after[at] == before[at] {
            after[at] = before[at].replace(" = ", "  =  ");
        }
    }
    let _ = rng;
    (before, after)
}

/// A functional change reusing the security generators' code shapes, with
/// a functional-sounding message and mild *code tells*.
///
/// The tells mirror reality: a retry-path check returns `-EAGAIN` where an
/// input-validation fix returns `-EINVAL`; housekeeping changes drag a
/// trace call along. They are visible to a token-level model (the paper's
/// RNN reaches 83–93% precision against exactly such hard negatives) but
/// barely move the Table I *count* features (the Random Forest does much
/// worse — Table VI), and they leave the nearest-link feature clusters
/// overlapping (candidates verify at ~25%, Table II).
fn shape_twin(rng: &mut Xoshiro256pp, cat: crate::category::PatchCategory) -> TargetPair {
    let mut pair = crate::security::generate_security(rng, cat, false, false);

    // Idiom swaps applied to the *added* lines only: each maps a security
    // idiom to an equally plausible functional one with the same token
    // counts (literal↔literal, identifier↔identifier, keyword↔keyword),
    // so the Table I features barely move.
    let ret_swap = *&["return -EAGAIN;", "return 0;", "return -ENOSPC;"][rng.gen_range(0..3)];
    let subs: Vec<(&str, String)> = vec![
        ("return -1;", ret_swap.to_owned()),
        ("return -EINVAL;", ret_swap.to_owned()),
        ("return -EBUSY;", ret_swap.to_owned()),
        ("return -EFAULT;", ret_swap.to_owned()),
        ("return -EOVERFLOW;", ret_swap.to_owned()),
        ("mutex_lock(", "spin_lock(".to_owned()),
        ("mutex_unlock(", "spin_unlock(".to_owned()),
        (", 0, ", ", 0xff, ".to_owned()), // poison fill instead of scrub
        ("strlcpy(", "strscpy(".to_owned()),
        ("snprintf(", "scnprintf(".to_owned()),
        ("strncat(", "strlcat(".to_owned()),
        ("static ", "inline ".to_owned()),
        ("unsigned int ", "long long ".to_owned()),
        ("(size_t)", "(long)".to_owned()),
        (" = {0};", " = {1};".to_owned()),
        ("volatile ", "register ".to_owned()),
        (", size_t ", ", unsigned long ".to_owned()),
    ];
    let before_set: std::collections::HashSet<String> = pair.before.iter().cloned().collect();
    for line in pair.after.iter_mut() {
        if before_set.contains(line) {
            continue; // context line: changing it would add diff churn
        }
        for (from, to) in &subs {
            if line.contains(from) {
                *line = line.replace(from, to);
                break;
            }
        }
    }
    // Moved-statement twins relocate a different field's bookkeeping; the
    // substitution hits both versions so the move stays a pure move.
    if cat == crate::category::PatchCategory::MoveStatement {
        for line in pair.before.iter_mut().chain(pair.after.iter_mut()) {
            if line.contains("->length = (int)") {
                *line = line.replace("->length = (int)", "->epoch = (int)");
            }
        }
    }

    let verb = pick(rng, VERBS);
    let noun = pick(rng, NOUNS);
    pair.message = match rng.gen_range(0..5) {
        0 => format!("{verb}_{noun}: be more defensive about inputs"),
        1 => format!("refactor {noun} handling in {verb}_{noun}"),
        2 => format!("{verb}_{noun}: handle retry path"),
        3 => format!("simplify {noun} bookkeeping"),
        _ => format!("{verb}_{noun}: robustness cleanup"),
    };
    pair
}

/// A whole-function rewrite with no security intent: both versions are
/// random bodies, like `security::redesign` but without hardening.
fn rework(rng: &mut Xoshiro256pp, s: &Scope) -> (Vec<String>, Vec<String>) {
    let sig = format!(
        "{} {}(struct {} *{}, size_t {})",
        s.ret_ty, s.fn_name, s.struct_name, s.obj, s.len
    );
    let body = |rng: &mut Xoshiro256pp| {
        let mut v = vec![sig.clone(), "{".to_owned()];
        v.extend(crate::security::random_body(rng, s, false));
        v.push("}".to_owned());
        v
    };
    (body(rng), body(rng))
}

fn nonsec_message(rng: &mut Xoshiro256pp, s: &Scope, kind: NonSecKind) -> String {
    match kind {
        NonSecKind::NewFeature => match rng.gen_range(0..3) {
            0 => format!("{}: add {} support", s.fn_name, pick(rng, NOUNS)),
            1 => format!("add {} statistics to {}", pick(rng, NOUNS), s.fn_name),
            _ => format!("introduce {}_{} helper", s.fn_name, pick(rng, VERBS)),
        },
        NonSecKind::BugFix => match rng.gen_range(0..3) {
            0 => format!("{}: fix wrong {} count", s.fn_name, pick(rng, NOUNS)),
            1 => format!("fix {} regression in {}", pick(rng, NOUNS), s.fn_name),
            _ => format!("{}: handle mode-1 {} correctly", s.fn_name, pick(rng, NOUNS)),
        },
        NonSecKind::Performance => format!("{}: avoid recomputing {}", s.fn_name, pick(rng, NOUNS)),
        NonSecKind::Refactor => format!("{}: rename loop variable", s.fn_name),
        NonSecKind::Documentation => format!("{}: clarify comment", s.fn_name),
        NonSecKind::Style => format!("{}: style cleanup", s.fn_name),
        NonSecKind::Rework => match rng.gen_range(0..3) {
            0 => format!("rewrite {} for the new {} layout", s.fn_name, pick(rng, NOUNS)),
            1 => format!("{}: restructure {} processing", s.fn_name, pick(rng, NOUNS)),
            _ => format!("rework {} internals", s.fn_name),
        },
        NonSecKind::ShapeTwin(_) => unreachable!("twins build their own message"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [NonSecKind; 6] = [
        NonSecKind::NewFeature,
        NonSecKind::BugFix,
        NonSecKind::Performance,
        NonSecKind::Refactor,
        NonSecKind::Documentation,
        NonSecKind::Style,
    ];

    #[test]
    fn every_kind_changes_something() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        for k in ALL {
            for _ in 0..10 {
                let pair = generate_nonsecurity(&mut rng, k);
                assert_ne!(pair.before, pair.after, "{k:?} produced identical versions");
            }
        }
    }

    #[test]
    fn messages_do_not_mention_cves() {
        let mut rng = Xoshiro256pp::seed_from_u64(32);
        for k in ALL {
            for _ in 0..5 {
                let pair = generate_nonsecurity(&mut rng, k);
                assert!(!pair.message.contains("CVE"));
                assert!(!pair.message.to_lowercase().contains("security"));
            }
        }
    }

    #[test]
    fn kind_sampling_heavily_favors_features_and_fixes() {
        let mut rng = Xoshiro256pp::seed_from_u64(33);
        let n = 10_000;
        let mut feat = 0;
        for _ in 0..n {
            if matches!(sample_nonsec_kind(&mut rng), NonSecKind::NewFeature | NonSecKind::BugFix)
            {
                feat += 1;
            }
        }
        // 64 of 107 weight units are features+fixes after adding Rework.
        let frac = feat as f64 / n as f64;
        assert!((frac - 64.0 / 107.0).abs() < 0.03, "{frac}");
    }

    #[test]
    fn refactor_preserves_line_count() {
        let mut rng = Xoshiro256pp::seed_from_u64(34);
        let pair = generate_nonsecurity(&mut rng, NonSecKind::Refactor);
        assert_eq!(pair.before.len(), pair.after.len());
    }
}
