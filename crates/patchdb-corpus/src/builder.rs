//! C file scaffolding: preludes, filler functions, and rendering, shared
//! by the security and non-security change generators.

use patchdb_rt::rng::Xoshiro256pp;

use crate::words::{file_path, func_name, ident, pick, STRUCT_NAMES, TYPES};

/// Identifier bundle for one target function, so BEFORE and AFTER versions
/// agree on naming.
#[derive(Debug, Clone)]
pub(crate) struct Scope {
    pub fn_name: String,
    pub struct_name: String,
    pub obj: String,
    pub buf: String,
    pub len: String,
    pub idx: String,
    pub val: String,
    pub ret_ty: String,
    pub helper: String,
}

impl Scope {
    pub(crate) fn generate(rng: &mut Xoshiro256pp) -> Self {
        Scope {
            fn_name: func_name(rng),
            struct_name: pick(rng, STRUCT_NAMES).to_owned(),
            obj: ident(rng),
            buf: ident(rng),
            len: format!("{}_len", ident(rng)),
            idx: pick(rng, &["i", "j", "idx", "pos", "off"]).to_owned(),
            val: ident(rng),
            ret_ty: pick(rng, &["int", "long", "ssize_t"]).to_owned(),
            helper: func_name(rng),
        }
    }
}

/// A C file with a designated *target* function the change generators
/// rewrite; everything else is stable filler shared by both versions.
#[derive(Debug, Clone)]
pub(crate) struct FileSketch {
    pub path: String,
    prelude: Vec<String>,
    fillers_before: Vec<Vec<String>>,
    fillers_after: Vec<Vec<String>>,
}

impl FileSketch {
    pub(crate) fn generate(rng: &mut Xoshiro256pp) -> Self {
        let mut prelude = vec![
            "#include <stdlib.h>".to_owned(),
            "#include <string.h>".to_owned(),
        ];
        if rng.gen_bool(0.6) {
            prelude.push(format!("#include \"{}.h\"", ident(rng)));
        }
        if rng.gen_bool(0.5) {
            prelude.push(format!(
                "#define {}_MAX {}",
                ident(rng).to_uppercase(),
                [64, 128, 256, 512, 1024][rng.gen_range(0..5)]
            ));
        }
        prelude.push(String::new());

        let n_before = rng.gen_range(0..3);
        let n_after = rng.gen_range(0..2);
        let fillers_before = (0..n_before).map(|_| filler_function(rng)).collect();
        let fillers_after = (0..n_after).map(|_| filler_function(rng)).collect();

        FileSketch { path: file_path(rng), prelude, fillers_before, fillers_after }
    }

    /// Renders the file with the given target-function body in place.
    pub(crate) fn render(&self, target: &[String]) -> String {
        let mut lines: Vec<&str> = Vec::new();
        for l in &self.prelude {
            lines.push(l);
        }
        for f in &self.fillers_before {
            for l in f {
                lines.push(l);
            }
            lines.push("");
        }
        for l in target {
            lines.push(l);
        }
        lines.push("");
        for f in &self.fillers_after {
            for l in f {
                lines.push(l);
            }
            lines.push("");
        }
        patch_core::join_lines(&lines)
    }
}

/// A small complete function used as stable filler.
pub(crate) fn filler_function(rng: &mut Xoshiro256pp) -> Vec<String> {
    let name = func_name(rng);
    let arg = ident(rng);
    let local = ident(rng);
    let ty = pick(rng, TYPES);
    match rng.gen_range(0..3) {
        0 => vec![
            format!("static {ty} {name}({ty} {arg})"),
            "{".to_owned(),
            format!("    return {arg} * 2 + 1;"),
            "}".to_owned(),
        ],
        1 => vec![
            format!("void {name}(struct {} *{arg})", pick(rng, STRUCT_NAMES)),
            "{".to_owned(),
            format!("    if ({arg})"),
            format!("        {arg}->refcount++;"),
            "}".to_owned(),
        ],
        _ => vec![
            format!("static {ty} {name}(const char *{arg})"),
            "{".to_owned(),
            format!("    {ty} {local} = 0;"),
            format!("    while ({arg}[{local}])"),
            format!("        {local}++;"),
            format!("    return {local};"),
            "}".to_owned(),
        ],
    }
}

/// Extra no-op-ish statements inserted identically in both versions to add
/// variety around the change site.
pub(crate) fn filler_statement(rng: &mut Xoshiro256pp, scope: &Scope) -> String {
    match rng.gen_range(0..5) {
        0 => format!("    {}->flags |= 0x{:x};", scope.obj, rng.gen_range(1..256)),
        1 => format!("    log_debug(\"{}: %d\", {});", scope.fn_name, scope.idx),
        2 => format!("    {} = {} + {};", scope.val, scope.idx, rng.gen_range(1..16)),
        3 => format!("    ({})++;", scope.idx),
        _ => format!("    {}({});", scope.helper, scope.obj),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_file_is_parsable_c() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let sketch = FileSketch::generate(&mut rng);
        let target = vec![
            "int target(void)".to_owned(),
            "{".to_owned(),
            "    return 0;".to_owned(),
            "}".to_owned(),
        ];
        let text = sketch.render(&target);
        let fns = clang_lite::find_functions(&text);
        assert!(fns.iter().any(|f| f.name == "target"), "functions: {fns:?}");
    }

    #[test]
    fn render_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(8);
        let mut b = Xoshiro256pp::seed_from_u64(8);
        let ta = FileSketch::generate(&mut a).render(&[]);
        let tb = FileSketch::generate(&mut b).render(&[]);
        assert_eq!(ta, tb);
    }

    #[test]
    fn filler_functions_lex_cleanly() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..20 {
            let f = filler_function(&mut rng);
            let text = f.join("\n");
            // Balanced braces.
            let toks = clang_lite::tokenize(&text);
            let open = toks.iter().filter(|t| t.is_punct("{")).count();
            let close = toks.iter().filter(|t| t.is_punct("}")).count();
            assert_eq!(open, close, "{text}");
        }
    }
}
