//! # patch-core
//!
//! The diff substrate underneath the PatchDB reproduction: a faithful model
//! of Git-style unified diffs ("patches" in PatchDB terminology), together
//! with a parser, a printer, a patch application engine, and a Myers diff
//! implementation for producing patches from file pairs.
//!
//! In PatchDB (DSN 2021) a *patch* is a commit: a set of file diffs, each a
//! set of *hunks*, each a run of context/removed/added lines. Everything the
//! paper's pipelines do — crawling the NVD, collecting wild commits, feature
//! extraction (Table I), oversampling (Fig. 4/5) — consumes or produces the
//! types in this crate.
//!
//! ## Quick example
//!
//! ```rust
//! use patch_core::{Patch, diff_files};
//!
//! # fn main() -> Result<(), patch_core::ParsePatchError> {
//! let before = "int f(int a) {\n  return a;\n}\n";
//! let after  = "int f(int a) {\n  if (a < 0)\n    return 0;\n  return a;\n}\n";
//! let file = diff_files("src/f.c", before, after, 3);
//! assert_eq!(file.added_lines().count(), 2);
//!
//! // Round-trip through the textual form.
//! let patch = Patch::builder("deadbeef".repeat(5))
//!     .message("fix: clamp negative input")
//!     .file(file)
//!     .build();
//! let text = patch.to_unified_string();
//! let reparsed = Patch::parse(&text)?;
//! assert_eq!(patch, reparsed);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod apply;
mod commit;
mod diff;
mod error;
mod hunk;
mod parser;
mod patch;
mod printer;

pub use apply::{apply_file_diff, apply_patch, revert_file_diff, ApplyError};
pub use commit::CommitId;
pub use diff::{diff_files, diff_lines, EditOp};
pub use error::ParsePatchError;
pub use hunk::{Hunk, Line, LineKind};
pub use patch::{FileDiff, Patch, PatchBuilder};

/// Splits text into logical lines, tolerating a missing trailing newline.
///
/// Unlike [`str::lines`], this is the exact inverse of joining with `\n` and
/// appending a final newline, which is the convention the diff engine and
/// the apply engine share.
pub fn split_lines(text: &str) -> Vec<&str> {
    if text.is_empty() {
        return Vec::new();
    }
    let mut lines: Vec<&str> = text.split('\n').collect();
    if let Some(last) = lines.last() {
        if last.is_empty() {
            lines.pop();
        }
    }
    lines
}

/// Joins logical lines back into text with a trailing newline.
///
/// Inverse of [`split_lines`] for all inputs that end in a newline.
pub fn join_lines<S: AsRef<str>>(lines: &[S]) -> String {
    let mut out = String::new();
    for l in lines {
        out.push_str(l.as_ref());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_join_round_trip() {
        let text = "a\nb\n\nc\n";
        assert_eq!(join_lines(&split_lines(text)), text);
    }

    #[test]
    fn split_lines_empty() {
        assert!(split_lines("").is_empty());
    }

    #[test]
    fn split_lines_no_trailing_newline() {
        assert_eq!(split_lines("a\nb"), vec!["a", "b"]);
    }
}
