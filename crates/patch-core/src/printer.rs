//! Printer: renders a [`Patch`] back to its textual unified-diff form.

use crate::hunk::LineKind;
use crate::patch::Patch;

/// Renders `patch` in the `commit …` / `diff --git …` textual shape that
/// [`crate::parser`] accepts, so `parse(print(p)) == p` for valid patches.
pub(crate) fn print_patch(patch: &Patch) -> String {
    // Rough capacity: headers plus every body line with prefix and newline.
    let body: usize = patch
        .files
        .iter()
        .flat_map(|f| f.hunks.iter())
        .map(|h| h.lines.iter().map(|l| l.content.len() + 2).sum::<usize>() + 32)
        .sum();
    let mut out = String::with_capacity(body + patch.message.len() + 128);

    out.push_str("commit ");
    out.push_str(&patch.commit.to_string());
    out.push('\n');
    if !patch.message.is_empty() {
        out.push_str(&patch.message);
        out.push('\n');
    }
    out.push('\n');

    for file in &patch.files {
        out.push_str("diff --git a/");
        out.push_str(&file.old_path);
        out.push_str(" b/");
        out.push_str(&file.new_path);
        out.push('\n');
        if let Some(ix) = &file.index {
            out.push_str("index ");
            out.push_str(ix);
            out.push('\n');
        }
        out.push_str("--- a/");
        out.push_str(&file.old_path);
        out.push('\n');
        out.push_str("+++ b/");
        out.push_str(&file.new_path);
        out.push('\n');
        for hunk in &file.hunks {
            out.push_str(&hunk.header());
            out.push('\n');
            for line in &hunk.lines {
                match line.kind {
                    LineKind::Context => out.push(' '),
                    LineKind::Added => out.push('+'),
                    LineKind::Removed => out.push('-'),
                }
                out.push_str(&line.content);
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::hunk::{Hunk, Line};
    use crate::patch::{FileDiff, Patch};

    #[test]
    fn printed_patch_reparses_identically() {
        let patch = Patch::builder("ab".repeat(20))
            .message("subject\n\nbody line")
            .file(FileDiff {
                old_path: "src/a.c".into(),
                new_path: "src/a.c".into(),
                index: Some("1111111..2222222 100644".into()),
                hunks: vec![Hunk {
                    old_start: 3,
                    old_count: 3,
                    new_start: 3,
                    new_count: 4,
                    section: "f".into(),
                    lines: vec![
                        Line::context("int x = 0;"),
                        Line::removed("use(x);"),
                        Line::added("if (x >= 0)"),
                        Line::added("  use(x);"),
                        Line::context("return;"),
                    ],
                }],
            })
            .build();
        let text = patch.to_unified_string();
        let back = Patch::parse(&text).unwrap();
        assert_eq!(patch, back);
    }

    #[test]
    fn empty_message_prints_and_reparses() {
        let patch = Patch::builder("0".repeat(40))
            .file(FileDiff::new(
                "x.c",
                vec![Hunk {
                    old_start: 1,
                    old_count: 1,
                    new_start: 1,
                    new_count: 1,
                    section: String::new(),
                    lines: vec![Line::context("a")],
                }],
            ))
            .build();
        let back = Patch::parse(&patch.to_unified_string()).unwrap();
        assert_eq!(patch, back);
    }
}
