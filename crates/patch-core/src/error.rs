//! Error types for parsing unified diffs.

use std::fmt;

/// Error produced when parsing a unified diff / commit patch fails.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParsePatchError {
    /// A `commit <hash>` header carried something that is not 40 hex digits.
    InvalidCommitId(String),
    /// A `@@ -a,b +c,d @@` hunk header could not be parsed.
    InvalidHunkHeader {
        /// 1-based line number within the patch text.
        line: usize,
        /// The offending header text.
        text: String,
    },
    /// A body line did not start with ` `, `+`, `-`, or `\`.
    InvalidBodyLine {
        /// 1-based line number within the patch text.
        line: usize,
        /// The offending body text.
        text: String,
    },
    /// A hunk declared more old/new lines than its body supplied.
    TruncatedHunk {
        /// 1-based line number where the hunk started.
        line: usize,
    },
    /// The patch text contained no `diff --git` sections at all.
    NoFileDiffs,
    /// A `diff --git` header was malformed.
    InvalidDiffHeader {
        /// 1-based line number within the patch text.
        line: usize,
        /// The offending header text.
        text: String,
    },
}

impl fmt::Display for ParsePatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePatchError::InvalidCommitId(s) => {
                write!(f, "invalid commit id: {s:?} (expected 40 hex digits)")
            }
            ParsePatchError::InvalidHunkHeader { line, text } => {
                write!(f, "invalid hunk header at line {line}: {text:?}")
            }
            ParsePatchError::InvalidBodyLine { line, text } => {
                write!(f, "invalid body line at line {line}: {text:?}")
            }
            ParsePatchError::TruncatedHunk { line } => {
                write!(f, "hunk starting at line {line} ends before its declared length")
            }
            ParsePatchError::NoFileDiffs => write!(f, "patch contains no file diffs"),
            ParsePatchError::InvalidDiffHeader { line, text } => {
                write!(f, "invalid diff header at line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for ParsePatchError {}
