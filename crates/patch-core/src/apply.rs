//! Patch application: replay a [`FileDiff`] onto file content, forward or
//! in reverse. The oversampler (`patchdb-synth`) uses this to roll a file
//! back to its BEFORE state and forward to its AFTER state, exactly as the
//! paper rolls repositories back around a commit (Section III-C-1).

use std::collections::HashMap;
use std::fmt;

use crate::hunk::LineKind;
use crate::patch::{FileDiff, Patch};
use crate::{join_lines, split_lines};

/// Error produced when a diff does not apply to the given content.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApplyError {
    /// A hunk's context or removed lines did not match the file.
    ContextMismatch {
        /// Path of the file being patched.
        path: String,
        /// Index of the failing hunk within the file diff.
        hunk: usize,
        /// 1-based line in the file where matching failed.
        line: usize,
        /// What the hunk expected at that line.
        expected: String,
        /// What the file actually contained.
        found: String,
    },
    /// A hunk starts beyond the end of the file.
    OutOfBounds {
        /// Path of the file being patched.
        path: String,
        /// Index of the failing hunk within the file diff.
        hunk: usize,
        /// The hunk's (1-based) declared start line.
        start: usize,
        /// Number of lines actually in the file.
        file_lines: usize,
    },
    /// `apply_patch` was asked for a path the snapshot does not contain.
    MissingFile(String),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::ContextMismatch { path, hunk, line, expected, found } => write!(
                f,
                "{path}: hunk {hunk} mismatch at line {line}: expected {expected:?}, found {found:?}"
            ),
            ApplyError::OutOfBounds { path, hunk, start, file_lines } => write!(
                f,
                "{path}: hunk {hunk} starts at line {start} but file has {file_lines} lines"
            ),
            ApplyError::MissingFile(path) => write!(f, "snapshot has no file {path}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Applies `diff` to `old_text`, producing the new file content.
///
/// # Errors
///
/// Fails with [`ApplyError`] if any hunk's context/removed lines disagree
/// with `old_text` — the diff must apply exactly (no fuzz).
pub fn apply_file_diff(diff: &FileDiff, old_text: &str) -> Result<String, ApplyError> {
    transform(diff, old_text, false)
}

/// Reverse-applies `diff` to `new_text`, recovering the old file content.
///
/// # Errors
///
/// Fails with [`ApplyError`] if the diff's context/added lines disagree
/// with `new_text`.
pub fn revert_file_diff(diff: &FileDiff, new_text: &str) -> Result<String, ApplyError> {
    transform(diff, new_text, true)
}

fn transform(diff: &FileDiff, text: &str, reverse: bool) -> Result<String, ApplyError> {
    let src = split_lines(text);
    let mut out: Vec<&str> = Vec::with_capacity(src.len() + 16);
    let mut cursor = 0usize; // 0-based index into src of the next unconsumed line.

    let path = if reverse { &diff.old_path } else { &diff.new_path };

    for (hi, hunk) in diff.hunks.iter().enumerate() {
        let start = if reverse { hunk.new_start } else { hunk.old_start };
        let span = if reverse { hunk.new_count } else { hunk.old_count };
        // A zero-count range's `start` names the line *after which* the hunk
        // applies, so the first affected 0-based index is `start` itself;
        // otherwise it is `start - 1`.
        let start0 = if span == 0 { start } else { start.saturating_sub(1) };

        if start0 + span > src.len() {
            return Err(ApplyError::OutOfBounds {
                path: path.clone(),
                hunk: hi,
                start,
                file_lines: src.len(),
            });
        }
        // Copy the untouched gap before the hunk.
        if start0 < cursor {
            return Err(ApplyError::OutOfBounds {
                path: path.clone(),
                hunk: hi,
                start,
                file_lines: src.len(),
            });
        }
        out.extend_from_slice(&src[cursor..start0]);
        cursor = start0;

        for line in &hunk.lines {
            // In reverse mode added/removed swap roles.
            let kind = match (line.kind, reverse) {
                (LineKind::Added, true) => LineKind::Removed,
                (LineKind::Removed, true) => LineKind::Added,
                (k, _) => k,
            };
            match kind {
                LineKind::Context | LineKind::Removed => {
                    let found = src.get(cursor).copied();
                    if found != Some(line.content.as_str()) {
                        return Err(ApplyError::ContextMismatch {
                            path: path.clone(),
                            hunk: hi,
                            line: cursor + 1,
                            expected: line.content.clone(),
                            found: found.unwrap_or("<eof>").to_owned(),
                        });
                    }
                    if kind == LineKind::Context {
                        out.push(src[cursor]);
                    }
                    cursor += 1;
                }
                LineKind::Added => out.push(line.content.as_str()),
            }
        }
    }
    out.extend_from_slice(&src[cursor..]);
    Ok(join_lines(&out))
}

/// Applies every C-family file diff of `patch` to a snapshot of file
/// contents keyed by path, returning the patched snapshot.
///
/// Files the patch does not touch pass through unchanged. Files created by
/// the patch (not present in the snapshot) are materialized from empty
/// content.
///
/// # Errors
///
/// Propagates the first per-file [`ApplyError`].
pub fn apply_patch(
    patch: &Patch,
    snapshot: &HashMap<String, String>,
) -> Result<HashMap<String, String>, ApplyError> {
    let mut out = snapshot.clone();
    for file in &patch.files {
        let old = out.get(&file.old_path).cloned().unwrap_or_default();
        let new = apply_file_diff(file, &old)?;
        if file.old_path != file.new_path {
            out.remove(&file.old_path);
        }
        out.insert(file.new_path.clone(), new);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_files;
    use crate::hunk::{Hunk, Line};
    use crate::Patch;

    #[test]
    fn forward_and_reverse_are_inverse() {
        let old = "a\nb\nc\nd\ne\n";
        let new = "a\nB\nc\nd\nE\nF\n";
        let d = diff_files("f.c", old, new, 1);
        let forward = apply_file_diff(&d, old).unwrap();
        assert_eq!(forward, new);
        let back = revert_file_diff(&d, &forward).unwrap();
        assert_eq!(back, old);
    }

    #[test]
    fn mismatched_context_is_rejected() {
        let d = FileDiff::new(
            "f.c",
            vec![Hunk {
                old_start: 1,
                old_count: 1,
                new_start: 1,
                new_count: 1,
                section: String::new(),
                lines: vec![Line::context("expected")],
            }],
        );
        let err = apply_file_diff(&d, "actual\n").unwrap_err();
        assert!(matches!(err, ApplyError::ContextMismatch { line: 1, .. }));
    }

    #[test]
    fn hunk_past_eof_is_rejected() {
        let d = FileDiff::new(
            "f.c",
            vec![Hunk {
                old_start: 100,
                old_count: 1,
                new_start: 100,
                new_count: 1,
                section: String::new(),
                lines: vec![Line::context("x")],
            }],
        );
        assert!(matches!(
            apply_file_diff(&d, "a\n"),
            Err(ApplyError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn whole_patch_applies_to_snapshot() {
        let mut snap = HashMap::new();
        snap.insert("a.c".to_owned(), "1\n2\n3\n".to_owned());
        snap.insert("b.c".to_owned(), "x\n".to_owned());
        let patch = Patch::builder("1".repeat(40))
            .file(diff_files("a.c", "1\n2\n3\n", "1\ntwo\n3\n", 3))
            .build();
        let out = apply_patch(&patch, &snap).unwrap();
        assert_eq!(out["a.c"], "1\ntwo\n3\n");
        assert_eq!(out["b.c"], "x\n"); // untouched
    }

    #[test]
    fn missing_source_file_materializes_from_empty() {
        let patch = Patch::builder("1".repeat(40))
            .file(diff_files("new.c", "", "fresh\n", 3))
            .build();
        let out = apply_patch(&patch, &HashMap::new()).unwrap();
        assert_eq!(out["new.c"], "fresh\n");
    }

    #[test]
    fn multi_hunk_application_keeps_gaps() {
        let old: Vec<String> = (0..30).map(|i| format!("l{i}")).collect();
        let mut newv = old.clone();
        newv[3] = "X".into();
        newv[25] = "Y".into();
        let old_text = crate::join_lines(&old);
        let new_text = crate::join_lines(&newv);
        let d = diff_files("f.c", &old_text, &new_text, 2);
        assert_eq!(d.hunks.len(), 2);
        assert_eq!(apply_file_diff(&d, &old_text).unwrap(), new_text);
        assert_eq!(revert_file_diff(&d, &new_text).unwrap(), old_text);
    }
}
