//! Commit identifiers: 20-byte SHA-1-shaped hashes, as used by Git and by
//! the PatchDB paper ("each patch is identified by a 20-byte long hash").

use std::fmt;
use std::str::FromStr;


use crate::error::ParsePatchError;

/// A 20-byte commit identifier rendered as 40 lowercase hex characters.
///
/// The synthetic forge in `patchdb-corpus` mints these deterministically;
/// the parser accepts any 40-hex-digit string on a `commit` header line.
///
/// ```rust
/// use patch_core::CommitId;
/// let id: CommitId = "b84c2cab55948a5ee70860779b2640913e3ee1ed".parse().unwrap();
/// assert_eq!(id.to_string().len(), 40);
/// assert_eq!(id.short(), "b84c2cab");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CommitId([u8; 20]);

impl CommitId {
    /// Creates an identifier from its raw 20 bytes.
    pub fn from_bytes(bytes: [u8; 20]) -> Self {
        CommitId(bytes)
    }

    /// Derives a commit id deterministically from a 64-bit seed.
    ///
    /// Used by the synthetic corpus so that regeneration with the same seed
    /// yields byte-identical commit hashes. The expansion is an xorshift-mix
    /// chain, not a cryptographic hash; collisions across distinct seeds are
    /// astronomically unlikely for corpus-scale inputs.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut bytes = [0u8; 20];
        for chunk in bytes.chunks_mut(8) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            for (b, s) in chunk.iter_mut().zip(state.to_le_bytes()) {
                *b = s;
            }
        }
        CommitId(bytes)
    }

    /// Returns the raw bytes of the identifier.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Returns the conventional 8-character abbreviated form.
    pub fn short(&self) -> String {
        self.to_string()[..8].to_owned()
    }
}

impl fmt::Display for CommitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for CommitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CommitId({self})")
    }
}

impl FromStr for CommitId {
    type Err = ParsePatchError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 40 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(ParsePatchError::InvalidCommitId(s.to_owned()));
        }
        let mut bytes = [0u8; 20];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| ParsePatchError::InvalidCommitId(s.to_owned()))?;
        }
        Ok(CommitId(bytes))
    }
}

impl patchdb_rt::json::ToJson for CommitId {
    fn to_json(&self) -> patchdb_rt::json::Json {
        patchdb_rt::json::Json::Str(self.to_string())
    }
}

impl patchdb_rt::json::FromJson for CommitId {
    fn from_json(v: &patchdb_rt::json::Json) -> patchdb_rt::json::Result<Self> {
        let s = v
            .as_str()
            .ok_or_else(|| patchdb_rt::json::JsonError::new("expected commit id string"))?;
        s.parse().map_err(|e| patchdb_rt::json::JsonError::new(format!("{e:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let id = CommitId::from_seed(42);
        let text = id.to_string();
        let back: CommitId = text.parse().unwrap();
        assert_eq!(id, back);
    }

    #[test]
    fn from_seed_is_deterministic() {
        assert_eq!(CommitId::from_seed(7), CommitId::from_seed(7));
        assert_ne!(CommitId::from_seed(7), CommitId::from_seed(8));
    }

    #[test]
    fn rejects_bad_hex() {
        assert!("xyz".parse::<CommitId>().is_err());
        assert!("b84c2cab".parse::<CommitId>().is_err()); // too short
        let bad = "g".repeat(40);
        assert!(bad.parse::<CommitId>().is_err());
    }

    #[test]
    fn short_form() {
        let id: CommitId = "b84c2cab55948a5ee70860779b2640913e3ee1ed".parse().unwrap();
        assert_eq!(id.short(), "b84c2cab");
    }

    #[test]
    fn json_round_trip() {
        use patchdb_rt::json::{FromJson, Json, ToJson};
        let id = CommitId::from_seed(99);
        let json = id.to_json().to_compact_string();
        assert_eq!(json, format!("\"{id}\""));
        let back = CommitId::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(id, back);
    }
}
