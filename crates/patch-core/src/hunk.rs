//! Hunks: the consecutive removed/added line groups of a unified diff,
//! surrounded by context lines (PatchDB Section II-A).


/// The role a line plays inside a hunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineKind {
    /// Unchanged context (` ` prefix in the textual form).
    Context,
    /// Line present only in the new version (`+` prefix).
    Added,
    /// Line present only in the old version (`-` prefix).
    Removed,
}

impl LineKind {
    /// The single-character prefix used in the unified-diff textual form.
    pub fn prefix(self) -> char {
        match self {
            LineKind::Context => ' ',
            LineKind::Added => '+',
            LineKind::Removed => '-',
        }
    }
}

/// One line of a hunk body, without its prefix character or newline.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Line {
    /// Whether the line is context, added, or removed.
    pub kind: LineKind,
    /// The line's text (prefix and trailing newline stripped).
    pub content: String,
}

impl Line {
    /// Creates a context line.
    pub fn context(content: impl Into<String>) -> Self {
        Line { kind: LineKind::Context, content: content.into() }
    }

    /// Creates an added line.
    pub fn added(content: impl Into<String>) -> Self {
        Line { kind: LineKind::Added, content: content.into() }
    }

    /// Creates a removed line.
    pub fn removed(content: impl Into<String>) -> Self {
        Line { kind: LineKind::Removed, content: content.into() }
    }
}

/// One hunk of a file diff: `@@ -old_start,old_count +new_start,new_count @@`.
///
/// Line numbers are 1-based as in the textual format. `old_count` /
/// `new_count` count context+removed / context+added lines respectively.
///
/// ```rust
/// use patch_core::{Hunk, Line};
/// let hunk = Hunk {
///     old_start: 10, old_count: 3, new_start: 10, new_count: 4,
///     section: "bit_write_UMC".into(),
///     lines: vec![
///         Line::context("  if (byte[i] & 0x7f)"),
///         Line::removed("  if (byte[i] & 0x40)"),
///         Line::added("  if (byte[i] & 0x40 && i > 0)"),
///         Line::added("    i--;"),
///         Line::context("  byte[i] &= 0x7f;"),
///     ],
/// };
/// assert!(hunk.validate().is_ok());
/// assert_eq!(hunk.added_count(), 2);
/// assert_eq!(hunk.removed_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hunk {
    /// 1-based first line of the hunk in the old file.
    pub old_start: usize,
    /// Number of old-file lines the hunk spans (context + removed).
    pub old_count: usize,
    /// 1-based first line of the hunk in the new file.
    pub new_start: usize,
    /// Number of new-file lines the hunk spans (context + added).
    pub new_count: usize,
    /// The free text after the closing `@@` (usually the enclosing function).
    pub section: String,
    /// The hunk body in order.
    pub lines: Vec<Line>,
}

patchdb_rt::impl_json_unit_enum!(LineKind { Context, Added, Removed });
patchdb_rt::impl_to_from_json!(Line { kind, content });
patchdb_rt::impl_to_from_json!(Hunk { old_start, old_count, new_start, new_count, section, lines });

impl Hunk {
    /// Iterates over the added lines of the hunk.
    pub fn added(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.kind == LineKind::Added)
    }

    /// Iterates over the removed lines of the hunk.
    pub fn removed(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.kind == LineKind::Removed)
    }

    /// Iterates over the context lines of the hunk.
    pub fn context(&self) -> impl Iterator<Item = &Line> {
        self.lines.iter().filter(|l| l.kind == LineKind::Context)
    }

    /// Number of added lines.
    pub fn added_count(&self) -> usize {
        self.added().count()
    }

    /// Number of removed lines.
    pub fn removed_count(&self) -> usize {
        self.removed().count()
    }

    /// The old-file text of the hunk (context + removed lines, in order).
    pub fn old_lines(&self) -> Vec<&str> {
        self.lines
            .iter()
            .filter(|l| l.kind != LineKind::Added)
            .map(|l| l.content.as_str())
            .collect()
    }

    /// The new-file text of the hunk (context + added lines, in order).
    pub fn new_lines(&self) -> Vec<&str> {
        self.lines
            .iter()
            .filter(|l| l.kind != LineKind::Removed)
            .map(|l| l.content.as_str())
            .collect()
    }

    /// Checks that the declared counts match the body.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch found.
    pub fn validate(&self) -> Result<(), String> {
        let old = self.lines.iter().filter(|l| l.kind != LineKind::Added).count();
        let new = self.lines.iter().filter(|l| l.kind != LineKind::Removed).count();
        if old != self.old_count {
            return Err(format!(
                "hunk declares {} old lines but body has {old}",
                self.old_count
            ));
        }
        if new != self.new_count {
            return Err(format!(
                "hunk declares {} new lines but body has {new}",
                self.new_count
            ));
        }
        Ok(())
    }

    /// True when the hunk changes nothing (all context).
    pub fn is_trivial(&self) -> bool {
        self.lines.iter().all(|l| l.kind == LineKind::Context)
    }

    /// Renders the `@@ -a,b +c,d @@ section` header line.
    pub fn header(&self) -> String {
        let mut h = format!(
            "@@ -{},{} +{},{} @@",
            self.old_start, self.old_count, self.new_start, self.new_count
        );
        if !self.section.is_empty() {
            h.push(' ');
            h.push_str(&self.section);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hunk {
        Hunk {
            old_start: 5,
            old_count: 3,
            new_start: 5,
            new_count: 3,
            section: "main".into(),
            lines: vec![
                Line::context("a"),
                Line::removed("b"),
                Line::added("B"),
                Line::context("c"),
            ],
        }
    }

    #[test]
    fn counts() {
        let h = sample();
        assert_eq!(h.added_count(), 1);
        assert_eq!(h.removed_count(), 1);
        assert_eq!(h.context().count(), 2);
    }

    #[test]
    fn old_new_projection() {
        let h = sample();
        assert_eq!(h.old_lines(), vec!["a", "b", "c"]);
        assert_eq!(h.new_lines(), vec!["a", "B", "c"]);
    }

    #[test]
    fn validate_detects_bad_counts() {
        let mut h = sample();
        assert!(h.validate().is_ok());
        h.old_count = 99;
        assert!(h.validate().is_err());
    }

    #[test]
    fn header_rendering() {
        let h = sample();
        assert_eq!(h.header(), "@@ -5,3 +5,3 @@ main");
    }

    #[test]
    fn trivial_hunk() {
        let h = Hunk {
            old_start: 1,
            old_count: 1,
            new_start: 1,
            new_count: 1,
            section: String::new(),
            lines: vec![Line::context("x")],
        };
        assert!(h.is_trivial());
        assert!(!sample().is_trivial());
    }
}
