//! Parser for the textual commit-patch form (`git show` / GitHub `.patch`).

use crate::error::ParsePatchError;
use crate::hunk::{Hunk, Line, LineKind};
use crate::patch::{FileDiff, Patch};

/// Parses one commit patch.
///
/// Accepted shape (the shape [`crate::printer::print_patch`] emits and a
/// superset of what GitHub's `.patch` endpoint returns for single commits):
///
/// ```text
/// commit <40-hex>
/// <message lines...>
///
/// diff --git a/<path> b/<path>
/// index <old>..<new> [mode]
/// --- a/<path>
/// +++ b/<path>
/// @@ -a,b +c,d @@ [section]
/// <body lines>
/// ```
pub(crate) fn parse_patch(text: &str) -> Result<Patch, ParsePatchError> {
    let lines: Vec<&str> = text.split('\n').collect();
    let mut i = 0usize;

    // Commit header.
    let mut commit = None;
    if let Some(first) = lines.first() {
        if let Some(rest) = first.strip_prefix("commit ") {
            commit = Some(rest.trim().parse()?);
            i = 1;
        }
    }
    let commit = commit.unwrap_or_else(|| crate::CommitId::from_bytes([0; 20]));

    // Message: everything up to the first `diff --git`.
    let mut message_lines: Vec<&str> = Vec::new();
    while i < lines.len() && !lines[i].starts_with("diff --git ") {
        message_lines.push(lines[i]);
        i += 1;
    }
    while message_lines.last().is_some_and(|l| l.is_empty()) {
        message_lines.pop();
    }
    let message = message_lines.join("\n");

    let mut files = Vec::new();
    while i < lines.len() {
        if !lines[i].starts_with("diff --git ") {
            // Trailing junk after the last hunk (e.g. `-- \n2.17.1`).
            break;
        }
        let (file, next) = parse_file_diff(&lines, i)?;
        files.push(file);
        i = next;
    }

    if files.is_empty() {
        return Err(ParsePatchError::NoFileDiffs);
    }
    Ok(Patch { commit, message, files })
}

fn parse_file_diff(
    lines: &[&str],
    start: usize,
) -> Result<(FileDiff, usize), ParsePatchError> {
    let header = lines[start];
    let rest = header.strip_prefix("diff --git ").expect("caller checked prefix");
    let (old_raw, new_raw) =
        rest.split_once(' ').ok_or_else(|| ParsePatchError::InvalidDiffHeader {
            line: start + 1,
            text: header.to_owned(),
        })?;
    let strip = |p: &str| {
        p.strip_prefix("a/")
            .or_else(|| p.strip_prefix("b/"))
            .unwrap_or(p)
            .to_owned()
    };
    let mut file = FileDiff {
        old_path: strip(old_raw),
        new_path: strip(new_raw),
        index: None,
        hunks: Vec::new(),
    };

    let mut i = start + 1;
    // Optional metadata lines before the first hunk: index, ---, +++, mode.
    while i < lines.len() {
        let l = lines[i];
        if l.starts_with("@@ ") {
            break;
        }
        if l.starts_with("diff --git ") {
            return Ok((file, i));
        }
        if let Some(ix) = l.strip_prefix("index ") {
            file.index = Some(ix.to_owned());
        } else if let Some(p) = l.strip_prefix("--- ") {
            if p != "/dev/null" {
                file.old_path = strip(p);
            }
        } else if let Some(p) = l.strip_prefix("+++ ") {
            if p != "/dev/null" {
                file.new_path = strip(p);
            }
        }
        // old mode / new mode / similarity / rename lines are tolerated.
        i += 1;
    }

    while i < lines.len() && lines[i].starts_with("@@ ") {
        let (hunk, next) = parse_hunk(lines, i)?;
        file.hunks.push(hunk);
        i = next;
    }
    Ok((file, i))
}

fn parse_hunk(lines: &[&str], start: usize) -> Result<(Hunk, usize), ParsePatchError> {
    let header = lines[start];
    let bad = || ParsePatchError::InvalidHunkHeader { line: start + 1, text: header.to_owned() };

    let body_idx = header.find(" @@").ok_or_else(bad)?;
    let ranges = &header[3..body_idx]; // between "@@ " and " @@"
    let section = header[body_idx + 3..].trim_start().to_owned();

    let (old_part, new_part) = ranges.split_once(' ').ok_or_else(bad)?;
    let (old_start, old_count) = parse_range(old_part.strip_prefix('-').ok_or_else(bad)?)
        .ok_or_else(bad)?;
    let (new_start, new_count) = parse_range(new_part.strip_prefix('+').ok_or_else(bad)?)
        .ok_or_else(bad)?;

    let mut hunk = Hunk {
        old_start,
        old_count,
        new_start,
        new_count,
        section,
        lines: Vec::new(),
    };

    let mut remaining_old = old_count;
    let mut remaining_new = new_count;
    let mut i = start + 1;
    while remaining_old > 0 || remaining_new > 0 {
        let Some(raw) = lines.get(i) else {
            return Err(ParsePatchError::TruncatedHunk { line: start + 1 });
        };
        let (kind, content) = match raw.chars().next() {
            Some(' ') | None => (LineKind::Context, raw.get(1..).unwrap_or("")),
            Some('+') => (LineKind::Added, &raw[1..]),
            Some('-') => (LineKind::Removed, &raw[1..]),
            Some('\\') => {
                // "\ No newline at end of file" — metadata, not content.
                i += 1;
                continue;
            }
            _ => {
                return Err(ParsePatchError::InvalidBodyLine {
                    line: i + 1,
                    text: (*raw).to_owned(),
                })
            }
        };
        match kind {
            LineKind::Context => {
                if remaining_old == 0 || remaining_new == 0 {
                    return Err(ParsePatchError::TruncatedHunk { line: start + 1 });
                }
                remaining_old -= 1;
                remaining_new -= 1;
            }
            LineKind::Removed => {
                if remaining_old == 0 {
                    return Err(ParsePatchError::TruncatedHunk { line: start + 1 });
                }
                remaining_old -= 1;
            }
            LineKind::Added => {
                if remaining_new == 0 {
                    return Err(ParsePatchError::TruncatedHunk { line: start + 1 });
                }
                remaining_new -= 1;
            }
        }
        hunk.lines.push(Line { kind, content: content.to_owned() });
        i += 1;
    }
    Ok((hunk, i))
}

/// Parses `start[,count]`; a missing count means 1 per the unified format.
fn parse_range(s: &str) -> Option<(usize, usize)> {
    match s.split_once(',') {
        Some((a, b)) => Some((a.parse().ok()?, b.parse().ok()?)),
        None => Some((s.parse().ok()?, 1)),
    }
}

#[cfg(test)]
mod tests {
    use crate::{LineKind, ParsePatchError, Patch};

    const SAMPLE: &str = "\
commit b84c2cab55948a5ee70860779b2640913e3ee1ed
Fix stack underflow (CVE-2019-20912)

diff --git a/src/bits.c b/src/bits.c
index 014b04fe4..a3692bdc6 100644
--- a/src/bits.c
+++ b/src/bits.c
@@ -953,7 +953,7 @@ bit_write_UMC
     if (byte[i] & 0x7f)
       break;

-  if (byte[i] & 0x40)
+  if (byte[i] & 0x40 && i > 0)
     {
       byte[i] &= 0x7f;
       for (j = 4; j >= i; j--)
";

    #[test]
    fn parses_paper_listing_1() {
        let p = Patch::parse(SAMPLE).unwrap();
        assert_eq!(p.commit.to_string(), "b84c2cab55948a5ee70860779b2640913e3ee1ed");
        assert_eq!(p.message.lines().next().unwrap(), "Fix stack underflow (CVE-2019-20912)");
        assert_eq!(p.files.len(), 1);
        let f = &p.files[0];
        assert_eq!(f.old_path, "src/bits.c");
        assert_eq!(f.index.as_deref(), Some("014b04fe4..a3692bdc6 100644"));
        assert_eq!(f.hunks.len(), 1);
        let h = &f.hunks[0];
        assert_eq!((h.old_start, h.old_count, h.new_start, h.new_count), (953, 7, 953, 7));
        assert_eq!(h.section, "bit_write_UMC");
        assert_eq!(h.added_count(), 1);
        assert_eq!(h.removed_count(), 1);
        assert!(h.validate().is_ok());
    }

    #[test]
    fn parse_print_round_trip() {
        let p = Patch::parse(SAMPLE).unwrap();
        let printed = p.to_unified_string();
        let again = Patch::parse(&printed).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn multiple_files_and_hunks() {
        let text = "\
commit 0000000000000000000000000000000000000000
msg

diff --git a/a.c b/a.c
--- a/a.c
+++ b/a.c
@@ -1,2 +1,2 @@
-x
+y
 z
@@ -10,1 +10,2 @@ f
 k
+l
diff --git a/b.h b/b.h
--- a/b.h
+++ b/b.h
@@ -1 +1 @@
-p
+q
";
        let p = Patch::parse(text).unwrap();
        assert_eq!(p.files.len(), 2);
        assert_eq!(p.files[0].hunks.len(), 2);
        assert_eq!(p.files[1].hunks[0].old_count, 1);
        assert_eq!(p.hunk_count(), 3);
    }

    #[test]
    fn rejects_truncated_hunk() {
        let text = "\
diff --git a/a.c b/a.c
@@ -1,3 +1,3 @@
 only one line
";
        assert!(matches!(
            Patch::parse(text),
            Err(ParsePatchError::TruncatedHunk { .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(Patch::parse("hello world"), Err(ParsePatchError::NoFileDiffs)));
    }

    #[test]
    fn rejects_bad_hunk_header() {
        let text = "\
diff --git a/a.c b/a.c
@@ nonsense @@
";
        assert!(matches!(
            Patch::parse(text),
            Err(ParsePatchError::InvalidHunkHeader { .. })
        ));
    }

    #[test]
    fn range_without_count_defaults_to_one() {
        let text = "\
diff --git a/a.c b/a.c
@@ -5 +5 @@
-a
+b
";
        let p = Patch::parse(text).unwrap();
        let h = &p.files[0].hunks[0];
        assert_eq!((h.old_start, h.old_count), (5, 1));
    }

    #[test]
    fn tolerates_no_newline_marker() {
        let text = "\
diff --git a/a.c b/a.c
@@ -1 +1 @@
-a
\\ No newline at end of file
+b
";
        let p = Patch::parse(text).unwrap();
        assert_eq!(p.files[0].hunks[0].lines.len(), 2);
    }

    #[test]
    fn dev_null_paths_keep_git_names() {
        let text = "\
diff --git a/new.c b/new.c
--- /dev/null
+++ b/new.c
@@ -0,0 +1,1 @@
+int x;
";
        let p = Patch::parse(text).unwrap();
        assert_eq!(p.files[0].new_path, "new.c");
        assert_eq!(p.files[0].hunks[0].added_count(), 1);
    }

    #[test]
    fn empty_context_line_is_context() {
        let text = "\
diff --git a/a.c b/a.c
@@ -1,2 +1,2 @@

-a
+b
";
        let p = Patch::parse(text).unwrap();
        let h = &p.files[0].hunks[0];
        assert_eq!(h.lines[0].kind, LineKind::Context);
        assert_eq!(h.lines[0].content, "");
    }
}
