//! Patches (commits) and per-file diffs.


use crate::commit::CommitId;
use crate::error::ParsePatchError;
use crate::hunk::Hunk;

/// File extensions the PatchDB pipeline treats as C/C++ source
/// (Section III-A: `.c`, `.cpp`, `.h`, `.hpp`, plus common variants).
pub(crate) const C_EXTENSIONS: &[&str] = &["c", "cc", "cpp", "cxx", "h", "hh", "hpp", "hxx"];

/// The diff of one file within a patch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FileDiff {
    /// Path of the file in the old tree (without the `a/` prefix).
    pub old_path: String,
    /// Path of the file in the new tree (without the `b/` prefix).
    pub new_path: String,
    /// Abbreviated blob ids as they appear on the `index` line, if any.
    pub index: Option<String>,
    /// The file's hunks, in old-file order.
    pub hunks: Vec<Hunk>,
}

impl FileDiff {
    /// Creates a diff for a file modified in place.
    pub fn new(path: impl Into<String>, hunks: Vec<Hunk>) -> Self {
        let path = path.into();
        FileDiff { old_path: path.clone(), new_path: path, index: None, hunks }
    }

    /// True when the file looks like C/C++ source per the paper's filter.
    ///
    /// ```rust
    /// use patch_core::FileDiff;
    /// assert!(FileDiff::new("src/bits.c", vec![]).is_c_family());
    /// assert!(!FileDiff::new("ChangeLog", vec![]).is_c_family());
    /// assert!(!FileDiff::new("configure.sh", vec![]).is_c_family());
    /// ```
    pub fn is_c_family(&self) -> bool {
        let ext = |p: &str| p.rsplit_once('.').map(|(_, e)| e.to_ascii_lowercase());
        match (ext(&self.old_path), ext(&self.new_path)) {
            (Some(a), _) if C_EXTENSIONS.contains(&a.as_str()) => true,
            (_, Some(b)) if C_EXTENSIONS.contains(&b.as_str()) => true,
            _ => false,
        }
    }

    /// Iterates over all added lines across hunks.
    pub fn added_lines(&self) -> impl Iterator<Item = &crate::Line> {
        self.hunks.iter().flat_map(|h| h.added())
    }

    /// Iterates over all removed lines across hunks.
    pub fn removed_lines(&self) -> impl Iterator<Item = &crate::Line> {
        self.hunks.iter().flat_map(|h| h.removed())
    }

    /// Validates every hunk's declared counts and ordering.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_end = 0usize;
        for (i, h) in self.hunks.iter().enumerate() {
            h.validate().map_err(|e| format!("hunk {i}: {e}"))?;
            // A zero-count old range at `start` sits *after* old line `start`
            // and occupies no lines; treat its begin as `start + 1`.
            let begin = if h.old_count == 0 { h.old_start + 1 } else { h.old_start };
            if begin <= prev_end {
                return Err(format!("hunk {i} overlaps or is out of order"));
            }
            prev_end = if h.old_count == 0 {
                h.old_start
            } else {
                h.old_start + h.old_count - 1
            };
        }
        Ok(())
    }
}

/// A patch: one commit's metadata plus its file diffs.
///
/// Matches the textual form PatchDB downloads from
/// `https://github.com/{owner}/{repo}/commit/{hash}.patch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Patch {
    /// The commit hash identifying the patch.
    pub commit: CommitId,
    /// The commit message (subject and body, newline separated).
    pub message: String,
    /// Per-file diffs.
    pub files: Vec<FileDiff>,
}

impl Patch {
    /// Starts building a patch from a commit hash.
    ///
    /// # Panics
    ///
    /// Panics if `commit` is not 40 hex digits; use [`PatchBuilder::new`]
    /// with a pre-parsed [`CommitId`] for fallible construction.
    pub fn builder(commit: impl AsRef<str>) -> PatchBuilder {
        PatchBuilder::new(
            commit
                .as_ref()
                .parse()
                .expect("Patch::builder requires a valid 40-hex commit id"),
        )
    }

    /// Parses the textual form produced by `git format-patch` /
    /// `github.com/.../commit/<hash>.patch` (and by [`Patch::to_unified_string`]).
    ///
    /// # Errors
    ///
    /// Returns [`ParsePatchError`] when headers or hunk bodies are malformed.
    pub fn parse(text: &str) -> Result<Self, ParsePatchError> {
        crate::parser::parse_patch(text)
    }

    /// Renders the patch back to its textual unified-diff form.
    pub fn to_unified_string(&self) -> String {
        crate::printer::print_patch(self)
    }

    /// Total number of hunks across all files.
    pub fn hunk_count(&self) -> usize {
        self.files.iter().map(|f| f.hunks.len()).sum()
    }

    /// Iterates over all hunks across all files.
    pub fn hunks(&self) -> impl Iterator<Item = &Hunk> {
        self.files.iter().flat_map(|f| f.hunks.iter())
    }

    /// Returns a copy with non-C/C++ file diffs removed, mirroring the
    /// paper's cleaning step (Section III-A: drop `.changelog`, `.sh`, …).
    ///
    /// Returns `None` when nothing C-like remains.
    pub fn retain_c_files(&self) -> Option<Patch> {
        let files: Vec<FileDiff> =
            self.files.iter().filter(|f| f.is_c_family()).cloned().collect();
        if files.is_empty() {
            None
        } else {
            Some(Patch { commit: self.commit, message: self.message.clone(), files })
        }
    }

    /// Validates all file diffs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        for f in &self.files {
            f.validate().map_err(|e| format!("{}: {e}", f.new_path))?;
        }
        Ok(())
    }
}

patchdb_rt::impl_to_from_json!(FileDiff { old_path, new_path, index, hunks });
patchdb_rt::impl_to_from_json!(Patch { commit, message, files });

/// Builder for [`Patch`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct PatchBuilder {
    commit: CommitId,
    message: String,
    files: Vec<FileDiff>,
}

impl PatchBuilder {
    /// Creates a builder for the given commit id.
    pub fn new(commit: CommitId) -> Self {
        PatchBuilder { commit, message: String::new(), files: Vec::new() }
    }

    /// Sets the commit message.
    pub fn message(mut self, message: impl Into<String>) -> Self {
        self.message = message.into();
        self
    }

    /// Appends a file diff.
    pub fn file(mut self, file: FileDiff) -> Self {
        self.files.push(file);
        self
    }

    /// Appends several file diffs.
    pub fn files(mut self, files: impl IntoIterator<Item = FileDiff>) -> Self {
        self.files.extend(files);
        self
    }

    /// Finishes building the patch.
    pub fn build(self) -> Patch {
        Patch { commit: self.commit, message: self.message, files: self.files }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hunk::{Hunk, Line};

    fn hunk() -> Hunk {
        Hunk {
            old_start: 1,
            old_count: 2,
            new_start: 1,
            new_count: 2,
            section: String::new(),
            lines: vec![Line::context("a"), Line::removed("b"), Line::added("c")],
        }
    }

    #[test]
    fn c_family_detection() {
        for p in ["x.c", "x.CPP", "a/b/c.hpp", "y.cc", "z.hxx"] {
            assert!(FileDiff::new(p, vec![]).is_c_family(), "{p}");
        }
        for p in ["ChangeLog", "build.sh", "test.phpt", "Kconfig", "a.rs"] {
            assert!(!FileDiff::new(p, vec![]).is_c_family(), "{p}");
        }
    }

    #[test]
    fn retain_c_files_strips_docs() {
        let p = Patch::builder("0".repeat(40))
            .file(FileDiff::new("src/x.c", vec![hunk()]))
            .file(FileDiff::new("doc/ChangeLog", vec![hunk()]))
            .build();
        let cleaned = p.retain_c_files().unwrap();
        assert_eq!(cleaned.files.len(), 1);
        assert_eq!(cleaned.files[0].new_path, "src/x.c");
    }

    #[test]
    fn retain_c_files_none_when_empty() {
        let p = Patch::builder("0".repeat(40))
            .file(FileDiff::new("README.md", vec![hunk()]))
            .build();
        assert!(p.retain_c_files().is_none());
    }

    #[test]
    fn validate_rejects_out_of_order_hunks() {
        let mut f = FileDiff::new("x.c", vec![hunk(), hunk()]);
        assert!(f.validate().is_err());
        f.hunks[1].old_start = 10;
        f.hunks[1].new_start = 10;
        assert!(f.validate().is_ok());
    }

    #[test]
    fn builder_accumulates() {
        let p = Patch::builder("ab".repeat(20))
            .message("m")
            .files(vec![FileDiff::new("a.c", vec![]), FileDiff::new("b.c", vec![])])
            .build();
        assert_eq!(p.files.len(), 2);
        assert_eq!(p.message, "m");
    }
}
