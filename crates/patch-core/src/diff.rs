//! Myers O(ND) diff between two texts, grouped into context hunks.
//!
//! The synthetic corpus generates *file pairs* (before/after a change) and
//! needs real unified diffs out of them — the same artifact `git show`
//! would produce. This module provides that path.

use crate::hunk::{Hunk, Line};
use crate::patch::FileDiff;
use crate::split_lines;

/// One edit-script operation over line indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditOp {
    /// Lines `old[i]` and `new[j]` match (indices into the line arrays).
    Equal(usize, usize),
    /// Line `old[i]` was deleted.
    Delete(usize),
    /// Line `new[j]` was inserted.
    Insert(usize),
}

/// Computes a minimal line-level edit script between `old` and `new`
/// using Myers' greedy O(ND) algorithm.
///
/// The result replays `old` into `new`: equal ops advance both sides,
/// deletes consume `old`, inserts consume `new`.
pub fn diff_lines(old: &[&str], new: &[&str]) -> Vec<EditOp> {
    let n = old.len() as isize;
    let m = new.len() as isize;
    let max = n + m;
    if max == 0 {
        return Vec::new();
    }

    // v[k + offset] = furthest x on diagonal k. `trace[d]` is the v array
    // as it stood entering depth d of the forward pass, which is exactly
    // what the backtracking pass needs.
    let offset = max;
    let mut v = vec![0isize; (2 * max + 1) as usize];
    let mut trace: Vec<Vec<isize>> = Vec::new();

    'outer: for d in 0..=max {
        trace.push(v.clone());
        let mut k = -d;
        while k <= d {
            let idx = (k + offset) as usize;
            let mut x = if k == -d || (k != d && v[idx - 1] < v[idx + 1]) {
                v[idx + 1]
            } else {
                v[idx - 1] + 1
            };
            let mut y = x - k;
            while x < n && y < m && old[x as usize] == new[y as usize] {
                x += 1;
                y += 1;
            }
            v[idx] = x;
            if x >= n && y >= m {
                break 'outer;
            }
            k += 2;
        }
    }
    // The final v (post-break) is needed for the deepest backtrack step.
    trace.push(v);

    // Backtrack from (n, m) following the move that produced each depth.
    let mut ops = Vec::new();
    let (mut x, mut y) = (n, m);
    for d in (0..trace.len() as isize - 1).rev() {
        let vd = &trace[d as usize];
        let k = x - y;
        let prev_k = if k == -d
            || (k != d && vd[(k - 1 + offset) as usize] < vd[(k + 1 + offset) as usize])
        {
            k + 1
        } else {
            k - 1
        };
        let prev_x = vd[(prev_k + offset) as usize];
        let prev_y = prev_x - prev_k;

        // Diagonal snake back to the move's landing point.
        while x > prev_x && y > prev_y {
            x -= 1;
            y -= 1;
            ops.push(EditOp::Equal(x as usize, y as usize));
        }
        if d > 0 {
            if x == prev_x {
                // Down move: insertion of new[prev_y].
                ops.push(EditOp::Insert(prev_y as usize));
            } else {
                // Right move: deletion of old[prev_x].
                ops.push(EditOp::Delete(prev_x as usize));
            }
        }
        x = prev_x;
        y = prev_y;
    }
    // Leading snake before the first edit (d == 0 row).
    while x > 0 && y > 0 {
        x -= 1;
        y -= 1;
        ops.push(EditOp::Equal(x as usize, y as usize));
    }
    ops.reverse();
    ops
}

/// Diffs two file contents and groups the edit script into hunks with
/// `context` lines of surrounding context (3 matches Git's default).
///
/// Returns a [`FileDiff`] with no hunks when the files are identical.
pub fn diff_files(path: &str, old_text: &str, new_text: &str, context: usize) -> FileDiff {
    let old = split_lines(old_text);
    let new = split_lines(new_text);
    let ops = diff_lines(&old, &new);

    let mut hunks: Vec<Hunk> = Vec::new();
    let mut i = 0usize;
    // 0-based counts of old/new lines consumed before op `i`.
    let mut old_pos = 0usize;
    let mut new_pos = 0usize;

    while i < ops.len() {
        // Skip to the next non-equal op.
        if let EditOp::Equal(..) = ops[i] {
            old_pos += 1;
            new_pos += 1;
            i += 1;
            continue;
        }

        // A change group starts; back up `context` equal ops.
        let group_start = i;
        let mut ctx_start = group_start;
        let mut back = 0;
        while ctx_start > 0 && back < context {
            match ops[ctx_start - 1] {
                EditOp::Equal(..) => {
                    ctx_start -= 1;
                    back += 1;
                }
                _ => break,
            }
        }

        // Extend the group forward, merging changes separated by fewer than
        // 2 * context equal lines (matching diff -u's hunk merging).
        let mut end = group_start;
        let mut last_change = group_start;
        while end < ops.len() {
            match ops[end] {
                EditOp::Equal(..) => {
                    if end - last_change > 2 * context {
                        break;
                    }
                }
                _ => last_change = end,
            }
            end += 1;
        }
        let ctx_end = (last_change + 1 + context).min(ops.len());

        // Positions at the (backed-up) start of the hunk. Each backed-up op
        // is an Equal, consuming one line on both sides.
        let hunk_old_pos = old_pos - back;
        let hunk_new_pos = new_pos - back;

        // Build the hunk body, advancing the running positions through to
        // the end of the group.
        let mut lines = Vec::new();
        let mut old_count = 0usize;
        let mut new_count = 0usize;
        old_pos = hunk_old_pos;
        new_pos = hunk_new_pos;
        for op in &ops[ctx_start..ctx_end] {
            match *op {
                EditOp::Equal(oi, _) => {
                    old_count += 1;
                    new_count += 1;
                    old_pos += 1;
                    new_pos += 1;
                    lines.push(Line::context(old[oi]));
                }
                EditOp::Delete(oi) => {
                    old_count += 1;
                    old_pos += 1;
                    lines.push(Line::removed(old[oi]));
                }
                EditOp::Insert(ni) => {
                    new_count += 1;
                    new_pos += 1;
                    lines.push(Line::added(new[ni]));
                }
            }
        }
        // Unified-diff convention: a zero-count range's start is the line
        // *after which* the change applies (0 allowed); otherwise the first
        // line covered, 1-based.
        let old_start = if old_count == 0 { hunk_old_pos } else { hunk_old_pos + 1 };
        let new_start = if new_count == 0 { hunk_new_pos } else { hunk_new_pos + 1 };

        hunks.push(Hunk {
            old_start,
            old_count,
            new_start,
            new_count,
            section: String::new(),
            lines,
        });
        i = ctx_end;
    }

    FileDiff::new(path, hunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_file_diff;

    fn replay(old: &[&str], new: &[&str]) {
        let ops = diff_lines(old, new);
        let mut rebuilt = Vec::new();
        let mut oi = 0;
        for op in &ops {
            match *op {
                EditOp::Equal(o, n) => {
                    assert_eq!(old[o], new[n]);
                    assert_eq!(o, oi);
                    rebuilt.push(new[n]);
                    oi += 1;
                }
                EditOp::Delete(o) => {
                    assert_eq!(o, oi);
                    oi += 1;
                }
                EditOp::Insert(n) => rebuilt.push(new[n]),
            }
        }
        assert_eq!(oi, old.len());
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn edit_script_replays() {
        replay(&["a", "b", "c"], &["a", "x", "c"]);
        replay(&[], &["a"]);
        replay(&["a"], &[]);
        replay(&["a", "b"], &["a", "b"]);
        replay(&["a", "b", "c", "d"], &["c", "d", "a", "b"]);
        replay(&["x"; 5], &["x"; 7]);
    }

    #[test]
    fn identical_files_produce_no_hunks() {
        let d = diff_files("a.c", "x\ny\n", "x\ny\n", 3);
        assert!(d.hunks.is_empty());
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let old = "a\nb\nc\nd\ne\nf\ng\nh\n";
        let new = "a\nb\nC\nd\ne\nf\nG\nh\nI\n";
        let d = diff_files("a.c", old, new, 1);
        assert!(d.validate().is_ok(), "{:?}", d.validate());
        let rebuilt = apply_file_diff(&d, old).unwrap();
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn distant_changes_become_separate_hunks() {
        let old: Vec<String> = (0..40).map(|i| format!("line{i}")).collect();
        let mut new = old.clone();
        new[2] = "changed-a".into();
        new[30] = "changed-b".into();
        let old_text = crate::join_lines(&old);
        let new_text = crate::join_lines(&new);
        let d = diff_files("a.c", &old_text, &new_text, 3);
        assert_eq!(d.hunks.len(), 2);
        let rebuilt = apply_file_diff(&d, &old_text).unwrap();
        assert_eq!(rebuilt, new_text);
    }

    #[test]
    fn close_changes_merge_into_one_hunk() {
        let old: Vec<String> = (0..12).map(|i| format!("line{i}")).collect();
        let mut new = old.clone();
        new[4] = "x".into();
        new[7] = "y".into();
        let d = diff_files("a.c", &crate::join_lines(&old), &crate::join_lines(&new), 3);
        assert_eq!(d.hunks.len(), 1);
    }

    #[test]
    fn pure_insertion_at_start() {
        let old = "b\nc\n";
        let new = "a\nb\nc\n";
        let d = diff_files("a.c", old, new, 3);
        assert_eq!(apply_file_diff(&d, old).unwrap(), new);
    }

    #[test]
    fn pure_deletion_to_empty() {
        let old = "a\nb\n";
        let d = diff_files("a.c", old, "", 3);
        assert_eq!(apply_file_diff(&d, old).unwrap(), "");
    }

    #[test]
    fn creation_from_empty() {
        let new = "a\nb\n";
        let d = diff_files("a.c", "", new, 3);
        assert_eq!(apply_file_diff(&d, "").unwrap(), new);
    }
}
