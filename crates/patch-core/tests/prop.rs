//! Property-based tests for the diff substrate: the diff/apply/revert
//! triangle and parse/print round-trips must hold for arbitrary inputs.

use proptest::prelude::*;

use patch_core::{
    apply_file_diff, diff_files, diff_lines, join_lines, revert_file_diff, EditOp, Patch,
};

/// Strategy: a file as a vector of short lines drawn from a small alphabet,
/// so that diffs contain plenty of genuine matches and near-misses.
fn file_lines() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop::sample::select(vec![
            "int x = 0;",
            "if (x > 0) {",
            "}",
            "return x;",
            "x++;",
            "call(x);",
            "",
            "/* comment */",
        ])
        .prop_map(str::to_owned),
        0..40,
    )
}

/// Strategy: mutate a file by random splices to get a related "after" file.
fn edited_pair() -> impl Strategy<Value = (Vec<String>, Vec<String>)> {
    (file_lines(), prop::collection::vec((any::<prop::sample::Index>(), 0..4usize), 0..6))
        .prop_map(|(old, edits)| {
            let mut new = old.clone();
            for (idx, op) in edits {
                if new.is_empty() {
                    new.push("seed();".to_owned());
                    continue;
                }
                let i = idx.index(new.len());
                match op {
                    0 => new.insert(i, "inserted();".to_owned()),
                    1 => {
                        new.remove(i);
                    }
                    2 => new[i] = "replaced();".to_owned(),
                    _ => new.swap(0, i),
                }
            }
            (old, new)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Myers edit script faithfully replays `old` into `new`.
    #[test]
    fn edit_script_replays((old, new) in edited_pair()) {
        let old_refs: Vec<&str> = old.iter().map(String::as_str).collect();
        let new_refs: Vec<&str> = new.iter().map(String::as_str).collect();
        let ops = diff_lines(&old_refs, &new_refs);
        let mut rebuilt: Vec<&str> = Vec::new();
        let mut oi = 0usize;
        for op in &ops {
            match *op {
                EditOp::Equal(o, n) => {
                    prop_assert_eq!(&old_refs[o], &new_refs[n]);
                    prop_assert_eq!(o, oi);
                    rebuilt.push(new_refs[n]);
                    oi += 1;
                }
                EditOp::Delete(o) => {
                    prop_assert_eq!(o, oi);
                    oi += 1;
                }
                EditOp::Insert(n) => rebuilt.push(new_refs[n]),
            }
        }
        prop_assert_eq!(oi, old_refs.len());
        prop_assert_eq!(rebuilt, new_refs);
    }

    /// diff → apply reproduces the new file; diff → revert reproduces the old.
    #[test]
    fn diff_apply_revert_triangle((old, new) in edited_pair(), ctx in 0usize..4) {
        let old_text = join_lines(&old);
        let new_text = join_lines(&new);
        let d = diff_files("prop.c", &old_text, &new_text, ctx);
        prop_assert!(d.validate().is_ok(), "invalid diff: {:?}", d.validate());
        let applied = apply_file_diff(&d, &old_text).unwrap();
        prop_assert_eq!(&applied, &new_text);
        let reverted = revert_file_diff(&d, &new_text).unwrap();
        prop_assert_eq!(&reverted, &old_text);
    }

    /// Non-empty diffs survive a print → parse round trip.
    #[test]
    fn print_parse_round_trip((old, new) in edited_pair()) {
        let old_text = join_lines(&old);
        let new_text = join_lines(&new);
        let d = diff_files("prop.c", &old_text, &new_text, 3);
        if d.hunks.is_empty() {
            return Ok(()); // identical files produce no printable diff
        }
        let patch = Patch::builder("ab".repeat(20)).message("prop test").file(d).build();
        let text = patch.to_unified_string();
        let back = Patch::parse(&text).unwrap();
        prop_assert_eq!(patch, back);
    }

    /// Hunk counts always agree with declared @@ ranges.
    #[test]
    fn hunks_always_validate((old, new) in edited_pair()) {
        let d = diff_files("prop.c", &join_lines(&old), &join_lines(&new), 2);
        for h in &d.hunks {
            prop_assert!(h.validate().is_ok());
            prop_assert!(!h.is_trivial(), "hunks must contain a change");
        }
    }
}
