//! Property-based tests for the diff substrate: the diff/apply/revert
//! triangle and parse/print round-trips must hold for arbitrary inputs.
//! Runs on `patchdb_rt::check`, the in-repo property harness.

use patchdb_rt::check::{check, Gen};

use patch_core::{
    apply_file_diff, diff_files, diff_lines, join_lines, revert_file_diff, EditOp, Patch,
};

const CASES: u32 = 256;

/// A file as a vector of short lines drawn from a small alphabet, so
/// that diffs contain plenty of genuine matches and near-misses.
fn file_lines(g: &mut Gen) -> Vec<String> {
    const LINES: &[&str] = &[
        "int x = 0;",
        "if (x > 0) {",
        "}",
        "return x;",
        "x++;",
        "call(x);",
        "",
        "/* comment */",
    ];
    g.vec_with(0, 39, |g| (*g.pick(LINES)).to_owned())
}

/// Mutate a file by random splices to get a related "after" file.
fn edited_pair(g: &mut Gen) -> (Vec<String>, Vec<String>) {
    let old = file_lines(g);
    let edits = g.vec_with(0, 5, |g| (g.f64_unit(), g.usize_in(0, 3)));
    let mut new = old.clone();
    for (idx, op) in edits {
        if new.is_empty() {
            new.push("seed();".to_owned());
            continue;
        }
        // proptest's `Index` semantics: a position scaled into the
        // current length.
        let i = ((idx * new.len() as f64) as usize).min(new.len() - 1);
        match op {
            0 => new.insert(i, "inserted();".to_owned()),
            1 => {
                new.remove(i);
            }
            2 => new[i] = "replaced();".to_owned(),
            _ => new.swap(0, i),
        }
    }
    (old, new)
}

/// The Myers edit script faithfully replays `old` into `new`.
#[test]
fn edit_script_replays() {
    check("edit_script_replays", CASES, |g| {
        let (old, new) = edited_pair(g);
        let old_refs: Vec<&str> = old.iter().map(String::as_str).collect();
        let new_refs: Vec<&str> = new.iter().map(String::as_str).collect();
        let ops = diff_lines(&old_refs, &new_refs);
        let mut rebuilt: Vec<&str> = Vec::new();
        let mut oi = 0usize;
        for op in &ops {
            match *op {
                EditOp::Equal(o, n) => {
                    assert_eq!(&old_refs[o], &new_refs[n]);
                    assert_eq!(o, oi);
                    rebuilt.push(new_refs[n]);
                    oi += 1;
                }
                EditOp::Delete(o) => {
                    assert_eq!(o, oi);
                    oi += 1;
                }
                EditOp::Insert(n) => rebuilt.push(new_refs[n]),
            }
        }
        assert_eq!(oi, old_refs.len());
        assert_eq!(rebuilt, new_refs);
    });
}

/// Body of the diff/apply/revert triangle, shared between the random
/// checker and the pinned regression below.
fn assert_triangle(old: &[String], new: &[String], ctx: usize) {
    let old_text = join_lines(old);
    let new_text = join_lines(new);
    let d = diff_files("prop.c", &old_text, &new_text, ctx);
    assert!(d.validate().is_ok(), "invalid diff: {:?}", d.validate());
    let applied = apply_file_diff(&d, &old_text).unwrap();
    assert_eq!(&applied, &new_text);
    let reverted = revert_file_diff(&d, &new_text).unwrap();
    assert_eq!(&reverted, &old_text);
}

/// diff → apply reproduces the new file; diff → revert reproduces the old.
#[test]
fn diff_apply_revert_triangle() {
    check("diff_apply_revert_triangle", CASES, |g| {
        let (old, new) = edited_pair(g);
        let ctx = g.usize_in(0, 3);
        assert_triangle(&old, &new, ctx);
    });
}

/// Pinned regression carried over from the proptest era
/// (`prop.proptest-regressions`): a single insertion into a run of
/// identical lines, diffed with zero context, once produced hunks whose
/// zero-count old ranges overlapped.
#[test]
fn diff_apply_revert_triangle_regression_zero_context_insert() {
    let line = |s: &str| s.to_owned();
    let old = vec![
        line("int x = 0;"),
        line("int x = 0;"),
        line("if (x > 0) {"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
        line("int x = 0;"),
    ];
    let mut new = old.clone();
    new.insert(1, line("inserted();"));
    assert_triangle(&old, &new, 0);
}

/// Non-empty diffs survive a print → parse round trip.
#[test]
fn print_parse_round_trip() {
    check("print_parse_round_trip", CASES, |g| {
        let (old, new) = edited_pair(g);
        let old_text = join_lines(&old);
        let new_text = join_lines(&new);
        let d = diff_files("prop.c", &old_text, &new_text, 3);
        if d.hunks.is_empty() {
            return; // identical files produce no printable diff
        }
        let patch = Patch::builder("ab".repeat(20)).message("prop test").file(d).build();
        let text = patch.to_unified_string();
        let back = Patch::parse(&text).unwrap();
        assert_eq!(patch, back);
    });
}

/// Hunk counts always agree with declared @@ ranges.
#[test]
fn hunks_always_validate() {
    check("hunks_always_validate", CASES, |g| {
        let (old, new) = edited_pair(g);
        let d = diff_files("prop.c", &join_lines(&old), &join_lines(&new), 2);
        for h in &d.hunks {
            assert!(h.validate().is_ok());
            assert!(!h.is_trivial(), "hunks must contain a change");
        }
    });
}
