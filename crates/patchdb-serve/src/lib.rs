//! # patchdb-serve
//!
//! A long-lived query/inference server over a built PatchDB dataset —
//! the workload the paper's applications imply (SPI-style commit
//! classification as commits arrive, PatchFinder-style on-demand CVE
//! tracing) but which the one-shot CLI subcommands cannot serve: they
//! re-parse the whole JSON dataset per invocation.
//!
//! The server loads the dataset **once** into a [`ServeIndex`] — a
//! pre-fit random-forest identifier, the Table I feature weights, and
//! the precompiled vulnerability-signature index — and answers queries
//! over a zero-external-dependency HTTP/1.1 subset on
//! `std::net::TcpListener`:
//!
//! | endpoint             | method | answer                                          |
//! |----------------------|--------|-------------------------------------------------|
//! | `/v1/identify`       | POST   | diff text → security/non-security score         |
//! | `/v1/classify`       | POST   | diff text → 12-type rule-based category         |
//! | `/v1/scan`           | POST   | C source → vulnerability-signature hits         |
//! | `/v1/stats`          | GET    | dataset headline counts + category distribution |
//! | `/v1/patch/<id>`     | GET    | one record by (prefix) commit hex               |
//! | `/admin/reload`      | POST   | rebuild the index from its source, atomic swap  |
//! | `/healthz`           | GET    | liveness + served index generation              |
//! | `/metrics`           | GET    | counters, gauges, cumulative + windowed latency |
//! | `/debug/requests`    | GET    | last N requests, each with its stage breakdown  |
//! | `/debug/slow`        | GET    | slow-request exemplars above `--slow-ms`        |
//! | `/debug/flight`      | GET    | recent flight-recorder journal as a Chrome trace|
//! | `/debug/profile`     | GET    | sampling profile (`?seconds=&hz=`), folded stacks|
//! | `/debug/trace/<id>`  | GET    | one request by trace id: stages, shards, cache  |
//! | `/debug/timeseries`  | GET    | per-second metric history (`?metric=&secs=`)    |
//! | `/debug/slo`         | GET    | objectives, multi-window burn rates, budgets    |
//!
//! Every GET endpoint also answers HEAD with the same headers
//! (`Content-Length` included) and an empty body; `/metrics` is served
//! as `text/plain; version=0.0.4`, the `/debug/*` documents as
//! `application/json`.
//!
//! Architecture (DESIGN.md §9): a single event-loop thread owns the
//! listener and every connection in non-blocking mode, multiplexed over
//! `poll(2)` (`rt::net`). The loop frames requests incrementally —
//! partial reads never occupy a worker — and admits only *complete*
//! requests to a **bounded** queue (`rt::queue::BoundedQueue`); when the
//! queue (or the `--max-conns` cap) is full the request is answered
//! `503` + `Retry-After` immediately instead of queueing unboundedly.
//! A fixed worker pool drains the queue under per-request deadlines;
//! `/v1/identify` requests are micro-batched through the forest by a
//! dedicated batcher thread with a configurable batch window, and the
//! batcher completes them straight back to the loop so workers never
//! park on the batch window. Connections are HTTP/1.1 keep-alive by
//! default (idle-timeout wheel, optional per-connection request cap)
//! and may pipeline: responses park per-connection until their turn,
//! so bytes always leave in request order. Shutdown is graceful:
//! accepted work drains, then every thread joins.
//!
//! Every connection carries a request ID and a six-stage clock
//! (accept → queue → parse → batch → compute → write); finished records
//! feed rolling-window latency histograms, the `serve.inflight` /
//! `serve.queue_depth` gauges, the `/debug/requests` ring, slow-request
//! exemplars, and an optional JSON-lines access log (`--access-log`,
//! off by default).
//!
//! Responses are deterministic: the same request against the same
//! dataset yields byte-identical bodies at any worker count or batch
//! composition (`tests/serve.rs` pins threads 1 vs 8), whether the
//! index was pipeline-built or booted from a binary snapshot, and at
//! any shard count.
//!
//! ## Index lifecycle
//!
//! The served index lives behind an [`IndexHandle`] — an atomically
//! swappable, generation-counted pointer. A built [`ServeIndex`] can be
//! persisted as a `patchdb-snapshot/v1` binary file ([`Snapshot`],
//! `ServeIndex::save_snapshot` / `ServeIndex::load_snapshot`) and a
//! server boots from it without running any of the learning pipeline.
//! `POST /admin/reload` (or SIGHUP) rebuilds the next generation from
//! the configured [`ReloadSource`] entirely off the handle, then swaps
//! it in: in-flight requests keep the generation they pinned at
//! admission, new requests see the new one, and readers never block.
//! [`ShardedIndex`] partitions one logical index across N shards with
//! deterministic scatter-gather merges that are byte-identical to the
//! 1-shard answers. Non-2xx responses share one JSON error envelope:
//! `{"error": {"code": ..., "message": ...}}`.
//!
//! Every non-2xx response body is that envelope; `code` is an HTTP
//! reason slug (`not_found`, `method_not_allowed`, `overloaded`, ...)
//! or, where a `patchdb::Error` caused the failure, its
//! [`Error::code`](patchdb::Error::code) tag.
//!
//! ```rust,no_run
//! use patchdb::prelude::*;
//! use patchdb_serve::{Server, ServeConfig, ServeIndex};
//!
//! let db = PatchDb::build(&BuildOptions::tiny(42)).db;
//! let index = ServeIndex::build(db);
//! let server = Server::start(index, &ServeConfig::default().addr("127.0.0.1:0"))?;
//! println!("listening on {}", server.addr());
//! server.wait(); // block until the process is killed
//! # Ok::<(), patchdb::Error>(())
//! ```

#![warn(missing_docs)]

mod batch;
mod cache;
pub mod client;
mod event_loop;
mod handle;
mod http;
mod index;
mod server;
mod shard;
mod slo;
mod snapshot;
mod telemetry;

pub use handle::{IndexHandle, ReloadSource};
pub use http::{Request, Response};
pub use index::{ScanMatch, ScanOutcome, ServeIndex};
pub use server::{ServeConfig, Server};
pub use shard::ShardedIndex;
pub use snapshot::Snapshot;

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-global gate over the tracing/tsdb/SLO layer (default on).
/// Mirrors the PR 8 pattern for the flight recorder and sampler: a
/// relaxed atomic read on the hot path, flippable live so a bench can
/// price the layer with paired off/on drives on one server. Gates only
/// *observation* — trace-ring pushes, per-shard attribution, registry
/// sampling, SLO accounting. Response bytes never change; the
/// `X-Patchdb-*` correlation headers are always emitted.
static TRACING: AtomicBool = AtomicBool::new(true);

/// Enables or disables the tracing/tsdb/SLO observation layer.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether the tracing/tsdb/SLO observation layer is currently on.
pub(crate) fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}
