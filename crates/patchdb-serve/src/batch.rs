//! Micro-batching for `/v1/identify`: concurrent requests inside one
//! batch window are scored through the forest as a single
//! `predict_proba_batch` call instead of one tree-walk pass each.
//!
//! Two submission shapes share one batch:
//!
//! * **Synchronous** ([`Batcher::submit_timed`]): the caller blocks on a
//!   per-job slot until its batch is scored — used by tests and any
//!   caller outside the serve path.
//! * **Detached** ([`Batcher::submit_detached`]): the caller hands over
//!   an [`IdentifyTicket`] and returns immediately; the batcher thread
//!   builds the response and completes it straight into the event
//!   loop's mailbox. Workers are never parked on the batch window, so
//!   batch pressure cannot starve the worker pool.
//!
//! Because per-row scoring is a pure function of the fitted forest, a
//! row's score is independent of which rows happened to share its batch
//! — batching changes throughput, never bytes.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patchdb_rt::json::Json;
use patchdb_rt::obs;

use crate::event_loop::{Completion, LoopShared};
use crate::handle::{Generation, IndexHandle};
use crate::http::{render_head, Response};
use crate::telemetry::{elapsed_ns, RequestRecord};

/// The identify response document for one score — the single rendering
/// point shared by the batcher and the cache-hit fast path, so the two
/// paths cannot drift byte-wise.
pub(crate) fn identify_response(score: f64) -> Response {
    Response::json(
        200,
        &Json::Obj(vec![
            ("score".into(), Json::Num(score)),
            ("security".into(), Json::Bool(score >= 0.5)),
        ]),
    )
}

/// One waiting request's result cell.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<f64>>,
    ready: Condvar,
}

/// Everything needed to finish an identify request away from the
/// submitting worker: the completion route plus the telemetry record.
pub(crate) struct IdentifyTicket {
    pub slot: usize,
    pub generation: u64,
    pub seq: u64,
    /// Request clock origin (for `total_ns` at write completion).
    pub started: Instant,
    /// When endpoint work began (for the `serve.identify.ns` histogram).
    pub dispatch_started: Instant,
    /// When the row entered the batcher (the `batch` stage's origin).
    pub submitted: Instant,
    pub close_after: bool,
    pub rec: RequestRecord,
    /// `cache::cache_key` of the raw request body, computed by the
    /// worker on its (missed) lookup.
    pub cache_key: u64,
    /// The raw request body, carried here so the batcher can populate
    /// the identify cache once the score exists.
    pub body: Vec<u8>,
    /// The index generation pinned at admission. The row is scored
    /// through *this* generation's model and its score lands in *this*
    /// generation's cache, even if a swap happens mid-batch.
    pub index_gen: Arc<Generation>,
}

enum Job {
    /// Test-only shape in production builds; the serve path is all
    /// detached.
    #[cfg_attr(not(test), allow(dead_code))]
    Sync { row: Vec<f64>, slot: Arc<Slot> },
    Detached { row: Vec<f64>, ticket: IdentifyTicket },
}

#[derive(Default)]
struct State {
    pending: Vec<Job>,
    shutdown: bool,
}

struct Shared {
    handle: IndexHandle,
    window: Duration,
    state: Mutex<State>,
    arrived: Condvar,
    serve: Arc<LoopShared>,
}

/// Cloneable handle workers submit through; the owning [`crate::Server`]
/// keeps the thread's join handle.
#[derive(Clone)]
pub(crate) struct Batcher {
    shared: Arc<Shared>,
}

impl Batcher {
    /// Starts the batcher thread; returns the submit handle and the
    /// join handle for shutdown. Detached completions are published to
    /// `serve`.
    pub(crate) fn start(
        handle: IndexHandle,
        window: Duration,
        serve: Arc<LoopShared>,
    ) -> (Batcher, JoinHandle<()>) {
        let shared = Arc::new(Shared {
            handle,
            window,
            state: Mutex::new(State::default()),
            arrived: Condvar::new(),
            serve,
        });
        let run_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("patchdb-serve-batcher".into())
            .spawn(move || run(&run_shared))
            .expect("spawn batcher thread");
        (Batcher { shared }, handle)
    }

    /// Scores one weighted feature row, blocking until its batch is
    /// evaluated. After shutdown the row is scored inline instead — a
    /// draining worker never deadlocks on a stopped batcher.
    #[cfg(test)]
    pub(crate) fn submit(&self, row: Vec<f64>) -> f64 {
        self.submit_timed(row).0
    }

    /// Scores one row like [`submit`](Self::submit), also returning how
    /// long the caller was blocked here in nanoseconds — the `batch`
    /// stage of the request clock. Timing wraps the whole call (enqueue,
    /// window wait, score, wake) so the stage covers everything the
    /// caller could not spend computing.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn submit_timed(&self, row: Vec<f64>) -> (f64, u64) {
        let entered = Instant::now();
        let slot = Arc::new(Slot::default());
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                drop(state);
                let current = self.shared.handle.load();
                let score = current.index.score_rows(std::slice::from_ref(&row))[0];
                return (score, elapsed_ns(entered));
            }
            state.pending.push(Job::Sync { row, slot: Arc::clone(&slot) });
            obs::gauge_set("serve.batch.queue_depth", state.pending.len() as i64);
        }
        self.shared.arrived.notify_all();
        let mut result = slot.result.lock().unwrap();
        while result.is_none() {
            result = slot.ready.wait(result).unwrap();
        }
        let score = result.unwrap();
        (score, elapsed_ns(entered))
    }

    /// Queues one row for batch scoring and returns immediately; the
    /// batcher thread completes the response into the event loop. After
    /// shutdown the row is scored and completed inline.
    pub(crate) fn submit_detached(&self, row: Vec<f64>, ticket: IdentifyTicket) {
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                drop(state);
                let score = ticket.index_gen.index.score_rows(std::slice::from_ref(&row))[0];
                fulfill(&self.shared.serve, score, ticket);
                return;
            }
            state.pending.push(Job::Detached { row, ticket });
            obs::gauge_set("serve.batch.queue_depth", state.pending.len() as i64);
        }
        self.shared.arrived.notify_all();
    }

    /// Tells the batcher thread to drain what is pending and exit.
    pub(crate) fn shutdown(&self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.arrived.notify_all();
    }
}

/// Finishes one detached identify: populates the pinned generation's
/// cache, banks stage accounting, renders the response JSON (identical
/// bytes to the synchronous path), and publishes the loop completion.
fn fulfill(serve: &LoopShared, score: f64, mut ticket: IdentifyTicket) {
    let body = std::mem::take(&mut ticket.body);
    ticket.index_gen.cache.insert(ticket.cache_key, body, score);
    ticket.rec.batch_ns = elapsed_ns(ticket.submitted);
    obs::hist_record("serve.identify.ns", elapsed_ns(ticket.dispatch_started));
    obs::counter_add("serve.status.200", 1);
    let response = identify_response(score);
    ticket.rec.endpoint = "identify";
    ticket.rec.status = response.status;
    let head = render_head(
        &response,
        !ticket.close_after,
        Some((ticket.rec.id, &ticket.rec.trace)),
    );
    serve.complete(Completion {
        slot: ticket.slot,
        generation: ticket.generation,
        seq: ticket.seq,
        started: ticket.started,
        head,
        body: response.body,
        rec: ticket.rec,
        close_after: ticket.close_after,
    });
}

fn run(shared: &Shared) {
    loop {
        let batch = {
            let mut state = shared.state.lock().unwrap();
            while state.pending.is_empty() && !state.shutdown {
                state = shared.arrived.wait(state).unwrap();
            }
            if state.pending.is_empty() {
                return; // shutdown with nothing left to drain
            }
            if !shared.window.is_zero() && !state.shutdown {
                // Let the batch fill: release the lock for one window, then
                // take whatever accumulated.
                drop(state);
                std::thread::sleep(shared.window);
                state = shared.state.lock().unwrap();
            }
            let batch = std::mem::take(&mut state.pending);
            obs::gauge_set("serve.batch.queue_depth", 0);
            batch
        };

        obs::counter_add("serve.identify.batches", 1);
        obs::hist_record("serve.identify.batch_len", batch.len() as u64);
        // Every detached job pinned a generation at admission; a batch
        // that straddles an index swap is scored per generation group,
        // so each row always goes through the exact model it pinned.
        // Sync jobs (test-only) score through the current generation.
        let mut sync: Vec<(Vec<f64>, Arc<Slot>)> = Vec::new();
        let mut groups: Vec<(Arc<Generation>, Vec<(Vec<f64>, IdentifyTicket)>)> = Vec::new();
        for job in batch {
            match job {
                Job::Sync { row, slot } => sync.push((row, slot)),
                Job::Detached { row, ticket } => {
                    match groups.iter_mut().find(|(g, _)| g.number == ticket.index_gen.number) {
                        Some((_, jobs)) => jobs.push((row, ticket)),
                        None => {
                            let generation = Arc::clone(&ticket.index_gen);
                            groups.push((generation, vec![(row, ticket)]));
                        }
                    }
                }
            }
        }
        if !sync.is_empty() {
            let current = shared.handle.load();
            let rows: Vec<Vec<f64>> = sync.iter().map(|(r, _)| r.clone()).collect();
            let scores = current.index.score_rows(&rows);
            for ((_, slot), score) in sync.into_iter().zip(scores) {
                *slot.result.lock().unwrap() = Some(score);
                slot.ready.notify_all();
            }
        }
        for (generation, jobs) in groups {
            let rows: Vec<Vec<f64>> = jobs.iter().map(|(r, _)| r.clone()).collect();
            let (scores, shard_ns) = generation.index.score_rows_traced(&rows);
            for ((_, mut ticket), score) in jobs.into_iter().zip(scores) {
                // Every row in the group shares one scatter-gather, so
                // each request's trace carries the same per-shard spans.
                if crate::tracing_enabled() {
                    ticket.rec.shards = shard_ns.clone();
                }
                fulfill(&shared.serve, score, ticket);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ServeIndex;
    use patchdb::{BuildOptions, PatchDb};
    use patchdb_features::FEATURE_DIM;
    use patchdb_rt::net::Waker;

    fn tiny_handle() -> IndexHandle {
        IndexHandle::from(ServeIndex::build(
            PatchDb::build(&BuildOptions::tiny(3).synthesize(false)).db,
        ))
    }

    fn loop_shared() -> Arc<LoopShared> {
        let (waker, _rx) = Waker::new().unwrap();
        Arc::new(LoopShared::new(waker))
    }

    #[test]
    fn batched_scores_equal_direct_scores() {
        let index_handle = tiny_handle();
        let generation = index_handle.load();
        let (batcher, handle) =
            Batcher::start(index_handle, Duration::from_millis(5), loop_shared());
        let db = PatchDb::build(&BuildOptions::tiny(3).synthesize(false)).db;
        let rows: Vec<Vec<f64>> = db
            .security_patches()
            .take(8)
            .map(|r| generation.index.weighted_features(&r.patch))
            .collect();
        let direct = generation.index.score_rows(&rows);
        let batched: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .iter()
                .map(|row| {
                    let b = batcher.clone();
                    let row = row.clone();
                    scope.spawn(move || b.submit(row))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(batched, direct, "batch composition leaked into scores");
        batcher.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn submit_timed_reports_the_blocked_interval() {
        let index_handle = tiny_handle();
        let generation = index_handle.load();
        let (batcher, handle) =
            Batcher::start(index_handle, Duration::from_millis(2), loop_shared());
        let row = vec![0.0; FEATURE_DIM];
        let direct = generation.index.score_rows(std::slice::from_ref(&row))[0];
        let (score, wait_ns) = batcher.submit_timed(row);
        assert_eq!(score, direct);
        assert!(wait_ns > 0, "a 2 ms batch window implies a measurable wait");
        batcher.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn submit_after_shutdown_scores_inline() {
        let (batcher, handle) =
            Batcher::start(tiny_handle(), Duration::from_millis(1), loop_shared());
        batcher.shutdown();
        handle.join().unwrap();
        let score = batcher.submit(vec![0.0; FEATURE_DIM]);
        assert!((0.0..=1.0).contains(&score));
    }

    #[test]
    fn detached_jobs_complete_into_the_mailbox() {
        let index_handle = tiny_handle();
        let generation = index_handle.load();
        let shared = loop_shared();
        let (batcher, handle) = Batcher::start(
            index_handle.clone(),
            Duration::from_millis(1),
            Arc::clone(&shared),
        );
        let row = vec![0.0; FEATURE_DIM];
        let direct = generation.index.score_rows(std::slice::from_ref(&row))[0];
        let now = Instant::now();
        let body_bytes = b"diff --git a/x b/x".to_vec();
        let key = crate::cache::cache_key(&body_bytes);
        batcher.submit_detached(
            row,
            IdentifyTicket {
                slot: 3,
                generation: 9,
                seq: 0,
                started: now,
                dispatch_started: now,
                submitted: now,
                close_after: false,
                rec: RequestRecord::admitted(1, 0),
                cache_key: key,
                body: body_bytes.clone(),
                index_gen: Arc::clone(&generation),
            },
        );
        // Wait for the completion to land.
        let deadline = Instant::now() + Duration::from_secs(5);
        let completion = loop {
            let mut got = shared.take_for_test();
            if let Some(c) = got.pop() {
                break c;
            }
            assert!(Instant::now() < deadline, "batcher never completed the job");
            std::thread::sleep(Duration::from_millis(1));
        };
        assert_eq!(completion.slot, 3);
        assert_eq!(completion.generation, 9);
        assert!(completion.rec.batch_ns > 0);
        let body = String::from_utf8(completion.body.clone()).unwrap();
        assert!(body.contains(&format!("\"score\":{direct}")), "{body}");
        let head = String::from_utf8(completion.head.clone()).unwrap();
        assert!(head.contains("Connection: keep-alive"), "{head}");
        assert_eq!(
            generation.cache.lookup(key, &body_bytes),
            Some(direct),
            "fulfill must populate the pinned generation's identify cache"
        );
        batcher.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn detached_jobs_score_through_their_pinned_generation() {
        let index_handle = tiny_handle();
        let pinned = index_handle.load();
        let shared = loop_shared();
        let (batcher, handle) = Batcher::start(
            index_handle.clone(),
            Duration::from_millis(1),
            Arc::clone(&shared),
        );
        let row = vec![0.25; FEATURE_DIM];
        let direct = pinned.index.score_rows(std::slice::from_ref(&row))[0];
        // Swap in a different index (different dataset size → different
        // model) before the pinned job is submitted.
        index_handle.swap(ServeIndex::build(
            PatchDb::build(&BuildOptions::tiny(7).synthesize(false)).db,
        ));
        let now = Instant::now();
        let body_bytes = b"diff --git a/y b/y".to_vec();
        batcher.submit_detached(
            row,
            IdentifyTicket {
                slot: 0,
                generation: 1,
                seq: 0,
                started: now,
                dispatch_started: now,
                submitted: now,
                close_after: false,
                rec: RequestRecord::admitted(1, 0),
                cache_key: crate::cache::cache_key(&body_bytes),
                body: body_bytes,
                index_gen: Arc::clone(&pinned),
            },
        );
        let deadline = Instant::now() + Duration::from_secs(5);
        let completion = loop {
            let mut got = shared.take_for_test();
            if let Some(c) = got.pop() {
                break c;
            }
            assert!(Instant::now() < deadline, "batcher never completed the job");
            std::thread::sleep(Duration::from_millis(1));
        };
        let body = String::from_utf8(completion.body).unwrap();
        assert!(
            body.contains(&format!("\"score\":{direct}")),
            "pinned job must score through generation 1's model: {body}"
        );
        batcher.shutdown();
        handle.join().unwrap();
    }
}
