//! Micro-batching for `/v1/identify`: concurrent requests inside one
//! batch window are scored through the forest as a single
//! `predict_proba_batch` call instead of one tree-walk pass each.
//!
//! Shape: workers [`Batcher::submit`] a weighted feature row and block on
//! a per-job slot; a dedicated batcher thread wakes on the first arrival,
//! sleeps the configured window to let the batch fill, swaps the pending
//! list out, scores it, and fulfills every slot. Because per-row scoring
//! is a pure function of the fitted forest, a row's score is independent
//! of which rows happened to share its batch — batching changes
//! throughput, never bytes.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use patchdb_rt::obs;

use crate::index::ServeIndex;

/// One waiting request's result cell.
#[derive(Default)]
struct Slot {
    result: Mutex<Option<f64>>,
    ready: Condvar,
}

struct Job {
    row: Vec<f64>,
    slot: Arc<Slot>,
}

#[derive(Default)]
struct State {
    pending: Vec<Job>,
    shutdown: bool,
}

struct Shared {
    index: Arc<ServeIndex>,
    window: Duration,
    state: Mutex<State>,
    arrived: Condvar,
}

/// Cloneable handle workers submit through; the owning [`crate::Server`]
/// keeps the thread's join handle.
#[derive(Clone)]
pub(crate) struct Batcher {
    shared: Arc<Shared>,
}

impl Batcher {
    /// Starts the batcher thread; returns the submit handle and the
    /// join handle for shutdown.
    pub(crate) fn start(
        index: Arc<ServeIndex>,
        window: Duration,
    ) -> (Batcher, JoinHandle<()>) {
        let shared = Arc::new(Shared {
            index,
            window,
            state: Mutex::new(State::default()),
            arrived: Condvar::new(),
        });
        let run_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("patchdb-serve-batcher".into())
            .spawn(move || run(&run_shared))
            .expect("spawn batcher thread");
        (Batcher { shared }, handle)
    }

    /// Scores one weighted feature row, blocking until its batch is
    /// evaluated. After shutdown the row is scored inline instead — a
    /// draining worker never deadlocks on a stopped batcher.
    #[cfg(test)]
    pub(crate) fn submit(&self, row: Vec<f64>) -> f64 {
        self.submit_timed(row).0
    }

    /// Scores one row like [`submit`](Self::submit), also returning how
    /// long the caller was blocked here in nanoseconds — the `batch`
    /// stage of the request clock. Timing wraps the whole call (enqueue,
    /// window wait, score, wake) so the stage covers everything the
    /// worker could not spend computing.
    pub(crate) fn submit_timed(&self, row: Vec<f64>) -> (f64, u64) {
        let entered = std::time::Instant::now();
        let slot = Arc::new(Slot::default());
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.shutdown {
                drop(state);
                let score = self.shared.index.score_rows(std::slice::from_ref(&row))[0];
                return (score, entered.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            state.pending.push(Job { row, slot: Arc::clone(&slot) });
        }
        self.shared.arrived.notify_all();
        let mut result = slot.result.lock().unwrap();
        while result.is_none() {
            result = slot.ready.wait(result).unwrap();
        }
        let score = result.unwrap();
        (score, entered.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Tells the batcher thread to drain what is pending and exit.
    pub(crate) fn shutdown(&self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.arrived.notify_all();
    }
}

fn run(shared: &Shared) {
    loop {
        let batch = {
            let mut state = shared.state.lock().unwrap();
            while state.pending.is_empty() && !state.shutdown {
                state = shared.arrived.wait(state).unwrap();
            }
            if state.pending.is_empty() {
                return; // shutdown with nothing left to drain
            }
            if !shared.window.is_zero() && !state.shutdown {
                // Let the batch fill: release the lock for one window, then
                // take whatever accumulated.
                drop(state);
                std::thread::sleep(shared.window);
                state = shared.state.lock().unwrap();
            }
            std::mem::take(&mut state.pending)
        };

        obs::counter_add("serve.identify.batches", 1);
        obs::hist_record("serve.identify.batch_len", batch.len() as u64);
        let (rows, slots): (Vec<Vec<f64>>, Vec<Arc<Slot>>) =
            batch.into_iter().map(|j| (j.row, j.slot)).unzip();
        let scores = shared.index.score_rows(&rows);
        for (slot, score) in slots.into_iter().zip(scores) {
            *slot.result.lock().unwrap() = Some(score);
            slot.ready.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb::{BuildOptions, PatchDb};
    use patchdb_features::FEATURE_DIM;

    fn tiny_index() -> Arc<ServeIndex> {
        Arc::new(ServeIndex::build(
            PatchDb::build(&BuildOptions::tiny(3).synthesize(false)).db,
        ))
    }

    #[test]
    fn batched_scores_equal_direct_scores() {
        let index = tiny_index();
        let (batcher, handle) = Batcher::start(Arc::clone(&index), Duration::from_millis(5));
        let rows: Vec<Vec<f64>> = index
            .db()
            .security_patches()
            .take(8)
            .map(|r| index.weighted_features(&r.patch))
            .collect();
        let direct = index.score_rows(&rows);
        let batched: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .iter()
                .map(|row| {
                    let b = batcher.clone();
                    let row = row.clone();
                    scope.spawn(move || b.submit(row))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(batched, direct, "batch composition leaked into scores");
        batcher.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn submit_timed_reports_the_blocked_interval() {
        let index = tiny_index();
        let (batcher, handle) =
            Batcher::start(Arc::clone(&index), Duration::from_millis(2));
        let row = vec![0.0; FEATURE_DIM];
        let direct = index.score_rows(std::slice::from_ref(&row))[0];
        let (score, wait_ns) = batcher.submit_timed(row);
        assert_eq!(score, direct);
        assert!(wait_ns > 0, "a 2 ms batch window implies a measurable wait");
        batcher.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn submit_after_shutdown_scores_inline() {
        let index = tiny_index();
        let (batcher, handle) = Batcher::start(index, Duration::from_millis(1));
        batcher.shutdown();
        handle.join().unwrap();
        let score = batcher.submit(vec![0.0; FEATURE_DIM]);
        assert!((0.0..=1.0).contains(&score));
    }
}
