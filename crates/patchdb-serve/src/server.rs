//! The server proper: accept thread → bounded admission queue → fixed
//! worker pool, with per-request deadlines and graceful drain.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patch_core::Patch;
use patchdb::Error;
use patchdb_rt::json::Json;
use patchdb_rt::obs;
use patchdb_rt::par;
use patchdb_rt::queue::BoundedQueue;

use crate::batch::Batcher;
use crate::http::{parse_request, write_response, ParseError, Request, Response};
use crate::index::ServeIndex;
use crate::telemetry::{elapsed_ns, RequestRecord, Telemetry};

/// Server knobs. Construct with [`ServeConfig::default`] and refine with
/// the fluent setters (`#[non_exhaustive]`, like `BuildOptions`):
///
/// ```rust
/// use patchdb_serve::ServeConfig;
///
/// let config = ServeConfig::default()
///     .addr("127.0.0.1:0")
///     .threads(4)
///     .batch_window_ms(2)
///     .max_inflight(64);
/// assert_eq!(config.threads, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size; `0` defers to `PATCHDB_THREADS` / available
    /// parallelism via `par::configured_threads`.
    pub threads: usize,
    /// How long `/v1/identify` waits for a batch to fill before scoring.
    pub batch_window_ms: u64,
    /// Bound on accepted-but-unfinished connections. Admissions beyond
    /// it are answered `503` + `Retry-After` immediately.
    pub max_inflight: usize,
    /// Per-request wall-clock budget from accept to response; work
    /// dequeued past it is answered `503` without touching an endpoint.
    pub deadline_ms: u64,
    /// JSON-lines access-log sink: a path, `"-"` for stdout, or `None`
    /// (the default) for no log. Purely additive — response bytes are
    /// identical either way.
    pub access_log: Option<String>,
    /// Requests at least this slow are kept as exemplars with their full
    /// stage breakdown, served by `GET /debug/slow`.
    pub slow_ms: u64,
    /// How many finished requests `GET /debug/requests` retains
    /// (overwrite-oldest ring; clamped to at least 1).
    pub debug_ring: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7979".into(),
            threads: 0,
            batch_window_ms: 2,
            max_inflight: 128,
            deadline_ms: 10_000,
            access_log: None,
            slow_ms: 100,
            debug_ring: 256,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-pool size (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the identify batch window in milliseconds.
    pub fn batch_window_ms(mut self, ms: u64) -> Self {
        self.batch_window_ms = ms;
        self
    }

    /// Sets the in-flight admission bound (clamped to at least 1).
    pub fn max_inflight(mut self, bound: usize) -> Self {
        self.max_inflight = bound.max(1);
        self
    }

    /// Sets the per-request deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Sets the access-log sink (`"-"` for stdout).
    pub fn access_log(mut self, sink: impl Into<String>) -> Self {
        self.access_log = Some(sink.into());
        self
    }

    /// Sets the slow-request exemplar threshold in milliseconds.
    pub fn slow_ms(mut self, ms: u64) -> Self {
        self.slow_ms = ms;
        self
    }

    /// Sets the `/debug/requests` ring capacity (clamped to at least 1).
    pub fn debug_ring(mut self, capacity: usize) -> Self {
        self.debug_ring = capacity.max(1);
        self
    }
}

/// One admitted connection waiting for a worker.
struct Conn {
    stream: TcpStream,
    accepted: Instant,
    /// Request ID, assigned in admission order on the accept thread.
    id: u64,
    /// Accept-stage duration: TCP accept to admission-queue push.
    accept_ns: u64,
    /// When the accept thread pushed the connection; the worker reads
    /// the queue-wait stage off this at dequeue.
    enqueued: Instant,
}

/// Everything a worker needs, shared immutably.
struct Ctx {
    index: Arc<ServeIndex>,
    batcher: Batcher,
    deadline: Duration,
    telemetry: Arc<Telemetry>,
}

/// A running query server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains admitted work, and
/// joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Batcher,
    batcher_thread: Option<JoinHandle<()>>,
    worker_count: usize,
}

impl Server {
    /// Binds, spawns the accept thread, the worker pool, and the
    /// batcher, and starts answering. Also enables `rt::obs` so the
    /// `/metrics` endpoint has counters to export.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the listener cannot bind.
    pub fn start(index: ServeIndex, config: &ServeConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        obs::set_enabled(true);
        let telemetry = Arc::new(Telemetry::new(config)?);

        let index = Arc::new(index);
        let worker_count = if config.threads == 0 {
            par::configured_threads(8)
        } else {
            config.threads
        };
        let queue: Arc<BoundedQueue<Conn>> =
            Arc::new(BoundedQueue::new(config.max_inflight));
        let (batcher, batcher_thread) = Batcher::start(
            Arc::clone(&index),
            Duration::from_millis(config.batch_window_ms),
        );

        let ctx = Arc::new(Ctx {
            index,
            batcher: batcher.clone(),
            deadline: Duration::from_millis(config.deadline_ms.max(1)),
            telemetry: Arc::clone(&telemetry),
        });
        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("patchdb-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(conn) = queue.pop() {
                            handle_conn(conn, &ctx);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("patchdb-serve-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &queue, &stop, &telemetry);
                    // Stop admitting, let workers drain the backlog.
                    queue.close();
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            local_addr,
            stop,
            accept: Some(accept),
            workers,
            batcher,
            batcher_thread: Some(batcher_thread),
            worker_count,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The effective worker-pool size.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// admitted, then join the accept thread, the workers, and the
    /// batcher. Returns once every thread has exited.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Blocks the calling thread for the lifetime of the process — the
    /// CLI's foreground mode. The server keeps serving; only process
    /// death (signal) ends it.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn shutdown_impl(&mut self) {
        if self.accept.is_none() {
            return; // already shut down (or waited out)
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection; it then
        // observes `stop`, exits, and closes the queue.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.batcher.shutdown();
        if let Some(b) = self.batcher_thread.take() {
            let _ = b.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &BoundedQueue<Conn>,
    stop: &AtomicBool,
    telemetry: &Telemetry,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        let accepted = Instant::now();
        if stop.load(Ordering::SeqCst) {
            return; // the wake-up connection (or a raced client) is dropped
        }
        obs::counter_add("serve.accepted", 1);
        let id = telemetry.next_id();
        let accept_ns = elapsed_ns(accepted);
        let conn = Conn { stream, accepted, id, accept_ns, enqueued: Instant::now() };
        obs::gauge_add("serve.queue_depth", 1);
        obs::gauge_add("serve.inflight", 1);
        if let Err(refused) = queue.try_push(conn) {
            // Backpressure: shed the connection immediately with the
            // retry hint rather than queueing without bound.
            obs::gauge_add("serve.queue_depth", -1);
            obs::gauge_add("serve.inflight", -1);
            obs::counter_add("serve.rejected_503", 1);
            let mut conn = refused.into_inner();
            let mut rec = RequestRecord::admitted(conn.id, conn.accept_ns);
            rec.endpoint = "shed";
            respond(&mut conn.stream, &Response::overloaded(1), &mut rec);
            rec.total_ns = elapsed_ns(conn.accepted);
            telemetry.observe(rec);
        }
    }
}

/// Writes `response` (best effort — the client may be gone) while
/// banking the outcome: the `serve.status.*` counter, the record's
/// status, and the write-stage duration.
fn respond(stream: &mut TcpStream, response: &Response, rec: &mut RequestRecord) {
    obs::counter_add(&format!("serve.status.{}", response.status), 1);
    rec.status = response.status;
    let started = Instant::now();
    let _ = write_response(stream, response);
    rec.write_ns = elapsed_ns(started);
}

/// Worker entry for one dequeued connection: closes out the queue
/// stage, runs the request, then banks the finished record exactly once
/// — every early return inside [`serve_one`] still flows through the
/// ring, the windows, and the access log.
fn handle_conn(conn: Conn, ctx: &Ctx) {
    obs::gauge_add("serve.queue_depth", -1);
    let mut rec = RequestRecord::admitted(conn.id, conn.accept_ns);
    rec.queue_ns = elapsed_ns(conn.enqueued);
    let accepted = conn.accepted;
    serve_one(conn, ctx, &mut rec);
    rec.total_ns = elapsed_ns(accepted);
    obs::gauge_add("serve.inflight", -1);
    ctx.telemetry.observe(rec);
}

fn serve_one(mut conn: Conn, ctx: &Ctx, rec: &mut RequestRecord) {
    let remaining = match ctx.deadline.checked_sub(conn.accepted.elapsed()) {
        Some(r) if !r.is_zero() => r,
        _ => {
            obs::counter_add("serve.deadline_expired", 1);
            rec.endpoint = "deadline";
            respond(&mut conn.stream, &Response::overloaded(1), rec);
            return;
        }
    };
    // The deadline also bounds how long a slow (or stalled) client may
    // take to deliver its request bytes.
    let _ = conn.stream.set_read_timeout(Some(remaining));

    let read_started = Instant::now();
    let parsed = parse_request(&mut conn.stream);
    rec.parse_ns = elapsed_ns(read_started);
    let request = match parsed {
        Ok(r) => r,
        Err(e) => {
            let response = match e {
                ParseError::TooLarge => Response::text(413, "request too large\n"),
                ParseError::Malformed(why) => {
                    Response::text(400, format!("malformed request: {why}\n"))
                }
                ParseError::Disconnected => {
                    // Clean EOF mid-request: the client hung up. Nobody
                    // is left to answer.
                    obs::counter_add("serve.read_failed", 1);
                    rec.endpoint = "disconnect";
                    return;
                }
                ParseError::Io(err) => {
                    // A timeout here is the read deadline firing on a
                    // stalled client; anything else is a vanished one.
                    let timed_out = matches!(
                        err.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    );
                    if timed_out {
                        obs::counter_add("serve.deadline_expired", 1);
                        rec.endpoint = "deadline";
                    } else {
                        obs::counter_add("serve.read_failed", 1);
                        rec.endpoint = "disconnect";
                    }
                    return;
                }
            };
            rec.endpoint = "parse";
            respond(&mut conn.stream, &response, rec);
            return;
        }
    };
    rec.method = request.method.clone();
    rec.path = request.path.clone();
    if conn.accepted.elapsed() >= ctx.deadline {
        obs::counter_add("serve.deadline_expired", 1);
        rec.endpoint = "deadline";
        respond(&mut conn.stream, &Response::overloaded(1), rec);
        return;
    }

    let started = Instant::now();
    let (endpoint, response) = dispatch(&request, ctx, rec);
    let dispatch_ns = elapsed_ns(started);
    rec.endpoint = endpoint;
    // The compute stage is endpoint work minus time blocked on the
    // identify batcher, so batch pressure and CPU cost stay separable.
    rec.compute_ns = dispatch_ns.saturating_sub(rec.batch_ns);
    obs::counter_add(&format!("serve.{endpoint}.requests"), 1);
    obs::hist_record(&format!("serve.{endpoint}.ns"), dispatch_ns);
    respond(&mut conn.stream, &response, rec);
}

/// Routes one request; returns the endpoint label the metrics use. The
/// record is threaded through so `identify` can bank its batch wait.
fn dispatch(request: &Request, ctx: &Ctx, rec: &mut RequestRecord) -> (&'static str, Response) {
    let path = request.path.as_str();
    let get = request.method == "GET";
    let post = request.method == "POST";
    match path {
        "/healthz" if get => ("healthz", Response::text(200, "ok\n")),
        "/metrics" if get => {
            // Snapshot, not report(): counters/gauges/hists/windows only,
            // no span-tree clone under the registry mutex.
            ("metrics", Response::text(200, obs::metrics_snapshot().to_metrics_text()))
        }
        "/v1/stats" if get => {
            ("stats", Response::json(200, &ctx.index.stats_json()))
        }
        "/v1/identify" if post => ("identify", identify(request, ctx, rec)),
        "/v1/classify" if post => ("classify", classify(request, ctx)),
        "/v1/scan" if post => ("scan", scan(request, ctx)),
        _ if path.starts_with("/v1/patch/") && get => {
            let id = &path["/v1/patch/".len()..];
            match ctx.index.patch_json(id) {
                Some(json) => ("patch", Response::json(200, &json)),
                None => ("patch", Response::text(404, "no unique record for that id\n")),
            }
        }
        _ if get && (path == "/debug/requests" || path.starts_with("/debug/requests?")) => {
            let n = debug_request_limit(path);
            ("debug_requests", Response::json(200, &ctx.telemetry.debug_requests_json(n)))
        }
        "/debug/slow" if get => {
            ("debug_slow", Response::json(200, &ctx.telemetry.debug_slow_json()))
        }
        "/healthz" | "/metrics" | "/v1/stats" | "/v1/identify" | "/v1/classify"
        | "/v1/scan" | "/debug/requests" | "/debug/slow" => {
            ("other", Response::text(405, "method not allowed\n"))
        }
        _ => ("other", Response::text(404, "unknown endpoint\n")),
    }
}

/// How many records `/debug/requests` should return: the `n` query
/// parameter, else 64.
fn debug_request_limit(path: &str) -> usize {
    const DEFAULT: usize = 64;
    let Some((_, query)) = path.split_once('?') else {
        return DEFAULT;
    };
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("n="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT)
}

/// Parses the request body as a unified diff, or explains why not.
fn parse_patch_body(request: &Request) -> Result<Patch, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::text(400, "body is not UTF-8\n"))?;
    Patch::parse(text).map_err(|e| Response::text(400, format!("not a unified diff: {e}\n")))
}

fn identify(request: &Request, ctx: &Ctx, rec: &mut RequestRecord) -> Response {
    let patch = match parse_patch_body(request) {
        Ok(p) => p,
        Err(r) => return r,
    };
    let row = ctx.index.weighted_features(&patch);
    let (score, batch_ns) = ctx.batcher.submit_timed(row);
    rec.batch_ns = batch_ns;
    Response::json(
        200,
        &Json::Obj(vec![
            ("score".into(), Json::Num(score)),
            ("security".into(), Json::Bool(score >= 0.5)),
        ]),
    )
}

fn classify(request: &Request, ctx: &Ctx) -> Response {
    match parse_patch_body(request) {
        Ok(patch) => Response::json(200, &ctx.index.classify_json(&patch)),
        Err(r) => r,
    }
}

fn scan(request: &Request, ctx: &Ctx) -> Response {
    let Ok(target) = std::str::from_utf8(&request.body) else {
        return Response::text(400, "body is not UTF-8\n");
    };
    let outcome = ctx.index.scan(target);
    let matches = outcome
        .matches
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("commit".into(), Json::Str(m.commit.to_string())),
                (
                    "cve_id".into(),
                    m.cve_id.as_ref().map_or(Json::Null, |c| Json::Str(c.clone())),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![
            ("vulnerable".into(), Json::Num(outcome.matches.len() as f64)),
            ("patched".into(), Json::Num(outcome.patched as f64)),
            ("matches".into(), Json::Arr(matches)),
        ]),
    )
}
