//! The server proper: event-loop front end → bounded admission queue →
//! fixed worker pool, with per-request deadlines and graceful drain.
//!
//! The event loop (see [`crate::event_loop`]) owns every socket and
//! frames complete requests; workers only ever see [`Work`] items that
//! already carry a parsed request, run the endpoint, and complete back
//! into the loop's mailbox. `/v1/identify` completes asynchronously
//! through the micro-batcher, so a worker is never parked on the batch
//! window — on a small core count that detachment is what lets the
//! keep-alive path saturate the scorer instead of the worker pool.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use patch_core::Patch;
use patchdb::Error;
use patchdb_rt::json::Json;
use patchdb_rt::net::Waker;
use patchdb_rt::obs;
use patchdb_rt::par;
use patchdb_rt::queue::BoundedQueue;

use crate::batch::{identify_response, Batcher, IdentifyTicket};
use crate::cache::cache_key;
use crate::event_loop::{Completion, EventLoop, LoopShared};
use crate::handle::{reload, Generation, IndexHandle, ReloadSource};
use crate::http::{render_head, Request, Response};
use crate::telemetry::{elapsed_ns, RequestRecord, Telemetry};

/// Server knobs. Construct with [`ServeConfig::default`] and refine with
/// the fluent setters (`#[non_exhaustive]`, like `BuildOptions`):
///
/// ```rust
/// use patchdb_serve::ServeConfig;
///
/// let config = ServeConfig::default()
///     .addr("127.0.0.1:0")
///     .threads(4)
///     .batch_window_ms(2)
///     .max_inflight(64)
///     .keep_alive(true)
///     .max_conns(4096);
/// assert_eq!(config.threads, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size; `0` defers to `PATCHDB_THREADS` / available
    /// parallelism via `par::configured_threads`.
    pub threads: usize,
    /// How long `/v1/identify` waits for a batch to fill before scoring.
    pub batch_window_ms: u64,
    /// Bound on framed-but-unfinished requests in the admission queue.
    /// Admissions beyond it are answered `503` + `Retry-After`.
    pub max_inflight: usize,
    /// Per-request wall-clock budget from first byte to response; also
    /// bounds how long a partial request may trickle in and how long the
    /// drain phase waits at shutdown.
    pub deadline_ms: u64,
    /// JSON-lines access-log sink: a path, `"-"` for stdout, or `None`
    /// (the default) for no log. Purely additive — response bytes are
    /// identical either way.
    pub access_log: Option<String>,
    /// Requests at least this slow are kept as exemplars with their full
    /// stage breakdown, served by `GET /debug/slow`.
    pub slow_ms: u64,
    /// How many finished requests `GET /debug/requests` retains
    /// (overwrite-oldest ring; clamped to at least 1).
    pub debug_ring: usize,
    /// Whether HTTP/1.1 keep-alive is honored; `false` forces
    /// `Connection: close` on every response (the v1 protocol).
    pub keep_alive: bool,
    /// Idle keep-alive connections are closed after this long; also the
    /// write-stall bound for readers that stop consuming responses.
    pub idle_timeout_ms: u64,
    /// Requests served per connection before the server closes it
    /// (`Connection: close` on the final response); `0` = unlimited.
    pub max_requests_per_conn: u64,
    /// Open-connection cap; arrivals beyond it are answered `503` and
    /// closed without reading a byte.
    pub max_conns: usize,
    /// Size-based access-log rotation: when the current file would cross
    /// this many MiB, it is renamed `PATH` → `PATH.1` and a fresh `PATH`
    /// is opened, under the log lock so no line is ever split. `0` (the
    /// default) disables rotation; stdout (`"-"`) never rotates.
    pub access_log_max_mb: u64,
    /// Whether the always-on flight recorder journals structured events
    /// (span enter/exit, loop ticks, queue transitions) into per-thread
    /// rings for `GET /debug/flight` and the panic-hook dump. Purely
    /// observational — response bytes are identical either way.
    pub flight: bool,
    /// Whether threads mirror their span path into the sampler's seqlock
    /// slots, enabling `GET /debug/profile`. Purely observational.
    pub sampler: bool,
    /// How many ways `/admin/reload` and SIGHUP rebuilds shard the next
    /// generation (clamped to at least 1). The *initial* index is
    /// sharded by the caller (pass a `ShardedIndex` to
    /// [`Server::start`]); this knob only governs swapped-in rebuilds.
    pub shards: usize,
    /// The snapshot file this server booted from, if any. Doubles as
    /// the default reload source when `reload` is unset.
    pub snapshot: Option<String>,
    /// Where `POST /admin/reload` and SIGHUP rebuild the next index
    /// generation from. `None` (and no `snapshot`) disables live
    /// reload: `/admin/reload` answers `409` and SIGHUP is ignored.
    pub reload: Option<ReloadSource>,
    /// Whether the tracing/tsdb/SLO layer observes: trace-ring pushes,
    /// per-shard attribution, per-second registry sampling, and SLO
    /// accounting. Purely observational — response bytes are identical
    /// either way, and the `X-Patchdb-*` headers are always emitted.
    pub tracing: bool,
    /// Per-series retention of the embedded metrics time-series store,
    /// in seconds of one-second samples.
    pub tsdb_retention_s: usize,
    /// The identify-latency SLO threshold: an identify request is
    /// "good" when its total latency is at most this many milliseconds.
    pub slo_identify_p99_ms: u64,
    /// The availability objective as a percentage of responses that
    /// must be non-5xx (e.g. `99.9`).
    pub slo_availability_pct: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7979".into(),
            threads: 0,
            batch_window_ms: 2,
            max_inflight: 128,
            deadline_ms: 10_000,
            access_log: None,
            slow_ms: 100,
            debug_ring: 256,
            keep_alive: true,
            idle_timeout_ms: 5_000,
            max_requests_per_conn: 0,
            max_conns: 10_240,
            access_log_max_mb: 0,
            flight: true,
            sampler: true,
            shards: 1,
            snapshot: None,
            reload: None,
            tracing: true,
            tsdb_retention_s: 600,
            slo_identify_p99_ms: 250,
            slo_availability_pct: 99.9,
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-pool size (`0` = auto).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the identify batch window in milliseconds.
    pub fn batch_window_ms(mut self, ms: u64) -> Self {
        self.batch_window_ms = ms;
        self
    }

    /// Sets the in-flight admission bound (clamped to at least 1).
    pub fn max_inflight(mut self, bound: usize) -> Self {
        self.max_inflight = bound.max(1);
        self
    }

    /// Sets the per-request deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Sets the access-log sink (`"-"` for stdout).
    pub fn access_log(mut self, sink: impl Into<String>) -> Self {
        self.access_log = Some(sink.into());
        self
    }

    /// Sets the slow-request exemplar threshold in milliseconds.
    pub fn slow_ms(mut self, ms: u64) -> Self {
        self.slow_ms = ms;
        self
    }

    /// Sets the `/debug/requests` ring capacity (clamped to at least 1).
    pub fn debug_ring(mut self, capacity: usize) -> Self {
        self.debug_ring = capacity.max(1);
        self
    }

    /// Enables or disables HTTP/1.1 keep-alive.
    pub fn keep_alive(mut self, enabled: bool) -> Self {
        self.keep_alive = enabled;
        self
    }

    /// Sets the idle-connection timeout in milliseconds.
    pub fn idle_timeout_ms(mut self, ms: u64) -> Self {
        self.idle_timeout_ms = ms;
        self
    }

    /// Sets the per-connection request cap (`0` = unlimited).
    pub fn max_requests_per_conn(mut self, cap: u64) -> Self {
        self.max_requests_per_conn = cap;
        self
    }

    /// Sets the open-connection cap (clamped to at least 1).
    pub fn max_conns(mut self, cap: usize) -> Self {
        self.max_conns = cap.max(1);
        self
    }

    /// Sets the access-log rotation cap in MiB (`0` = no rotation).
    pub fn access_log_max_mb(mut self, mb: u64) -> Self {
        self.access_log_max_mb = mb;
        self
    }

    /// Enables or disables the flight recorder.
    pub fn flight(mut self, enabled: bool) -> Self {
        self.flight = enabled;
        self
    }

    /// Enables or disables span-path mirroring for the sampler.
    pub fn sampler(mut self, enabled: bool) -> Self {
        self.sampler = enabled;
        self
    }

    /// Sets the reload shard count (clamped to at least 1).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Records the snapshot file this server boots from (also the
    /// default reload source).
    pub fn snapshot(mut self, path: impl Into<String>) -> Self {
        self.snapshot = Some(path.into());
        self
    }

    /// Sets where `/admin/reload` and SIGHUP rebuild the index from.
    pub fn reload_from(mut self, source: ReloadSource) -> Self {
        self.reload = Some(source);
        self
    }

    /// Enables or disables the tracing/tsdb/SLO observation layer.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Sets the time-series store retention in seconds (clamped to at
    /// least 1).
    pub fn tsdb_retention_s(mut self, secs: usize) -> Self {
        self.tsdb_retention_s = secs.max(1);
        self
    }

    /// Sets the identify-latency SLO threshold in milliseconds.
    pub fn slo_identify_p99_ms(mut self, ms: u64) -> Self {
        self.slo_identify_p99_ms = ms;
        self
    }

    /// Sets the availability objective percentage (clamped into
    /// `[50, 99.999]` so the error budget never degenerates).
    pub fn slo_availability_pct(mut self, pct: f64) -> Self {
        self.slo_availability_pct = pct.clamp(50.0, 99.999);
        self
    }

    /// The effective reload source: the explicit `reload` policy, else
    /// the boot snapshot.
    pub(crate) fn reload_source(&self) -> Option<ReloadSource> {
        self.reload
            .clone()
            .or_else(|| self.snapshot.clone().map(ReloadSource::Snapshot))
    }
}

/// One framed request traveling from the event loop to a worker.
pub(crate) struct Work {
    pub request: Request,
    /// Connection slot + generation guard for the completion route.
    pub slot: usize,
    pub generation: u64,
    /// Position in the connection's response order.
    pub seq: u64,
    /// The request's clock origin (first byte / accept).
    pub started: Instant,
    /// Absolute deadline; work dequeued past it is answered `503`.
    pub deadline: Instant,
    /// Whether the response must carry `Connection: close`.
    pub close_after: bool,
    /// When the loop pushed the work; the worker reads the queue-wait
    /// stage off this at dequeue.
    pub enqueued: Instant,
    pub rec: RequestRecord,
    /// The index generation pinned at admission: this request answers
    /// from this exact index and cache no matter how many swaps land
    /// while it is in flight.
    pub index_gen: Arc<Generation>,
}

/// Everything a worker needs, shared immutably.
struct Ctx {
    /// The live handle — used only by `/admin/reload`; request serving
    /// goes through the generation pinned on each [`Work`].
    handle: IndexHandle,
    batcher: Batcher,
    shared: Arc<LoopShared>,
    telemetry: Arc<Telemetry>,
    /// Where `/admin/reload` rebuilds from (`None` = reload disabled).
    reload: Option<ReloadSource>,
    /// Shard count for swapped-in rebuilds.
    shards: usize,
}

/// A running query server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting, drains admitted work, and
/// joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shared: Arc<LoopShared>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Batcher,
    batcher_thread: Option<JoinHandle<()>>,
    worker_count: usize,
}

impl Server {
    /// Binds, spawns the event-loop thread, the worker pool, and the
    /// batcher, and starts answering. Also enables `rt::obs` so the
    /// `/metrics` endpoint has counters to export.
    ///
    /// Accepts anything that converts into an [`IndexHandle`]: a bare
    /// [`crate::ServeIndex`] (one shard, generation 1), a
    /// [`crate::ShardedIndex`], or an existing handle — the latter lets
    /// the caller keep a clone and drive swaps externally.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the listener cannot bind or the waker pipe
    /// cannot be created.
    pub fn start(index: impl Into<IndexHandle>, config: &ServeConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Best effort: a large connection cap needs file descriptors.
        let _ = patchdb_rt::net::raise_nofile_limit(config.max_conns as u64 + 64);
        obs::set_enabled(true);
        // The introspection runtime: the flight recorder journals the
        // event loop and workers (and dumps a black box on panic), the
        // sampler mirrors span paths for `/debug/profile`. Both are
        // observational only — toggling them never changes response
        // bytes (pinned by `tests/serve.rs`).
        obs::flight::set_enabled(config.flight);
        if config.flight {
            obs::flight::install_panic_hook();
        }
        obs::sampler::set_mirroring(config.sampler);
        // The correlation-and-objectives layer (PR 10): same contract as
        // the recorder and sampler — flipping it never changes response
        // bytes, only what gets observed.
        crate::set_tracing(config.tracing);
        obs::tsdb::set_retention_s(config.tsdb_retention_s);
        let telemetry = Arc::new(Telemetry::new(config)?);

        let handle: IndexHandle = index.into();
        let reload_source = config.reload_source();
        let worker_count = if config.threads == 0 {
            par::configured_threads(8)
        } else {
            config.threads
        };
        let queue: Arc<BoundedQueue<Work>> =
            Arc::new(BoundedQueue::new(config.max_inflight));
        let (waker, wake_rx) = Waker::new()?;
        // SIGHUP-driven reload: the handler only sets a flag and writes
        // one byte to the loop's self-pipe (both async-signal-safe); the
        // event loop notices the byte, sees the flag, and runs the
        // rebuild on a spawned thread. Without a reload source the
        // signal is left at its default disposition.
        if reload_source.is_some() {
            patchdb_rt::net::install_sighup_handler(waker.raw_write_fd());
        }
        let shared = Arc::new(LoopShared::new(waker));
        let (batcher, batcher_thread) = Batcher::start(
            handle.clone(),
            Duration::from_millis(config.batch_window_ms),
            Arc::clone(&shared),
        );

        let ctx = Arc::new(Ctx {
            handle: handle.clone(),
            batcher: batcher.clone(),
            shared: Arc::clone(&shared),
            telemetry: Arc::clone(&telemetry),
            reload: reload_source,
            shards: config.shards.max(1),
        });
        let workers: Vec<JoinHandle<()>> = (0..worker_count)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("patchdb-serve-worker-{i}"))
                    .spawn(move || loop {
                        // The wait/work split is the profiler's idle
                        // signal: `sampler::frame` costs one interned-id
                        // push per call (no registry growth), cheap
                        // enough for the hot path.
                        let popped = {
                            let _wait = obs::sampler::frame("serve.worker.wait");
                            queue.pop()
                        };
                        let Some(work) = popped else { break };
                        let _busy = obs::sampler::frame("serve.worker");
                        handle_work(work, &ctx);
                    })
                    .expect("spawn worker thread")
            })
            .collect();

        let stop = Arc::new(AtomicBool::new(false));
        let event_loop = EventLoop::new(
            listener,
            Arc::clone(&queue),
            Arc::clone(&shared),
            wake_rx,
            Arc::clone(&stop),
            Arc::clone(&telemetry),
            config,
            handle,
        );
        let loop_thread = std::thread::Builder::new()
            .name("patchdb-serve-loop".into())
            .spawn(move || event_loop.run())
            .expect("spawn event-loop thread");

        Ok(Server {
            local_addr,
            stop,
            shared,
            event_loop: Some(loop_thread),
            workers,
            batcher,
            batcher_thread: Some(batcher_thread),
            worker_count,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The effective worker-pool size.
    pub fn workers(&self) -> usize {
        self.worker_count
    }

    /// Graceful shutdown: stop accepting, answer everything already
    /// admitted (pipelined requests included), then join the event
    /// loop, the workers, and the batcher. Returns once every thread
    /// has exited.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    /// Blocks the calling thread for the lifetime of the process — the
    /// CLI's foreground mode. The server keeps serving; only process
    /// death (signal) ends it.
    pub fn wait(mut self) {
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn shutdown_impl(&mut self) {
        if self.event_loop.is_none() {
            return; // already shut down (or waited out)
        }
        self.stop.store(true, Ordering::SeqCst);
        // The self-pipe waker interrupts the poll; no throwaway
        // connection needed. The loop drains, then closes the queue.
        self.shared.wake();
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.batcher.shutdown();
        if let Some(b) = self.batcher_thread.take() {
            let _ = b.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Counter name for a response status. Every status the server actually
/// emits maps to a static name so the per-request counter bump never
/// allocates; an unexpected status still gets counted, just through a
/// one-off `format!`.
pub(crate) fn status_counter(status: u16) -> std::borrow::Cow<'static, str> {
    match status {
        200 => "serve.status.200".into(),
        400 => "serve.status.400".into(),
        404 => "serve.status.404".into(),
        405 => "serve.status.405".into(),
        409 => "serve.status.409".into(),
        413 => "serve.status.413".into(),
        429 => "serve.status.429".into(),
        500 => "serve.status.500".into(),
        503 => "serve.status.503".into(),
        other => format!("serve.status.{other}").into(),
    }
}

/// Builds and publishes the completion for one finished request: banks
/// the endpoint counters and status, renders the head, and wakes the
/// loop.
fn reply(work: Work, endpoint: &'static str, response: Response, ctx: &Ctx) {
    let mut rec = work.rec;
    rec.endpoint = endpoint;
    // A *client-supplied* trace id is echoed into error-envelope bodies
    // for correlation; derived ids stay header-only so bodies remain
    // byte-identical for clients that sent no trace header.
    let response = if response.status >= 400 && rec.trace_supplied {
        response.with_trace(&rec.trace)
    } else {
        response
    };
    rec.status = response.status;
    obs::counter_add(&status_counter(response.status), 1);
    // HEAD answers with the GET entity's headers (Content-Length
    // included, per RFC 9110) but no body — the head is rendered before
    // the body is dropped so the two stay consistent.
    let head = render_head(&response, !work.close_after, Some((rec.id, &rec.trace)));
    let body = if work.request.method == "HEAD" { Vec::new() } else { response.body };
    ctx.shared.complete(Completion {
        slot: work.slot,
        generation: work.generation,
        seq: work.seq,
        started: work.started,
        head,
        body,
        rec,
        close_after: work.close_after,
    });
}

/// Worker entry for one framed request: closes out the queue stage,
/// runs the endpoint, and completes back to the loop. `/v1/identify`
/// detaches into the batcher instead of blocking here.
fn handle_work(mut work: Work, ctx: &Ctx) {
    obs::gauge_add("serve.queue_depth", -1);
    obs::flight::record(obs::flight::FlightKind::Queue, "serve.queue.pop", work.rec.id);
    work.rec.queue_ns = elapsed_ns(work.enqueued);
    if Instant::now() >= work.deadline {
        obs::counter_add("serve.deadline_expired", 1);
        reply(work, "deadline", Response::overloaded(1), ctx);
        return;
    }

    // `/v1/identify` (POST) is the asynchronous path: feature
    // extraction happens here, scoring and completion happen on the
    // batcher thread so this worker is free immediately.
    if work.request.path == "/v1/identify" && work.request.method == "POST" {
        let started = Instant::now();
        // Content-addressed fast path: a previously scored body answers
        // from the cache without parsing, feature extraction, or a trip
        // through the batcher — identify is pure in the body bytes, so
        // the response is byte-identical to the full pipeline's.
        let key = cache_key(&work.request.body);
        if let Some(score) = work.index_gen.cache.lookup(key, &work.request.body) {
            work.rec.compute_ns = elapsed_ns(started);
            work.rec.cache = Some(true);
            obs::counter_add("serve.identify.requests", 1);
            obs::counter_add("serve.identify.cache_hits", 1);
            obs::hist_record("serve.identify.ns", elapsed_ns(started));
            reply(work, "identify", identify_response(score), ctx);
            return;
        }
        work.rec.cache = Some(false);
        match parse_patch_body(&work.request) {
            Err(response) => {
                work.rec.compute_ns = elapsed_ns(started);
                reply(work, "identify", response, ctx);
            }
            Ok(patch) => {
                let row = work.index_gen.index.weighted_features(&patch);
                let body = std::mem::take(&mut work.request.body);
                work.rec.compute_ns = elapsed_ns(started);
                obs::counter_add("serve.identify.requests", 1);
                let index_gen = Arc::clone(&work.index_gen);
                ctx.batcher.submit_detached(
                    row,
                    IdentifyTicket {
                        slot: work.slot,
                        generation: work.generation,
                        seq: work.seq,
                        started: work.started,
                        dispatch_started: started,
                        submitted: Instant::now(),
                        close_after: work.close_after,
                        rec: work.rec,
                        cache_key: key,
                        body,
                        index_gen,
                    },
                );
            }
        }
        return;
    }

    let started = Instant::now();
    let (endpoint, response) = dispatch(&work.request, &work.index_gen, ctx, &mut work.rec);
    let dispatch_ns = elapsed_ns(started);
    work.rec.compute_ns = dispatch_ns;
    obs::counter_add(&format!("serve.{endpoint}.requests"), 1);
    obs::hist_record(&format!("serve.{endpoint}.ns"), dispatch_ns);
    reply(work, endpoint, response, ctx);
}

/// Routes one (non-identify) request against the generation it pinned
/// at admission; returns the endpoint label the metrics use. `rec` is
/// the request's telemetry record — endpoints with per-shard fan-outs
/// attach their shard timings to it.
fn dispatch(
    request: &Request,
    gen: &Generation,
    ctx: &Ctx,
    rec: &mut RequestRecord,
) -> (&'static str, Response) {
    let path = request.path.as_str();
    // HEAD routes exactly like GET; `reply` drops the body after the
    // head (Content-Length included) is rendered.
    let get = request.method == "GET" || request.method == "HEAD";
    let post = request.method == "POST";
    match path {
        "/healthz" if get => (
            "healthz",
            Response::text(
                200,
                format!("ok gen={} up={}\n", gen.number, ctx.telemetry.uptime_secs()),
            ),
        ),
        "/metrics" if get => {
            // Snapshot, not report(): counters/gauges/hists/windows only,
            // no span-tree clone under the registry mutex. Uptime and
            // build-info ride along as hand-rendered exposition lines —
            // neither belongs in the registry (one is a clock, the other
            // a constant).
            let mut text = obs::metrics_snapshot().to_metrics_text();
            text.push_str(&format!(
                "# build\npatchdb_uptime_seconds {}\n",
                ctx.telemetry.uptime_secs()
            ));
            text.push_str(&format!(
                "patchdb_build_info{{version=\"{}\",snapshot_schema=\"patchdb-snapshot/v1\",\
                 serve_bench_schema=\"patchdb-serve/v2\"}} 1\n",
                env!("CARGO_PKG_VERSION")
            ));
            ("metrics", Response::metrics(text))
        }
        "/v1/stats" if get => {
            ("stats", Response::json(200, &gen.index.stats_json()))
        }
        "/v1/classify" if post => ("classify", classify(request, gen)),
        "/v1/scan" if post => ("scan", scan(request, gen, rec)),
        "/admin/reload" if post => ("admin_reload", admin_reload(ctx)),
        _ if path.starts_with("/v1/patch/") && get => {
            let id = &path["/v1/patch/".len()..];
            match gen.index.patch_json(id) {
                Some(json) => ("patch", Response::json(200, &json)),
                None => (
                    "patch",
                    Response::error(404, "not_found", "no unique record for that id"),
                ),
            }
        }
        _ if get && (path == "/debug/requests" || path.starts_with("/debug/requests?")) => {
            let n = debug_request_limit(path);
            ("debug_requests", Response::json(200, &ctx.telemetry.debug_requests_json(n)))
        }
        "/debug/slow" if get => {
            ("debug_slow", Response::json(200, &ctx.telemetry.debug_slow_json()))
        }
        _ if get && (path == "/debug/flight" || path.starts_with("/debug/flight?")) => {
            // The recent flight journal as Chrome trace-event JSON —
            // `?ms=N` restricts to the trailing N milliseconds.
            let window_us = query_param(path, "ms").map(|ms| ms.saturating_mul(1_000));
            let snap = obs::flight::snapshot(window_us);
            ("debug_flight", Response::json(200, &obs::export::flight_to_chrome(&snap)))
        }
        _ if get && (path == "/debug/profile" || path.starts_with("/debug/profile?")) => {
            // Inline sampling profile: blocks this one worker for
            // `seconds` (clamped to 10) while the sampler thread walks
            // the seqlock slots at `hz`; the rest of the pool keeps
            // serving.
            let seconds = query_param(path, "seconds").unwrap_or(1).clamp(1, 10);
            let hz = query_param(path, "hz").unwrap_or(97);
            let profile = obs::sampler::profile_for(Duration::from_secs(seconds), hz);
            ("debug_profile", Response::json(200, &profile.to_json()))
        }
        _ if get && path.starts_with("/debug/trace/") => {
            let trace = &path["/debug/trace/".len()..];
            match ctx.telemetry.debug_trace_json(trace) {
                Some(doc) => ("debug_trace", Response::json(200, &doc)),
                None => (
                    "debug_trace",
                    Response::error(
                        404,
                        "not_found",
                        "no retained request for that trace id",
                    ),
                ),
            }
        }
        _ if get && (path == "/debug/timeseries" || path.starts_with("/debug/timeseries?")) => {
            ("debug_timeseries", debug_timeseries(path))
        }
        "/debug/slo" if get => (
            "debug_slo",
            Response::json(200, &ctx.telemetry.slo().debug_json(obs::process_second())),
        ),
        "/healthz" | "/metrics" | "/v1/stats" | "/v1/identify" | "/v1/classify"
        | "/v1/scan" | "/admin/reload" | "/debug/requests" | "/debug/slow"
        | "/debug/flight" | "/debug/profile" | "/debug/timeseries" | "/debug/slo" => {
            ("other", Response::error(405, "method_not_allowed", "method not allowed"))
        }
        _ if path.starts_with("/debug/trace/") => {
            ("other", Response::error(405, "method_not_allowed", "method not allowed"))
        }
        _ => ("other", Response::error(404, "not_found", "unknown endpoint")),
    }
}

/// `GET /debug/timeseries?metric=NAME&secs=N`: the named series over
/// the trailing window as a `patchdb-timeseries/v1` document. `400`
/// without a metric, `404` for a series the store never sampled.
fn debug_timeseries(path: &str) -> Response {
    let Some(metric) = query_param_str(path, "metric").filter(|m| !m.is_empty()) else {
        return Response::error(400, "usage", "metric query parameter is required");
    };
    let secs = query_param(path, "secs").unwrap_or(60).max(1);
    let now_s = obs::process_second();
    match obs::tsdb::query(&metric, now_s, secs) {
        None => Response::error(404, "not_found", format!("no such metric series: {metric}")),
        Some(points) => Response::json(
            200,
            &Json::Obj(vec![
                ("schema".into(), Json::Str("patchdb-timeseries/v1".into())),
                ("metric".into(), Json::Str(metric)),
                ("retention_s".into(), Json::Num(obs::tsdb::retention_s() as f64)),
                ("now_s".into(), Json::Num(now_s as f64)),
                (
                    "points".into(),
                    Json::Arr(
                        points
                            .into_iter()
                            .map(|(s, v)| {
                                Json::Obj(vec![
                                    ("s".into(), Json::Num(s as f64)),
                                    ("v".into(), Json::Num(v)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    }
}

/// `POST /admin/reload`: rebuild the index from the configured source
/// and atomically swap it in. The rebuild runs right here on the
/// worker — traffic keeps answering from the old generation on the
/// other workers until the swap lands.
fn admin_reload(ctx: &Ctx) -> Response {
    let Some(source) = &ctx.reload else {
        return Response::error(
            409,
            "usage",
            "no reload source configured; start the server with a dataset or snapshot path",
        );
    };
    match reload(&ctx.handle, source, ctx.shards) {
        Ok(generation) => Response::json(
            200,
            &Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("generation".into(), Json::Num(generation as f64)),
            ]),
        ),
        Err(e) => {
            let status = if matches!(e, Error::Usage(_)) { 400 } else { 500 };
            Response::error(status, e.code(), e.to_string())
        }
    }
}

/// The integer value of `key=N` in the path's query string, if present.
fn query_param(path: &str, key: &str) -> Option<u64> {
    query_param_str(path, key).and_then(|v| v.parse().ok())
}

/// The raw string value of `key=...` in the path's query string.
fn query_param_str(path: &str, key: &str) -> Option<String> {
    let (_, query) = path.split_once('?')?;
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
        .map(str::to_owned)
}

/// How many records `/debug/requests` should return: the `n` query
/// parameter, else 64.
fn debug_request_limit(path: &str) -> usize {
    const DEFAULT: usize = 64;
    let Some((_, query)) = path.split_once('?') else {
        return DEFAULT;
    };
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix("n="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT)
}

/// Parses the request body as a unified diff, or explains why not.
fn parse_patch_body(request: &Request) -> Result<Patch, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "bad_request", "body is not UTF-8"))?;
    Patch::parse(text)
        .map_err(|e| Response::error(400, "bad_request", format!("not a unified diff: {e}")))
}

fn classify(request: &Request, gen: &Generation) -> Response {
    match parse_patch_body(request) {
        Ok(patch) => Response::json(200, &gen.index.classify_json(&patch)),
        Err(r) => r,
    }
}

fn scan(request: &Request, gen: &Generation, rec: &mut RequestRecord) -> Response {
    let Ok(target) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "bad_request", "body is not UTF-8");
    };
    let (outcome, shard_ns) = gen.index.scan_traced(target);
    if crate::tracing_enabled() {
        rec.shards = shard_ns;
    }
    let matches = outcome
        .matches
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("commit".into(), Json::Str(m.commit.to_string())),
                (
                    "cve_id".into(),
                    m.cve_id.as_ref().map_or(Json::Null, |c| Json::Str(c.clone())),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        &Json::Obj(vec![
            ("vulnerable".into(), Json::Num(outcome.matches.len() as f64)),
            ("patched".into(), Json::Num(outcome.patched as f64)),
            ("matches".into(), Json::Arr(matches)),
        ]),
    )
}
