//! N-way sharded serving: one logical index partitioned across N
//! [`ServeIndex`] shards — a single-box rehearsal of horizontal
//! scale-out whose merged answers are byte-identical to the 1-shard
//! server's.
//!
//! The partition is deterministic and *contiguous*: records (per
//! dataset component) and compiled signatures are split into N
//! contiguous chunks, so concatenating per-shard results in shard
//! order reproduces the unsharded iteration order exactly. The learned
//! model — Table I weights and the random forest — is global: it was
//! fit over the whole dataset, every shard carries the same copy, and
//! identify answers can never depend on which shard scored them.
//!
//! Merges are exact, not approximate:
//! * `/v1/stats` sums raw per-shard counts (`StatsParts::merge`) and
//!   normalizes once, through the same renderer as the 1-shard path.
//! * `/v1/scan` concatenates per-shard matches in shard order (= global
//!   signature order, by contiguity).
//! * `/v1/patch/<id>` sums per-shard prefix-match counts and answers
//!   only when the global total is exactly one.

use std::sync::Arc;

use patch_core::Patch;
use patchdb::PatchDb;
use patchdb_rt::json::Json;

use crate::index::{ScanOutcome, ServeIndex};

/// A logical index served by N deterministic shards. `N = 1` is the
/// degenerate (and default) case: one shard holding everything.
pub struct ShardedIndex {
    shards: Vec<Arc<ServeIndex>>,
}

/// Splits `v` into `n` contiguous chunks with the deterministic
/// boundaries `[i*len/n, (i+1)*len/n)` — balanced to within one element
/// and independent of anything but `len` and `n`.
fn split<T>(v: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let len = v.len();
    let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in v.into_iter().enumerate() {
        // Inverse of the boundary formula: item i belongs to the chunk
        // whose range contains it.
        let shard = (i * n) / len.max(1);
        out[shard.min(n - 1)].push(item);
    }
    out
}

impl ShardedIndex {
    /// Wraps a built index as a single shard.
    pub fn single(index: ServeIndex) -> ShardedIndex {
        ShardedIndex { shards: vec![Arc::new(index)] }
    }

    /// Partitions a built index across `n` shards (clamped to at least
    /// 1). The dataset and the signature list are split contiguously;
    /// the learned weights and forest are cloned into every shard.
    pub fn from_index(index: ServeIndex, n: usize) -> ShardedIndex {
        let n = n.max(1);
        if n == 1 {
            return Self::single(index);
        }
        let (db, weights, forest, signatures) = index.into_parts();
        let PatchDb { nvd, wild, non_security, synthetic } = db;
        let mut nvd = split(nvd, n).into_iter();
        let mut wild = split(wild, n).into_iter();
        let mut non_security = split(non_security, n).into_iter();
        let mut synthetic = split(synthetic, n).into_iter();
        let mut signatures = split(signatures, n).into_iter();
        let shards = (0..n)
            .map(|_| {
                let shard_db = PatchDb {
                    nvd: nvd.next().unwrap(),
                    wild: wild.next().unwrap(),
                    non_security: non_security.next().unwrap(),
                    synthetic: synthetic.next().unwrap(),
                };
                Arc::new(ServeIndex::from_parts(
                    shard_db,
                    weights.clone(),
                    forest.clone(),
                    signatures.next().unwrap(),
                ))
            })
            .collect();
        ShardedIndex { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total precompiled signatures across shards.
    pub fn signature_count(&self) -> usize {
        self.shards.iter().map(|s| s.signature_count()).sum()
    }

    /// The weighted feature row for one patch. The weights are global,
    /// so any shard computes the identical row.
    pub fn weighted_features(&self, patch: &Patch) -> Vec<f64> {
        self.shards[0].weighted_features(patch)
    }

    /// Scores a batch of rows, scattering contiguous row chunks across
    /// shards and gathering in order. Every shard carries the same
    /// global forest, so the gathered scores equal the 1-shard answer
    /// row for row.
    pub fn score_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if self.shards.len() == 1 || rows.len() < 2 {
            return self.shards[0].score_rows(rows);
        }
        let n = self.shards.len().min(rows.len());
        let per = rows.len().div_ceil(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(per)
                .zip(&self.shards)
                .map(|(chunk, shard)| scope.spawn(move || shard.score_rows(chunk)))
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("shard scorer")).collect()
        })
    }

    /// Scatter-gather scan: every shard tests its own signature range
    /// concurrently; matches concatenate in shard order, which by
    /// contiguity is exactly the unsharded signature order.
    pub fn scan(&self, target: &str) -> ScanOutcome {
        if self.shards.len() == 1 {
            return self.shards[0].scan(target);
        }
        let partials: Vec<ScanOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| scope.spawn(move || shard.scan(target)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard scanner")).collect()
        });
        let mut merged = ScanOutcome::default();
        for p in partials {
            merged.matches.extend(p.matches);
            merged.patched += p.patched;
        }
        merged
    }

    /// The `/v1/stats` document, merged from per-shard raw counts and
    /// rendered through the same code path as the 1-shard answer.
    pub fn stats_json(&self) -> Json {
        let mut parts = self.shards[0].stats_parts();
        for shard in &self.shards[1..] {
            parts.merge(&shard.stats_parts());
        }
        parts.render()
    }

    /// The `/v1/patch/<id>` document. A prefix is unique only globally:
    /// per-shard match counts are summed, and a hit unique within one
    /// shard but duplicated in another resolves to `None`, exactly as
    /// the unsharded lookup would.
    pub fn patch_json(&self, id: &str) -> Option<Json> {
        let mut total = 0usize;
        let mut unique: Option<Json> = None;
        for shard in &self.shards {
            let (hits, first) = shard.patch_lookup(id);
            if total == 0 && hits == 1 {
                unique = first;
            }
            total += hits;
            if total > 1 {
                return None;
            }
        }
        if total == 1 { unique } else { None }
    }

    /// The `/v1/classify` document (a pure function of the patch; any
    /// shard answers identically).
    pub fn classify_json(&self, patch: &Patch) -> Json {
        self.shards[0].classify_json(patch)
    }
}

impl From<ServeIndex> for ShardedIndex {
    fn from(index: ServeIndex) -> Self {
        ShardedIndex::single(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb::BuildOptions;

    fn built_index() -> ServeIndex {
        ServeIndex::build(PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db)
    }

    #[test]
    fn split_boundaries_are_contiguous_and_balanced() {
        let chunks = split((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(chunks.len(), 4);
        let flat: Vec<i32> = chunks.iter().flatten().copied().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert!(chunks.iter().all(|c| (2..=3).contains(&c.len())));
        // Degenerate shapes must not panic or lose elements.
        assert_eq!(split(Vec::<i32>::new(), 3).len(), 3);
        let more_shards = split(vec![1, 2], 5);
        assert_eq!(more_shards.iter().flatten().count(), 2);
    }

    #[test]
    fn four_shards_answer_byte_identically_to_one() {
        let one = ShardedIndex::single(built_index());
        let four = ShardedIndex::from_index(built_index(), 4);
        assert_eq!(four.shard_count(), 4);
        assert_eq!(one.signature_count(), four.signature_count());
        assert_eq!(
            one.stats_json().to_pretty_string(),
            four.stats_json().to_pretty_string()
        );
        let db = PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db;
        let rows: Vec<Vec<f64>> = db
            .records()
            .take(20)
            .map(|r| one.weighted_features(&r.patch))
            .collect();
        assert_eq!(one.score_rows(&rows), four.score_rows(&rows));
        for r in db.security_patches().take(10) {
            let before: String = r
                .patch
                .hunks()
                .flat_map(|h| {
                    h.lines.iter().filter(|l| l.kind != patch_core::LineKind::Added)
                })
                .map(|l| l.content.clone() + "\n")
                .collect();
            assert_eq!(one.scan(&before), four.scan(&before), "scan order must merge stably");
        }
        for r in db.records().take(10) {
            let id = r.commit.to_string();
            assert_eq!(
                one.patch_json(&id).map(|j| j.to_pretty_string()),
                four.patch_json(&id).map(|j| j.to_pretty_string()),
                "patch lookup diverged for {id}"
            );
        }
    }
}
