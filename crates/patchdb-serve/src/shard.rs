//! N-way sharded serving: one logical index partitioned across N
//! [`ServeIndex`] shards — a single-box rehearsal of horizontal
//! scale-out whose merged answers are byte-identical to the 1-shard
//! server's.
//!
//! The partition is deterministic and *contiguous*: records (per
//! dataset component) and compiled signatures are split into N
//! contiguous chunks, so concatenating per-shard results in shard
//! order reproduces the unsharded iteration order exactly. The learned
//! model — Table I weights and the random forest — is global: it was
//! fit over the whole dataset, every shard carries the same copy, and
//! identify answers can never depend on which shard scored them.
//!
//! Merges are exact, not approximate:
//! * `/v1/stats` sums raw per-shard counts (`StatsParts::merge`) and
//!   normalizes once, through the same renderer as the 1-shard path.
//! * `/v1/scan` concatenates per-shard matches in shard order (= global
//!   signature order, by contiguity).
//! * `/v1/patch/<id>` sums per-shard prefix-match counts and answers
//!   only when the global total is exactly one.

use std::sync::Arc;
use std::time::Instant;

use patch_core::Patch;
use patchdb::PatchDb;
use patchdb_rt::json::Json;
use patchdb_rt::obs;

use crate::index::{ScanOutcome, ServeIndex};
use crate::telemetry::elapsed_ns;

/// Banks the attribution for one real scatter-gather fan-out: the
/// fan-out counter, one latency histogram per shard position, the
/// scatter-imbalance histogram (slowest minus fastest — the number that
/// says whether the contiguous partition is actually balanced), and one
/// flight-journal span exit per shard. Gated on the tracing toggle;
/// shard indices are stable across requests, so the per-position
/// histograms read as "shard 2 is the slow one", not noise.
fn record_fanout(op: &'static str, shard_ns: &[u64]) {
    if !crate::tracing_enabled() || shard_ns.is_empty() {
        return;
    }
    obs::counter_add("serve.shard.fanout", 1);
    let mut fastest = u64::MAX;
    let mut slowest = 0u64;
    for (i, &ns) in shard_ns.iter().enumerate() {
        obs::hist_record(&format!("serve.shard.{i}.ns"), ns);
        obs::flight::record_dyn(
            obs::flight::FlightKind::SpanExit,
            &format!("serve.shard.{i}.{op}"),
            ns,
        );
        fastest = fastest.min(ns);
        slowest = slowest.max(ns);
    }
    obs::hist_record("serve.shard.imbalance_ns", slowest - fastest);
}

/// A logical index served by N deterministic shards. `N = 1` is the
/// degenerate (and default) case: one shard holding everything.
pub struct ShardedIndex {
    shards: Vec<Arc<ServeIndex>>,
}

/// Splits `v` into `n` contiguous chunks with the deterministic
/// boundaries `[i*len/n, (i+1)*len/n)` — balanced to within one element
/// and independent of anything but `len` and `n`.
fn split<T>(v: Vec<T>, n: usize) -> Vec<Vec<T>> {
    let len = v.len();
    let mut out: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
    for (i, item) in v.into_iter().enumerate() {
        // Inverse of the boundary formula: item i belongs to the chunk
        // whose range contains it.
        let shard = (i * n) / len.max(1);
        out[shard.min(n - 1)].push(item);
    }
    out
}

impl ShardedIndex {
    /// Wraps a built index as a single shard.
    pub fn single(index: ServeIndex) -> ShardedIndex {
        ShardedIndex { shards: vec![Arc::new(index)] }
    }

    /// Partitions a built index across `n` shards (clamped to at least
    /// 1). The dataset and the signature list are split contiguously;
    /// the learned weights and forest are cloned into every shard.
    pub fn from_index(index: ServeIndex, n: usize) -> ShardedIndex {
        let n = n.max(1);
        if n == 1 {
            return Self::single(index);
        }
        let (db, weights, forest, signatures) = index.into_parts();
        let PatchDb { nvd, wild, non_security, synthetic } = db;
        let mut nvd = split(nvd, n).into_iter();
        let mut wild = split(wild, n).into_iter();
        let mut non_security = split(non_security, n).into_iter();
        let mut synthetic = split(synthetic, n).into_iter();
        let mut signatures = split(signatures, n).into_iter();
        let shards = (0..n)
            .map(|_| {
                let shard_db = PatchDb {
                    nvd: nvd.next().unwrap(),
                    wild: wild.next().unwrap(),
                    non_security: non_security.next().unwrap(),
                    synthetic: synthetic.next().unwrap(),
                };
                Arc::new(ServeIndex::from_parts(
                    shard_db,
                    weights.clone(),
                    forest.clone(),
                    signatures.next().unwrap(),
                ))
            })
            .collect();
        ShardedIndex { shards }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total precompiled signatures across shards.
    pub fn signature_count(&self) -> usize {
        self.shards.iter().map(|s| s.signature_count()).sum()
    }

    /// The weighted feature row for one patch. The weights are global,
    /// so any shard computes the identical row.
    pub fn weighted_features(&self, patch: &Patch) -> Vec<f64> {
        self.shards[0].weighted_features(patch)
    }

    /// Scores a batch of rows, scattering contiguous row chunks across
    /// shards and gathering in order. Every shard carries the same
    /// global forest, so the gathered scores equal the 1-shard answer
    /// row for row.
    pub fn score_rows(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.score_rows_traced(rows).0
    }

    /// [`score_rows`](Self::score_rows) plus per-shard attribution: the
    /// second element is each shard's compute nanoseconds in shard
    /// order, empty when no real fan-out happened (single shard or the
    /// tiny-batch fast path). Timings are wall clocks taken *inside*
    /// each spawned scorer, so they exclude spawn/join overhead and sum
    /// to at most the scatter's wall time times the shard count.
    pub(crate) fn score_rows_traced(&self, rows: &[Vec<f64>]) -> (Vec<f64>, Vec<u64>) {
        if self.shards.len() == 1 || rows.len() < 2 {
            return (self.shards[0].score_rows(rows), Vec::new());
        }
        let _scatter = obs::sampler::frame("serve.shard.score");
        let n = self.shards.len().min(rows.len());
        let per = rows.len().div_ceil(n);
        let parts: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(per)
                .zip(&self.shards)
                .map(|(chunk, shard)| {
                    scope.spawn(move || {
                        let t = Instant::now();
                        let scores = shard.score_rows(chunk);
                        (scores, elapsed_ns(t))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard scorer")).collect()
        });
        let mut scores = Vec::with_capacity(rows.len());
        let mut shard_ns = Vec::with_capacity(parts.len());
        for (part, ns) in parts {
            scores.extend(part);
            shard_ns.push(ns);
        }
        record_fanout("score", &shard_ns);
        (scores, shard_ns)
    }

    /// Scatter-gather scan: every shard tests its own signature range
    /// concurrently; matches concatenate in shard order, which by
    /// contiguity is exactly the unsharded signature order.
    pub fn scan(&self, target: &str) -> ScanOutcome {
        self.scan_traced(target).0
    }

    /// [`scan`](Self::scan) plus per-shard attribution, shaped exactly
    /// like [`score_rows_traced`](Self::score_rows_traced).
    pub(crate) fn scan_traced(&self, target: &str) -> (ScanOutcome, Vec<u64>) {
        if self.shards.len() == 1 {
            return (self.shards[0].scan(target), Vec::new());
        }
        let _scatter = obs::sampler::frame("serve.shard.scan");
        let parts: Vec<(ScanOutcome, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    scope.spawn(move || {
                        let t = Instant::now();
                        let outcome = shard.scan(target);
                        (outcome, elapsed_ns(t))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard scanner")).collect()
        });
        let mut merged = ScanOutcome::default();
        let mut shard_ns = Vec::with_capacity(parts.len());
        for (p, ns) in parts {
            merged.matches.extend(p.matches);
            merged.patched += p.patched;
            shard_ns.push(ns);
        }
        record_fanout("scan", &shard_ns);
        (merged, shard_ns)
    }

    /// The `/v1/stats` document, merged from per-shard raw counts and
    /// rendered through the same code path as the 1-shard answer.
    pub fn stats_json(&self) -> Json {
        let mut parts = self.shards[0].stats_parts();
        for shard in &self.shards[1..] {
            parts.merge(&shard.stats_parts());
        }
        parts.render()
    }

    /// The `/v1/patch/<id>` document. A prefix is unique only globally:
    /// per-shard match counts are summed, and a hit unique within one
    /// shard but duplicated in another resolves to `None`, exactly as
    /// the unsharded lookup would.
    pub fn patch_json(&self, id: &str) -> Option<Json> {
        let mut total = 0usize;
        let mut unique: Option<Json> = None;
        for shard in &self.shards {
            let (hits, first) = shard.patch_lookup(id);
            if total == 0 && hits == 1 {
                unique = first;
            }
            total += hits;
            if total > 1 {
                return None;
            }
        }
        if total == 1 { unique } else { None }
    }

    /// The `/v1/classify` document (a pure function of the patch; any
    /// shard answers identically).
    pub fn classify_json(&self, patch: &Patch) -> Json {
        self.shards[0].classify_json(patch)
    }
}

impl From<ServeIndex> for ShardedIndex {
    fn from(index: ServeIndex) -> Self {
        ShardedIndex::single(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb::BuildOptions;

    fn built_index() -> ServeIndex {
        ServeIndex::build(PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db)
    }

    #[test]
    fn split_boundaries_are_contiguous_and_balanced() {
        let chunks = split((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(chunks.len(), 4);
        let flat: Vec<i32> = chunks.iter().flatten().copied().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
        assert!(chunks.iter().all(|c| (2..=3).contains(&c.len())));
        // Degenerate shapes must not panic or lose elements.
        assert_eq!(split(Vec::<i32>::new(), 3).len(), 3);
        let more_shards = split(vec![1, 2], 5);
        assert_eq!(more_shards.iter().flatten().count(), 2);
    }

    #[test]
    fn four_shards_answer_byte_identically_to_one() {
        let one = ShardedIndex::single(built_index());
        let four = ShardedIndex::from_index(built_index(), 4);
        assert_eq!(four.shard_count(), 4);
        assert_eq!(one.signature_count(), four.signature_count());
        assert_eq!(
            one.stats_json().to_pretty_string(),
            four.stats_json().to_pretty_string()
        );
        let db = PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db;
        let rows: Vec<Vec<f64>> = db
            .records()
            .take(20)
            .map(|r| one.weighted_features(&r.patch))
            .collect();
        assert_eq!(one.score_rows(&rows), four.score_rows(&rows));
        for r in db.security_patches().take(10) {
            let before: String = r
                .patch
                .hunks()
                .flat_map(|h| {
                    h.lines.iter().filter(|l| l.kind != patch_core::LineKind::Added)
                })
                .map(|l| l.content.clone() + "\n")
                .collect();
            assert_eq!(one.scan(&before), four.scan(&before), "scan order must merge stably");
        }
        for r in db.records().take(10) {
            let id = r.commit.to_string();
            assert_eq!(
                one.patch_json(&id).map(|j| j.to_pretty_string()),
                four.patch_json(&id).map(|j| j.to_pretty_string()),
                "patch lookup diverged for {id}"
            );
        }
    }

    #[test]
    fn traced_variants_attribute_each_shard_of_a_real_fanout() {
        let one = ShardedIndex::single(built_index());
        let four = ShardedIndex::from_index(built_index(), 4);
        let db = PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db;
        let rows: Vec<Vec<f64>> = db
            .records()
            .take(8)
            .map(|r| one.weighted_features(&r.patch))
            .collect();

        let (scores, ns) = four.score_rows_traced(&rows);
        assert_eq!(scores, one.score_rows(&rows));
        assert_eq!(ns.len(), 4, "one timing per shard, in shard order");

        let (_, single_ns) = one.score_rows_traced(&rows);
        assert!(single_ns.is_empty(), "no fan-out, no attribution");
        let (_, tiny_ns) = four.score_rows_traced(&rows[..1]);
        assert!(tiny_ns.is_empty(), "tiny-batch fast path skips the scatter");

        let (outcome, scan_ns) = four.scan_traced("int main() { return 0; }\n");
        assert_eq!(outcome, one.scan("int main() { return 0; }\n"));
        assert_eq!(scan_ns.len(), 4);
    }
}
