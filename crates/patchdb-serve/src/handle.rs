//! The live-index handle: an atomically swappable, generation-counted
//! pointer to the currently served [`ShardedIndex`].
//!
//! The swap protocol is copy-on-write and readers never block:
//!
//! * A new generation — index, plus a fresh identify cache, since
//!   cached scores must never leak across generations — is built
//!   entirely *off* the handle (from a dataset file or a snapshot).
//! * [`IndexHandle::swap`] replaces the current `Arc<Generation>` under
//!   a mutex held for a pointer store; [`IndexHandle::load`] is a lock
//!   + `Arc` clone, nanoseconds on the request path.
//! * Requests pin their generation at admission: an in-flight request
//!   keeps answering from the index it started with, a request admitted
//!   after the swap sees the new one, and the old generation is freed
//!   when its last pinned request drops its `Arc`.
//!
//! Swaps are driven by `POST /admin/reload` and SIGHUP (see
//! `event_loop`), surfaced as the `serve.index.generation` gauge, the
//! `serve.index.swaps` counter, `serve.index.swap_ns` /
//! `serve.index.reload_ns` histograms, a generation stamp in
//! `/healthz`, and a flight-recorder event per swap.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use patchdb::{Error, PatchDb};
use patchdb_rt::obs;

use crate::cache::IdentifyCache;
use crate::index::ServeIndex;
use crate::shard::ShardedIndex;

/// One immutable served generation: the index plus its private
/// identify cache.
pub(crate) struct Generation {
    pub(crate) number: u64,
    pub(crate) index: ShardedIndex,
    pub(crate) cache: IdentifyCache,
}

/// A shared, atomically swappable reference to the served index.
///
/// Cloning the handle is cheap and every clone observes the same
/// current generation; [`IndexHandle::swap`] is visible to all clones.
/// Single-index callers construct one with `From<ServeIndex>`.
#[derive(Clone)]
pub struct IndexHandle {
    current: Arc<Mutex<Arc<Generation>>>,
}

impl IndexHandle {
    /// Wraps an index (already sharded or not) as generation 1.
    pub fn new(index: impl Into<ShardedIndex>) -> IndexHandle {
        let generation = Arc::new(Generation {
            number: 1,
            index: index.into(),
            cache: IdentifyCache::new(),
        });
        obs::gauge_set("serve.index.generation", 1);
        IndexHandle { current: Arc::new(Mutex::new(generation)) }
    }

    /// The currently served generation, pinned: the returned `Arc`
    /// keeps that generation's index and cache alive for as long as
    /// the caller holds it, across any number of swaps.
    pub(crate) fn load(&self) -> Arc<Generation> {
        self.current.lock().expect("index handle poisoned").clone()
    }

    /// The current generation number (1-based, bumped by every swap).
    pub fn generation(&self) -> u64 {
        self.load().number
    }

    /// Atomically replaces the served index with `index`, returning the
    /// new generation number. In-flight requests keep the generation
    /// they pinned at admission; requests admitted after this call see
    /// the new one. The critical section is a pointer exchange — no
    /// reader ever waits on an index build.
    pub fn swap(&self, index: impl Into<ShardedIndex>) -> u64 {
        let index = index.into();
        let swap_started = Instant::now();
        let number = {
            let mut current = self.current.lock().expect("index handle poisoned");
            let number = current.number + 1;
            *current = Arc::new(Generation { number, index, cache: IdentifyCache::new() });
            number
        };
        let swap_ns = swap_started.elapsed().as_nanos() as u64;
        obs::counter_add("serve.index.swaps", 1);
        obs::hist_record("serve.index.swap_ns", swap_ns);
        obs::gauge_set("serve.index.generation", number as i64);
        // The fresh generation starts with an empty cache; reset the
        // occupancy gauges its predecessor left behind.
        obs::gauge_set("serve.identify.cache_entries", 0);
        obs::gauge_set("serve.identify.cache_bytes", 0);
        obs::flight::record(obs::flight::FlightKind::Counter, "serve.index.swap", number);
        // Stamp the swap into the time-series store immediately — an
        // idle server's next per-second sample could be up to a second
        // away, and swap-vs-latency correlation is the point of the
        // generation series.
        obs::tsdb::record_at("serve.index.generation", obs::process_second(), number as f64);
        number
    }
}

impl From<ServeIndex> for IndexHandle {
    fn from(index: ServeIndex) -> Self {
        IndexHandle::new(ShardedIndex::single(index))
    }
}

impl From<ShardedIndex> for IndexHandle {
    fn from(index: ShardedIndex) -> Self {
        IndexHandle::new(index)
    }
}

/// Where `/admin/reload` and SIGHUP rebuild the next generation from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadSource {
    /// Re-read a built dataset JSON file and re-run the index pipeline
    /// (weights, forest, signatures).
    Dataset(String),
    /// Re-read a `patchdb-snapshot/v1` file (no pipeline at all).
    Snapshot(String),
}

/// Builds the next generation from `source`, shards it `shards` ways,
/// and swaps it in. The entire build happens before the swap — traffic
/// keeps flowing against the old generation throughout.
pub(crate) fn reload(
    handle: &IndexHandle,
    source: &ReloadSource,
    shards: usize,
) -> Result<u64, Error> {
    let started = Instant::now();
    let index = match source {
        ReloadSource::Dataset(path) => {
            let text = std::fs::read_to_string(path)?;
            ServeIndex::build(PatchDb::from_json(&text)?)
        }
        ReloadSource::Snapshot(path) => ServeIndex::load_snapshot(path)?,
    };
    let number = handle.swap(ShardedIndex::from_index(index, shards));
    obs::hist_record("serve.index.reload_ns", started.elapsed().as_nanos() as u64);
    Ok(number)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchdb::BuildOptions;

    fn built_index() -> ServeIndex {
        ServeIndex::build(PatchDb::build(&BuildOptions::tiny(5).synthesize(false)).db)
    }

    #[test]
    fn swap_bumps_generation_and_pins_old_readers() {
        let handle = IndexHandle::from(built_index());
        assert_eq!(handle.generation(), 1);
        let pinned = handle.load();
        let sigs_before = pinned.index.signature_count();
        let new_number = handle.swap(ShardedIndex::from_index(built_index(), 2));
        assert_eq!(new_number, 2);
        assert_eq!(handle.generation(), 2);
        // The pinned generation still answers from the old index.
        assert_eq!(pinned.number, 1);
        assert_eq!(pinned.index.signature_count(), sigs_before);
        assert_eq!(pinned.index.shard_count(), 1);
        assert_eq!(handle.load().index.shard_count(), 2);
    }

    #[test]
    fn clones_share_the_same_current_generation() {
        let handle = IndexHandle::from(built_index());
        let clone = handle.clone();
        handle.swap(ShardedIndex::single(built_index()));
        assert_eq!(clone.generation(), 2);
    }

    #[test]
    fn reload_rejects_a_missing_source() {
        let handle = IndexHandle::from(built_index());
        let missing = ReloadSource::Dataset("/nonexistent/patchdb.json".into());
        assert!(matches!(reload(&handle, &missing, 1), Err(Error::Io(_))));
        // A failed reload must leave the served generation untouched.
        assert_eq!(handle.generation(), 1);
    }
}
