//! The SLO burn-rate engine: declared objectives evaluated over
//! multi-window burn rates with error-budget accounting.
//!
//! An SLO ("99% of identify requests under 250 ms", "99.9% of responses
//! non-5xx") turns raw latency histograms into a yes/no question an
//! operator can act on. The standard multi-window formulation compares
//! the observed bad-event fraction against the budgeted fraction over
//! two windows at once: the short window (5 m) catches a fast burn
//! before the budget is gone, the long window (1 h) confirms it is not
//! a blip. `burn_rate = bad_fraction / (1 - objective)`; a burn rate of
//! 1.0 spends the budget exactly at the rate the objective allows,
//! 14.4 exhausts a 30-day budget in 50 hours.
//!
//! The engine is fed one [`RequestRecord`](crate::telemetry::RequestRecord)
//! per finished request and keeps per-second good/bad tallies in a
//! fixed ring (lazy slot reclamation, same shape as the tsdb's
//! [`SeriesRing`](patchdb_rt::obs::tsdb::SeriesRing)) sized to the
//! longest window. Evaluation runs on the event loop's once-per-second
//! tick: it publishes `serve.slo.*` gauges (milli-units — the registry
//! stores integers) and backs `GET /debug/slo`. Like every observation
//! layer here, the engine reads outcomes and never steers admission,
//! routing, or response bytes.

use std::sync::Mutex;

use patchdb_rt::json::Json;
use patchdb_rt::obs;

use crate::server::ServeConfig;
use crate::telemetry::RequestRecord;

/// The two burn-rate windows, short to long, in seconds.
pub(crate) const SLO_WINDOWS_S: [u64; 2] = [300, 3600];

/// Ring retention: the longest window.
const RETENTION_S: usize = 3600;

/// Marks a never-written tally slot.
const VACANT: u64 = u64::MAX;

/// What a rule counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleKind {
    /// Good when an identify request's total latency is under the
    /// threshold. Only `identify` endpoint records are counted.
    IdentifyLatency,
    /// Good when a response's status is not 5xx. Every finished request
    /// with a written status counts.
    Availability,
}

/// One declared objective.
struct Rule {
    name: &'static str,
    kind: RuleKind,
    /// Objective as a percentage in `(0, 100)`, e.g. `99.0`.
    objective_pct: f64,
    /// Latency threshold in nanoseconds (latency rules only).
    threshold_ns: Option<u64>,
}

impl Rule {
    /// `(good, bad)` deltas this record contributes, or `None` when the
    /// record is outside the rule's population.
    fn classify(&self, record: &RequestRecord) -> Option<bool> {
        match self.kind {
            RuleKind::IdentifyLatency => {
                if record.endpoint != "identify" || record.status == 0 {
                    return None;
                }
                Some(record.total_ns <= self.threshold_ns.unwrap_or(u64::MAX))
            }
            RuleKind::Availability => {
                if record.status == 0 {
                    return None; // client vanished before a status existed
                }
                Some(record.status < 500)
            }
        }
    }
}

/// Per-second `(second, good, bad)` tallies in a fixed ring. Slot
/// `second % len` covers absolute second `second`; a newer second
/// reclaims its colliding slot, an older one is dropped.
struct RateRing {
    slots: Vec<(u64, u64, u64)>,
}

impl RateRing {
    fn new(retention_s: usize) -> RateRing {
        RateRing { slots: vec![(VACANT, 0, 0); retention_s.max(1)] }
    }

    fn add(&mut self, second: u64, good: u64, bad: u64) {
        let idx = (second % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 == second {
            slot.1 += good;
            slot.2 += bad;
            return;
        }
        if slot.0 != VACANT && slot.0 > second {
            return; // late arrival from an evicted second
        }
        *slot = (second, good, bad);
    }

    /// Total `(good, bad)` over `(now_s - window_s, now_s]`.
    fn totals(&self, now_s: u64, window_s: u64) -> (u64, u64) {
        let window = window_s.min(self.slots.len() as u64).max(1);
        let oldest = now_s.saturating_sub(window - 1);
        let mut good = 0;
        let mut bad = 0;
        for &(s, g, b) in &self.slots {
            if s != VACANT && s >= oldest && s <= now_s {
                good += g;
                bad += b;
            }
        }
        (good, bad)
    }
}

/// Burn rate for the observed counts against an objective: the
/// bad-event fraction divided by the budgeted fraction. `0.0` with no
/// events (no traffic burns no budget).
fn burn_rate(good: u64, bad: u64, objective_pct: f64) -> f64 {
    let total = good + bad;
    if total == 0 {
        return 0.0;
    }
    let bad_frac = bad as f64 / total as f64;
    let budget_frac = (1.0 - objective_pct / 100.0).max(1e-9);
    bad_frac / budget_frac
}

/// The engine: declared rules plus their tally rings.
pub(crate) struct SloEngine {
    rules: Vec<Rule>,
    /// One ring per rule, same order; a single lock — the per-request
    /// critical section is two integer adds.
    rings: Mutex<Vec<RateRing>>,
}

impl SloEngine {
    /// Builds the declared objectives from the server config.
    pub fn new(config: &ServeConfig) -> SloEngine {
        let rules = vec![
            Rule {
                name: "identify_latency_p99",
                kind: RuleKind::IdentifyLatency,
                objective_pct: 99.0,
                threshold_ns: Some(config.slo_identify_p99_ms.saturating_mul(1_000_000)),
            },
            Rule {
                name: "availability",
                kind: RuleKind::Availability,
                objective_pct: config.slo_availability_pct,
                threshold_ns: None,
            },
        ];
        let rings = rules.iter().map(|_| RateRing::new(RETENTION_S)).collect();
        SloEngine { rules, rings: Mutex::new(rings) }
    }

    /// Feeds one finished request into every rule it belongs to.
    pub fn observe(&self, record: &RequestRecord) {
        self.observe_at(record, obs::process_second());
    }

    /// [`observe`](Self::observe) at an explicit second, for tests.
    pub fn observe_at(&self, record: &RequestRecord, now_s: u64) {
        let mut rings = self.rings.lock().unwrap();
        for (rule, ring) in self.rules.iter().zip(rings.iter_mut()) {
            match rule.classify(record) {
                Some(true) => ring.add(now_s, 1, 0),
                Some(false) => ring.add(now_s, 0, 1),
                None => {}
            }
        }
    }

    /// Publishes `serve.slo.*` gauges for every rule and window. Gauges
    /// are integers, so rates are published in milli-units:
    /// `burn_5m_milli` of 1000 is a burn rate of exactly 1.0.
    pub fn publish_gauges(&self, now_s: u64) {
        let rings = self.rings.lock().unwrap();
        for (rule, ring) in self.rules.iter().zip(rings.iter()) {
            for &window_s in &SLO_WINDOWS_S {
                let (good, bad) = ring.totals(now_s, window_s);
                let burn = burn_rate(good, bad, rule.objective_pct);
                let label = if window_s == 300 { "5m" } else { "1h" };
                obs::gauge_set(
                    &format!("serve.slo.{}.burn_{}_milli", rule.name, label),
                    (burn * 1000.0).round() as i64,
                );
            }
            let (good, bad) = ring.totals(now_s, SLO_WINDOWS_S[1]);
            let remaining = budget_remaining_pct(good, bad, rule.objective_pct);
            obs::gauge_set(
                &format!("serve.slo.{}.budget_milli_pct", rule.name),
                (remaining * 1000.0).round() as i64,
            );
        }
    }

    /// The `GET /debug/slo` document.
    pub fn debug_json(&self, now_s: u64) -> Json {
        let rings = self.rings.lock().unwrap();
        let rules = self
            .rules
            .iter()
            .zip(rings.iter())
            .map(|(rule, ring)| {
                let windows = SLO_WINDOWS_S
                    .iter()
                    .map(|&window_s| {
                        let (good, bad) = ring.totals(now_s, window_s);
                        Json::Obj(vec![
                            ("window_s".into(), Json::Num(window_s as f64)),
                            ("good".into(), Json::Num(good as f64)),
                            ("bad".into(), Json::Num(bad as f64)),
                            (
                                "burn_rate".into(),
                                Json::Num(burn_rate(good, bad, rule.objective_pct)),
                            ),
                        ])
                    })
                    .collect();
                let (good, bad) = ring.totals(now_s, SLO_WINDOWS_S[1]);
                let mut fields = vec![
                    ("name".into(), Json::Str(rule.name.into())),
                    (
                        "kind".into(),
                        Json::Str(
                            match rule.kind {
                                RuleKind::IdentifyLatency => "latency",
                                RuleKind::Availability => "availability",
                            }
                            .into(),
                        ),
                    ),
                    ("objective_pct".into(), Json::Num(rule.objective_pct)),
                ];
                if let Some(ns) = rule.threshold_ns {
                    fields.push(("threshold_ms".into(), Json::Num(ns as f64 / 1e6)));
                }
                fields.push(("windows".into(), Json::Arr(windows)));
                fields.push((
                    "budget_remaining_pct".into(),
                    Json::Num(budget_remaining_pct(good, bad, rule.objective_pct)),
                ));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str("patchdb-slo/v1".into())),
            ("now_s".into(), Json::Num(now_s as f64)),
            ("rules".into(), Json::Arr(rules)),
        ])
    }
}

/// Percent of the error budget left over the long window, clamped to
/// `[0, 100]`: 100 with no bad events, 0 once the observed bad fraction
/// meets or exceeds the budgeted fraction.
fn budget_remaining_pct(good: u64, bad: u64, objective_pct: f64) -> f64 {
    (100.0 - 100.0 * burn_rate(good, bad, objective_pct)).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::RequestRecord;

    fn identify(total_ns: u64, status: u16) -> RequestRecord {
        let mut r = RequestRecord::admitted(1, 0);
        r.endpoint = "identify";
        r.status = status;
        r.total_ns = total_ns;
        r
    }

    #[test]
    fn burn_rate_math() {
        // 1% bad against a 99% objective: burning exactly at budget.
        assert!((burn_rate(99, 1, 99.0) - 1.0).abs() < 1e-9);
        // 10% bad against 99%: 10x burn.
        assert!((burn_rate(90, 10, 99.0) - 10.0).abs() < 1e-9);
        assert_eq!(burn_rate(0, 0, 99.0), 0.0, "no traffic burns nothing");
        assert_eq!(budget_remaining_pct(100, 0, 99.0), 100.0);
        assert_eq!(budget_remaining_pct(0, 100, 99.0), 0.0, "clamped at zero");
    }

    #[test]
    fn rate_ring_accumulates_within_second_and_reclaims() {
        let mut ring = RateRing::new(4);
        ring.add(10, 1, 0);
        ring.add(10, 0, 1);
        ring.add(11, 1, 0);
        assert_eq!(ring.totals(11, 2), (2, 1));
        assert_eq!(ring.totals(11, 1), (1, 0));
        ring.add(14, 1, 0); // collides with second 10, reclaims
        assert_eq!(ring.totals(14, 4), (2, 0));
        ring.add(10, 5, 5); // beyond the horizon: dropped
        assert_eq!(ring.totals(14, 4), (2, 0));
    }

    #[test]
    fn rules_classify_latency_and_availability() {
        let config = ServeConfig::default().slo_identify_p99_ms(1); // 1 ms
        let engine = SloEngine::new(&config);
        engine.observe_at(&identify(500_000, 200), 100); // fast: good both
        engine.observe_at(&identify(5_000_000, 200), 100); // slow: latency-bad
        engine.observe_at(&identify(500_000, 503), 100); // 5xx: avail-bad
        let mut other = RequestRecord::admitted(9, 0);
        other.endpoint = "healthz";
        other.status = 200;
        engine.observe_at(&other, 100); // not identify: avail-only
        let mut gone = RequestRecord::admitted(10, 0);
        gone.status = 0;
        engine.observe_at(&gone, 100); // no status: counted nowhere

        let doc = engine.debug_json(100);
        let rules = doc.get("rules").and_then(|r| r.as_arr()).unwrap();
        let latency = &rules[0];
        let windows = latency.get("windows").and_then(|w| w.as_arr()).unwrap();
        assert_eq!(windows[0].get("good").and_then(Json::as_f64), Some(2.0));
        assert_eq!(windows[0].get("bad").and_then(Json::as_f64), Some(1.0));
        assert_eq!(latency.get("threshold_ms").and_then(Json::as_f64), Some(1.0));
        let avail = &rules[1];
        let windows = avail.get("windows").and_then(|w| w.as_arr()).unwrap();
        assert_eq!(windows[0].get("good").and_then(Json::as_f64), Some(3.0));
        assert_eq!(windows[0].get("bad").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("patchdb-slo/v1"));
    }

    #[test]
    fn gauges_publish_in_milli_units() {
        // Gauges are last-write-wins and the serve.slo.* names are not
        // touched by any other test, so no registry reset is needed
        // (resetting would race parallel tests on the global registry).
        // The registry only records while enabled — normally done by
        // Server::start, here by hand since no server runs.
        patchdb_rt::obs::set_enabled(true);
        let engine = SloEngine::new(&ServeConfig::default().slo_identify_p99_ms(1));
        // 90 good / 10 bad latency events: burn 10.0 → 10_000 milli.
        for _ in 0..90 {
            engine.observe_at(&identify(1_000, 200), 50);
        }
        for _ in 0..10 {
            engine.observe_at(&identify(5_000_000, 200), 50);
        }
        engine.publish_gauges(50);
        let snap = patchdb_rt::obs::metrics_snapshot();
        let gauge = |name: &str| {
            snap.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
        };
        assert_eq!(gauge("serve.slo.identify_latency_p99.burn_5m_milli"), Some(10_000));
        assert_eq!(gauge("serve.slo.identify_latency_p99.burn_1h_milli"), Some(10_000));
        assert_eq!(gauge("serve.slo.identify_latency_p99.budget_milli_pct"), Some(0));
        assert_eq!(gauge("serve.slo.availability.burn_5m_milli"), Some(0));
        assert_eq!(gauge("serve.slo.availability.budget_milli_pct"), Some(100_000));
    }
}
