//! A deliberately small HTTP/1.1 subset over `std::io` streams: exactly
//! what the loopback query endpoints need, nothing more.
//!
//! Supported: one request per connection (`Connection: close` on every
//! response), request line + headers + `Content-Length` body, bounded
//! header and body sizes. Not supported, by design: keep-alive,
//! chunked transfer, TLS, multipart — the server answers small JSON and
//! plain-text documents on a trusted loopback/LAN socket.

use std::io::{Read, Write};

use patchdb_rt::json::Json;

/// Largest accepted header block; longer requests are answered `400`.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted body (diffs and C files are small); else `413`.
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, path, and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string included verbatim.
    pub path: String,
    /// The body, exactly `Content-Length` bytes (empty without one).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed, mapped to a status by the worker.
#[derive(Debug)]
pub(crate) enum ParseError {
    /// Not parseable as HTTP — answer `400`.
    Malformed(&'static str),
    /// Body or header block over the size bounds — answer `413`.
    TooLarge,
    /// Clean EOF before the request was complete: the client hung up.
    /// No response is possible (the peer is gone), so the worker counts
    /// it under `serve.read_failed` instead of writing a `400` into a
    /// dead socket.
    Disconnected,
    /// Socket error or timeout while reading — no response possible.
    Io(std::io::Error),
}

/// Reads and parses one request from `stream`.
pub(crate) fn parse_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    // Read until the blank line that ends the header block.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::TooLarge);
        }
        let n = stream.read(&mut chunk).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ParseError::Malformed("non-UTF-8 header"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(ParseError::Malformed("bad request line"));
    };
    if !parts.next().is_some_and(|v| v.starts_with("HTTP/1.")) {
        return Err(ParseError::Malformed("not HTTP/1.x"));
    }

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }

    // The body: whatever followed the blank line, then the remainder.
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        let want = (content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(ParseError::Io)?;
        if n == 0 {
            return Err(ParseError::Disconnected);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(Request { method: method.to_ascii_uppercase(), path: path.to_owned(), body })
}

/// Byte offset just past the first `\r\n\r\n` (or bare `\n\n`), if any.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// A response about to be written: status, media type, body, and the
/// optional `Retry-After` backpressure hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Seconds for a `Retry-After` header (`503` shedding responses).
    pub retry_after: Option<u32>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
        }
    }

    /// A compact-JSON response.
    pub fn json(status: u16, json: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: (json.to_compact_string() + "\n").into_bytes(),
            retry_after: None,
        }
    }

    /// The `503` load-shedding response with its `Retry-After` hint.
    pub fn overloaded(retry_after_secs: u32) -> Response {
        let mut r = Response::text(503, "overloaded, retry later\n");
        r.retry_after = Some(retry_after_secs);
        r
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Writes `response` and flushes; the connection then closes.
pub(crate) fn write_response(
    stream: &mut impl Write,
    response: &Response,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ParseError> {
        parse_request(&mut text.as_bytes())
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_exactly() {
        let r = parse(
            "POST /v1/identify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhellotrailing-junk",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn tolerates_bare_lf_separators() {
        let r = parse("POST /x HTTP/1.1\nContent-Length: 2\n\nok").unwrap();
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(parse("not http at all\r\n\r\n"), Err(ParseError::Malformed(_))));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
    }

    #[test]
    fn classifies_client_hangups_as_disconnects() {
        // EOF mid-header and EOF mid-body are the client vanishing, not
        // malformed HTTP: no response can reach them.
        assert!(matches!(parse("GET /healthz HT"), Err(ParseError::Disconnected)));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"),
            Err(ParseError::Disconnected)
        ));
        assert!(matches!(parse(""), Err(ParseError::Disconnected)));
    }

    #[test]
    fn rejects_oversized_bodies_up_front() {
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&huge), Err(ParseError::TooLarge)));
    }

    #[test]
    fn response_wire_format_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::overloaded(1)).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("overloaded, retry later\n"), "{text}");
    }
}
