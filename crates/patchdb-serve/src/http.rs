//! A deliberately small HTTP/1.1 subset, parsed incrementally: exactly
//! what the event-driven query server needs, nothing more.
//!
//! The parser is a feed-bytes/advance state machine in the VTE style —
//! it never reads from a socket and never waits. The event loop feeds
//! whatever bytes `read(2)` produced into [`RequestParser::feed`] and
//! asks [`RequestParser::next_request`] for complete requests; anything
//! short of a full request stays buffered inside the parser, so partial
//! reads never reach a worker. Because the buffer survives across
//! requests, pipelined requests arriving in one TCP segment come out
//! one by one, in order.
//!
//! Supported: request line + headers + `Content-Length` body, bounded
//! header and body sizes, `Connection: keep-alive`/`close` negotiation
//! (HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close). Not supported,
//! by design: chunked transfer, TLS, multipart — the server answers
//! small JSON and plain-text documents on a trusted loopback/LAN
//! socket.

use patchdb_rt::json::Json;

/// Largest accepted header block; longer requests are answered `431`.
pub(crate) const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted body (diffs and C files are small); else `413`.
pub(crate) const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, path, and raw body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string included verbatim.
    pub path: String,
    /// The body, exactly `Content-Length` bytes (empty without one).
    pub body: Vec<u8>,
}

/// One framed request plus the client's connection intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ParsedRequest {
    pub request: Request,
    /// Whether the client asked (or defaulted) to keep the connection
    /// open after this exchange.
    pub keep_alive: bool,
    /// A client-supplied `X-Patchdb-Trace-Id` header value, when present
    /// and well-formed (see [`valid_trace_id`]). `None` means the server
    /// derives a trace id from the admission-ordered request id.
    pub trace: Option<String>,
}

/// Longest accepted client-supplied trace id. Anything longer (or with
/// non-token characters) is ignored rather than echoed — a trace id
/// rides in response headers, the access log, and JSON documents, so it
/// must never carry framing or quoting characters.
pub(crate) const MAX_TRACE_ID_BYTES: usize = 64;

/// Whether a client-supplied trace id is safe to echo: 1–64 bytes of
/// ASCII alphanumerics plus `-`, `_`, `.`, `:`.
pub(crate) fn valid_trace_id(value: &str) -> bool {
    !value.is_empty()
        && value.len() <= MAX_TRACE_ID_BYTES
        && value
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.' | b':'))
}

/// A framing violation. The connection is answered and then closed —
/// after a framing error the byte stream can no longer be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameError {
    /// Header block over [`MAX_HEADER_BYTES`] — answer `431`.
    HeaderTooLarge,
    /// Declared body over [`MAX_BODY_BYTES`] — answer `413`.
    BodyTooLarge,
    /// Not parseable as HTTP — answer `400`.
    Malformed(&'static str),
}

impl FrameError {
    /// The canned response for this violation, in the standard error
    /// envelope.
    pub fn response(&self) -> Response {
        match self {
            FrameError::HeaderTooLarge => {
                Response::error(431, "header_too_large", "request header too large")
            }
            FrameError::BodyTooLarge => {
                Response::error(413, "body_too_large", "request body too large")
            }
            FrameError::Malformed(why) => {
                Response::error(400, "bad_request", format!("bad request: {why}"))
            }
        }
    }
}

/// The head of a request whose body has not fully arrived yet.
#[derive(Debug)]
struct PendingBody {
    /// Offset just past the header terminator in `buf`.
    header_end: usize,
    content_length: usize,
    method: String,
    path: String,
    keep_alive: bool,
    trace: Option<String>,
}

/// Incremental request framer. Feed bytes as they arrive, then drain
/// complete requests; see the module docs for the contract.
#[derive(Debug, Default)]
pub(crate) struct RequestParser {
    buf: Vec<u8>,
    /// Resume offset for the header-terminator scan, so a byte-at-a-time
    /// trickle costs O(n) total instead of O(n²).
    scanned: usize,
    pending: Option<PendingBody>,
    /// Set after a [`FrameError`]: the stream is desynchronized and no
    /// further bytes will be parsed.
    poisoned: bool,
}

impl RequestParser {
    /// Appends freshly read bytes to the frame buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// True while an incomplete request sits in the buffer — the signal
    /// that an EOF now is a mid-request hangup rather than a clean
    /// close between requests.
    pub fn has_partial(&self) -> bool {
        !self.poisoned && (!self.buf.is_empty() || self.pending.is_some())
    }

    /// Bytes currently buffered (partial request plus any pipelined
    /// follow-ups).
    #[cfg(test)]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to frame the next complete request out of the buffer.
    /// `Ok(None)` means "need more bytes". After an `Err` the parser is
    /// poisoned: the connection must answer and close.
    pub fn next_request(&mut self) -> Result<Option<ParsedRequest>, FrameError> {
        if self.poisoned {
            return Ok(None);
        }
        if self.pending.is_none() {
            let Some(header_end) = self.find_header_end() else {
                if self.buf.len() > MAX_HEADER_BYTES {
                    self.poisoned = true;
                    return Err(FrameError::HeaderTooLarge);
                }
                return Ok(None);
            };
            if header_end > MAX_HEADER_BYTES {
                self.poisoned = true;
                return Err(FrameError::HeaderTooLarge);
            }
            match parse_head(&self.buf[..header_end]) {
                Ok(mut head) => {
                    head.header_end = header_end;
                    self.pending = Some(head);
                }
                Err(e) => {
                    self.poisoned = true;
                    return Err(e);
                }
            }
        }
        let pending = self.pending.as_ref().expect("pending head set above");
        let frame_len = pending.header_end + pending.content_length;
        if self.buf.len() < frame_len {
            return Ok(None);
        }
        let pending = self.pending.take().expect("pending head checked above");
        let body = self.buf[pending.header_end..frame_len].to_vec();
        self.buf.drain(..frame_len);
        self.scanned = 0;
        Ok(Some(ParsedRequest {
            request: Request { method: pending.method, path: pending.path, body },
            keep_alive: pending.keep_alive,
            trace: pending.trace,
        }))
    }

    /// Byte offset just past the *earliest* header terminator — either
    /// `\r\n\r\n` or a bare `\n\n`, whichever ends first — resuming from
    /// where the last scan left off. Earliest matters: preferring CRLF
    /// over the whole buffer would let a later CRLF-framed request
    /// swallow an LF-framed one pipelined ahead of it.
    fn find_header_end(&mut self) -> Option<usize> {
        let from = self.scanned.saturating_sub(3);
        let crlf = self.buf[from..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|p| from + p + 4);
        let lf = self.buf[from..]
            .windows(2)
            .position(|w| w == b"\n\n")
            .map(|p| from + p + 2);
        let found = match (crlf, lf) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if found.is_none() {
            self.scanned = self.buf.len();
        }
        found
    }
}

/// Parses a complete header block (request line + headers + blank line).
fn parse_head(head: &[u8]) -> Result<PendingBody, FrameError> {
    let head =
        std::str::from_utf8(head).map_err(|_| FrameError::Malformed("non-UTF-8 header"))?;
    let mut lines = head.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Err(FrameError::Malformed("bad request line"));
    };
    let version = parts.next().filter(|v| v.starts_with("HTTP/1."));
    let Some(version) = version else {
        return Err(FrameError::Malformed("not HTTP/1.x"));
    };

    let mut content_length = 0usize;
    // HTTP/1.1 keeps the connection open unless told otherwise;
    // HTTP/1.0 closes it unless told otherwise.
    let mut keep_alive = version != "HTTP/1.0";
    let mut trace = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| FrameError::Malformed("bad content-length"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            } else if name.eq_ignore_ascii_case("x-patchdb-trace-id") {
                // A malformed trace id is ignored, not rejected: tracing
                // is advisory and must never fail a request.
                let value = value.trim();
                if valid_trace_id(value) {
                    trace = Some(value.to_owned());
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(FrameError::BodyTooLarge);
    }
    Ok(PendingBody {
        header_end: 0, // caller fills in
        content_length,
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        keep_alive,
        trace,
    })
}

/// A response about to be written: status, media type, body, and the
/// optional `Retry-After` backpressure hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Seconds for a `Retry-After` header (`503` shedding responses).
    pub retry_after: Option<u32>,
    /// The `(code, message)` behind an error envelope, retained so
    /// [`Response::with_trace`] can re-render the body with a client's
    /// trace id without re-parsing JSON. `None` for success bodies.
    pub(crate) error_parts: Option<(String, String)>,
}

impl Response {
    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            retry_after: None,
            error_parts: None,
        }
    }

    /// A Prometheus text-exposition response: plain text tagged with the
    /// exposition-format version so scrapers negotiate correctly.
    pub fn metrics(body: impl Into<String>) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
            retry_after: None,
            error_parts: None,
        }
    }

    /// A compact-JSON response.
    pub fn json(status: u16, json: &Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: (json.to_compact_string() + "\n").into_bytes(),
            retry_after: None,
            error_parts: None,
        }
    }

    /// The unified non-2xx error envelope shared by every endpoint:
    /// `{"error":{"code":...,"message":...}}`. `code` is a stable
    /// machine-readable slug — an HTTP reason slug (`not_found`,
    /// `overloaded`, ...) or a `patchdb::Error::code` tag when a
    /// library error caused the failure; `message` is human-readable
    /// detail.
    pub fn error(status: u16, code: &str, message: impl Into<String>) -> Response {
        let message = message.into();
        let mut r = Response::json(
            status,
            &Json::Obj(vec![(
                "error".into(),
                Json::Obj(vec![
                    ("code".into(), Json::Str(code.to_owned())),
                    ("message".into(), Json::Str(message.clone())),
                ]),
            )]),
        );
        r.error_parts = Some((code.to_owned(), message));
        r
    }

    /// Re-renders an error envelope with the client's trace id as a
    /// `trace_id` field: `{"error":{"code":...,"message":...,
    /// "trace_id":...}}`. Only applied when the client *supplied* the
    /// trace id — server-derived ids stay out of bodies so that the
    /// byte-determinism contract (identical bodies across transports,
    /// worker counts, and replays) holds for headerless clients. A
    /// success body is returned unchanged.
    pub fn with_trace(mut self, trace: &str) -> Response {
        if let Some((code, message)) = &self.error_parts {
            self.body = (Json::Obj(vec![(
                "error".into(),
                Json::Obj(vec![
                    ("code".into(), Json::Str(code.clone())),
                    ("message".into(), Json::Str(message.clone())),
                    ("trace_id".into(), Json::Str(trace.to_owned())),
                ]),
            )])
            .to_compact_string()
                + "\n")
                .into_bytes();
        }
        self
    }

    /// The `503` load-shedding response with its `Retry-After` hint.
    pub fn overloaded(retry_after_secs: u32) -> Response {
        let mut r = Response::error(503, "overloaded", "overloaded, retry later");
        r.retry_after = Some(retry_after_secs);
        r
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Response",
        }
    }
}

/// Renders the response head (status line through the blank line). The
/// body follows verbatim; only the `Connection` value varies between
/// keep-alive and close, so bodies and header shape are byte-identical
/// to the close-per-request protocol.
///
/// `ids` carries the admission-ordered request id and the trace id,
/// emitted as `X-Patchdb-Request-Id` / `X-Patchdb-Trace-Id`. Every
/// production path passes `Some` — even sheds and framing errors get an
/// id, so any response a client holds can be correlated with
/// `/debug/requests` and `/debug/trace/<id>`.
pub(crate) fn render_head(
    response: &Response,
    keep_alive: bool,
    ids: Option<(u64, &str)>,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    if let Some((id, trace)) = ids {
        head.push_str(&format!("X-Patchdb-Request-Id: {id}\r\n"));
        head.push_str(&format!("X-Patchdb-Trace-Id: {trace}\r\n"));
    }
    if let Some(secs) = response.retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    head.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Feeds the whole input at once and pulls one request.
    fn parse(text: &str) -> Result<Option<ParsedRequest>, FrameError> {
        let mut p = RequestParser::default();
        p.feed(text.as_bytes());
        p.next_request()
    }

    fn request(text: &str) -> Request {
        parse(text).unwrap().expect("complete request").request
    }

    #[test]
    fn parses_get_without_body() {
        let r = request("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_exactly() {
        let mut p = RequestParser::default();
        p.feed(b"POST /v1/identify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhellotrailing-junk");
        let r = p.next_request().unwrap().unwrap().request;
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"hello");
        // The junk stays buffered as the (bad) start of the next frame.
        assert_eq!(p.buffered(), "trailing-junk".len());
        assert!(p.has_partial());
    }

    #[test]
    fn tolerates_bare_lf_separators() {
        let r = request("POST /x HTTP/1.1\nContent-Length: 2\n\nok");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn rejects_garbage_and_poisons_the_stream() {
        let mut p = RequestParser::default();
        p.feed(b"not http at all\r\n\r\n");
        assert!(matches!(p.next_request(), Err(FrameError::Malformed(_))));
        // Poisoned: further bytes are ignored, no request ever emerges.
        p.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(!p.has_partial());

        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn incomplete_requests_stay_partial() {
        // Mid-header and mid-body cuts both report "need more bytes"
        // while flagging the partial — the event loop turns an EOF here
        // into a `read_failed` hangup classification.
        let mut p = RequestParser::default();
        p.feed(b"GET /healthz HT");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(p.has_partial());

        let mut p = RequestParser::default();
        p.feed(b"POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(p.has_partial());

        let empty = RequestParser::default();
        assert!(!empty.has_partial());
    }

    #[test]
    fn rejects_oversized_bodies_up_front() {
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&huge), Err(FrameError::BodyTooLarge)));
    }

    #[test]
    fn rejects_oversized_headers_with_431() {
        // Terminated but oversized header block.
        let mut big = String::from("GET / HTTP/1.1\r\n");
        while big.len() <= MAX_HEADER_BYTES {
            big.push_str("X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        big.push_str("\r\n");
        assert!(matches!(parse(&big), Err(FrameError::HeaderTooLarge)));

        // Unterminated flood past the bound: same verdict, and the
        // response carries status 431.
        let mut p = RequestParser::default();
        p.feed(&vec![b'A'; MAX_HEADER_BYTES + 2]);
        let err = p.next_request().unwrap_err();
        assert_eq!(err, FrameError::HeaderTooLarge);
        assert_eq!(err.response().status, 431);
    }

    #[test]
    fn trickled_bytes_assemble_one_request() {
        // Byte-at-a-time delivery: no request until the very last byte.
        let wire = b"POST /v1/identify HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let mut p = RequestParser::default();
        for (i, b) in wire.iter().enumerate() {
            p.feed(&[*b]);
            let got = p.next_request().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "complete request after only {} bytes", i + 1);
            } else {
                let r = got.expect("final byte completes the request");
                assert_eq!(r.request.path, "/v1/identify");
                assert_eq!(r.request.body, b"body");
            }
        }
        assert!(!p.has_partial());
    }

    #[test]
    fn two_pipelined_requests_in_one_segment() {
        let mut p = RequestParser::default();
        p.feed(
            b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/identify HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi",
        );
        let first = p.next_request().unwrap().unwrap();
        assert_eq!(first.request.path, "/healthz");
        assert!(first.keep_alive);
        let second = p.next_request().unwrap().unwrap();
        assert_eq!(second.request.path, "/v1/identify");
        assert_eq!(second.request.body, b"hi");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(!p.has_partial());
    }

    #[test]
    fn lf_framed_request_pipelined_ahead_of_crlf_request() {
        // Regression: the terminator scan used to prefer \r\n\r\n over
        // the entire buffer, so the later CRLF request's terminator won
        // and the LF request absorbed it as header lines — misframing
        // both requests and silently dropping the second.
        let mut p = RequestParser::default();
        p.feed(b"GET /first HTTP/1.1\n\nGET /second HTTP/1.1\r\n\r\n");
        let first = p.next_request().unwrap().expect("LF-framed request");
        assert_eq!(first.request.path, "/first");
        let second = p.next_request().unwrap().expect("CRLF-framed request");
        assert_eq!(second.request.path, "/second");
        assert!(matches!(p.next_request(), Ok(None)));
        assert!(!p.has_partial());
    }

    #[test]
    fn request_split_mid_header_resumes_cleanly() {
        let mut p = RequestParser::default();
        p.feed(b"GET /v1/stats HTTP/1.1\r\nAccep");
        assert!(matches!(p.next_request(), Ok(None)));
        p.feed(b"t: */*\r\nConnection: close\r\n\r\n");
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.request.path, "/v1/stats");
        assert!(!r.keep_alive);
    }

    #[test]
    fn connection_negotiation_follows_version_defaults() {
        let keep = parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(keep.keep_alive, "HTTP/1.1 defaults to keep-alive");
        let close = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().unwrap();
        assert!(!close.keep_alive);
        let old = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_keep =
            parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().unwrap();
        assert!(old_keep.keep_alive);
    }

    #[test]
    fn response_wire_format_round_trips() {
        let mut out = render_head(&Response::overloaded(1), false, None);
        out.extend_from_slice(&Response::overloaded(1).body);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Content-Type: application/json\r\n"), "{text}");
        assert!(
            text.ends_with(
                "{\"error\":{\"code\":\"overloaded\",\"message\":\"overloaded, retry later\"}}\n"
            ),
            "{text}"
        );

        // Keep-alive only flips the Connection value, nothing else.
        let ka = String::from_utf8(render_head(&Response::text(200, "ok\n"), true, None)).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"), "{ka}");
        let cl = String::from_utf8(render_head(&Response::text(200, "ok\n"), false, None)).unwrap();
        assert_eq!(
            ka.replace("Connection: keep-alive", "Connection: close"),
            cl,
            "head must differ only in the Connection value"
        );
    }

    #[test]
    fn reason_covers_431() {
        let r = Response::text(431, "x");
        let head = String::from_utf8(render_head(&r, false, None)).unwrap();
        assert!(head.starts_with("HTTP/1.1 431 Request Header Fields Too Large\r\n"), "{head}");
    }

    #[test]
    fn ids_render_as_patchdb_headers_before_retry_after() {
        let head =
            String::from_utf8(render_head(&Response::overloaded(2), true, Some((7, "abc-1"))))
                .unwrap();
        assert!(
            head.contains(
                "Connection: keep-alive\r\nX-Patchdb-Request-Id: 7\r\n\
                 X-Patchdb-Trace-Id: abc-1\r\nRetry-After: 2\r\n"
            ),
            "{head}"
        );
    }

    #[test]
    fn trace_header_is_captured_when_valid_and_ignored_otherwise() {
        let with = parse("GET / HTTP/1.1\r\nX-Patchdb-Trace-Id: req_42.a:b\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(with.trace.as_deref(), Some("req_42.a:b"));
        // Case-insensitive header name, surrounding whitespace trimmed.
        let cased =
            parse("GET / HTTP/1.1\r\nx-patchdb-TRACE-id:  t1 \r\n\r\n").unwrap().unwrap();
        assert_eq!(cased.trace.as_deref(), Some("t1"));

        let none = parse("GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(none.trace, None);
        // Quoting/framing characters and oversized values are dropped,
        // never echoed.
        let bad = parse("GET / HTTP/1.1\r\nX-Patchdb-Trace-Id: a\"b\r\n\r\n").unwrap().unwrap();
        assert_eq!(bad.trace, None);
        let long = format!(
            "GET / HTTP/1.1\r\nX-Patchdb-Trace-Id: {}\r\n\r\n",
            "a".repeat(MAX_TRACE_ID_BYTES + 1)
        );
        assert_eq!(parse(&long).unwrap().unwrap().trace, None);
        assert!(valid_trace_id(&"a".repeat(MAX_TRACE_ID_BYTES)));
        assert!(!valid_trace_id(""));
    }

    #[test]
    fn with_trace_extends_error_envelopes_only() {
        let err = Response::error(404, "not_found", "no such path").with_trace("t-9");
        assert_eq!(
            String::from_utf8(err.body).unwrap(),
            "{\"error\":{\"code\":\"not_found\",\"message\":\"no such path\",\
             \"trace_id\":\"t-9\"}}\n"
        );
        let ok = Response::text(200, "ok\n").with_trace("t-9");
        assert_eq!(ok.body, b"ok\n", "success bodies never grow a trace id");
    }
}
