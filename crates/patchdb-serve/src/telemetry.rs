//! Request-scoped telemetry for the serve path: request IDs, the
//! six-stage clock, the debug ring, slow-request exemplars, and the
//! optional JSON-lines access log.
//!
//! Every request gets a monotonically increasing ID at admission and a
//! [`RequestRecord`] that accumulates where the request spent its life:
//! `accept` (accept to event-loop registration, charged to a
//! connection's first request), `queue` (admission queue wait), `parse`
//! (first byte to complete frame in the event loop), `batch` (in the
//! identify micro-batcher), `compute` (endpoint work minus batch wait),
//! and `write` (first write attempt to last byte out). The six stages
//! are disjoint sub-intervals of the request's lifetime, so their sum
//! never exceeds `total_ns` — the invariant the access-log validator in
//! `check_bench_json` enforces.
//!
//! Recording is strictly observational: response bytes are identical
//! with telemetry on or off (`tests/serve.rs` pins the access-log
//! on/off byte identity), and the access log is disabled unless
//! `--access-log` is given.

use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use patchdb::Error;
use patchdb_rt::json::Json;
use patchdb_rt::obs::{self, EventRing};

use crate::server::ServeConfig;
use crate::slo::SloEngine;

/// Nanoseconds elapsed since `t`, saturating into `u64`.
pub(crate) fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Nanoseconds from `from` to `to`, saturating at zero and into `u64`.
pub(crate) fn elapsed_since(from: Instant, to: Instant) -> u64 {
    to.saturating_duration_since(from).as_nanos().min(u64::MAX as u128) as u64
}

/// One request's structured record: identity, outcome, and the
/// six-stage duration breakdown.
#[derive(Debug, Clone)]
pub(crate) struct RequestRecord {
    /// Server-unique request ID, assigned at accept in admission order.
    pub id: u64,
    /// Upper-case method, `"-"` until a request line was parsed.
    pub method: String,
    /// Request path (query included), `"-"` until parsed.
    pub path: String,
    /// The endpoint label metrics use (`identify`, `healthz`, ...), or a
    /// terminal classification (`shed`, `deadline`, `disconnect`,
    /// `parse`) when no endpoint ran.
    pub endpoint: &'static str,
    /// Response status, `0` when the client vanished before one could be
    /// written.
    pub status: u16,
    /// Accept-to-written wall time.
    pub total_ns: u64,
    /// Accept thread: TCP accept to admission-queue push.
    pub accept_ns: u64,
    /// Admission-queue wait: push to worker dequeue.
    pub queue_ns: u64,
    /// Socket read + HTTP parse.
    pub parse_ns: u64,
    /// Blocked on the identify micro-batcher (zero for other endpoints).
    pub batch_ns: u64,
    /// Endpoint work, batch wait excluded.
    pub compute_ns: u64,
    /// Response write + flush.
    pub write_ns: u64,
    /// The trace id: a client-supplied `X-Patchdb-Trace-Id`, else the
    /// admission id rendered as 16 hex digits.
    pub trace: String,
    /// Whether the client supplied the trace id. Only supplied ids are
    /// echoed into error-envelope *bodies* — derived ids stay in
    /// headers so bodies remain byte-deterministic for plain clients.
    pub trace_supplied: bool,
    /// The index generation pinned at admission (0 until pinned).
    pub generation: u64,
    /// Identify-cache outcome: `Some(true)` hit, `Some(false)` miss,
    /// `None` when the request never consulted the cache.
    pub cache: Option<bool>,
    /// Per-shard compute nanoseconds for a scatter-gather fan-out, in
    /// shard order; empty when the request ran single-shard.
    pub shards: Vec<u64>,
}

impl RequestRecord {
    /// A fresh record for an admitted connection; the remaining stages
    /// fill in as the request advances.
    pub fn admitted(id: u64, accept_ns: u64) -> RequestRecord {
        RequestRecord {
            id,
            method: "-".into(),
            path: "-".into(),
            endpoint: "other",
            status: 0,
            total_ns: 0,
            accept_ns,
            queue_ns: 0,
            parse_ns: 0,
            batch_ns: 0,
            compute_ns: 0,
            write_ns: 0,
            trace: derived_trace(id),
            trace_supplied: false,
            generation: 0,
            cache: None,
            shards: Vec::new(),
        }
    }

    /// Sum of the six stage durations (always `<= total_ns`).
    #[cfg(test)]
    pub fn stage_sum_ns(&self) -> u64 {
        self.accept_ns
            .saturating_add(self.queue_ns)
            .saturating_add(self.parse_ns)
            .saturating_add(self.batch_ns)
            .saturating_add(self.compute_ns)
            .saturating_add(self.write_ns)
    }

    fn fields(&self) -> Vec<(String, Json)> {
        let mut fields = vec![
            ("id".into(), Json::Num(self.id as f64)),
            ("trace".into(), Json::Str(self.trace.clone())),
            ("method".into(), Json::Str(self.method.clone())),
            ("path".into(), Json::Str(self.path.clone())),
            ("endpoint".into(), Json::Str(self.endpoint.into())),
            ("status".into(), Json::Num(self.status as f64)),
            ("generation".into(), Json::Num(self.generation as f64)),
            ("total_ns".into(), Json::Num(self.total_ns as f64)),
            ("accept_ns".into(), Json::Num(self.accept_ns as f64)),
            ("queue_ns".into(), Json::Num(self.queue_ns as f64)),
            ("parse_ns".into(), Json::Num(self.parse_ns as f64)),
            ("batch_ns".into(), Json::Num(self.batch_ns as f64)),
            ("compute_ns".into(), Json::Num(self.compute_ns as f64)),
            ("write_ns".into(), Json::Num(self.write_ns as f64)),
        ];
        if let Some(hit) = self.cache {
            let outcome = if hit { "hit" } else { "miss" };
            fields.push(("cache".into(), Json::Str(outcome.into())));
        }
        if !self.shards.is_empty() {
            fields.push((
                "shards".into(),
                Json::Arr(self.shards.iter().map(|&ns| Json::Num(ns as f64)).collect()),
            ));
            let max = self.shards.iter().copied().max().unwrap_or(0);
            let min = self.shards.iter().copied().min().unwrap_or(0);
            fields.push(("shard_imbalance_ns".into(), Json::Num((max - min) as f64)));
        }
        fields
    }

    /// The `/debug/requests` and `/debug/slow` document for one record.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.fields())
    }

    /// One access-log line: the record's fields behind a monotonic
    /// `ts_ms` (milliseconds since server start, captured at log time).
    fn to_log_json(&self, ts_ms: u64) -> Json {
        let mut fields = vec![("ts_ms".into(), Json::Num(ts_ms as f64))];
        fields.extend(self.fields());
        Json::Obj(fields)
    }
}

/// The server-derived trace id for an admission-ordered request id: 16
/// hex digits, so derived and client-supplied ids are visually
/// distinguishable and the mapping back to `/debug/requests` is
/// trivial.
pub(crate) fn derived_trace(id: u64) -> String {
    format!("{id:016x}")
}

/// Capacity of the slow-request exemplar ring.
const SLOW_RING: usize = 32;

/// The access-log sink plus its size-based rotation state. Rotation
/// happens under the same lock that serializes writes, *before* the
/// line that would cross the cap goes out — so a log line is never
/// split across files and `PATH` always starts at a line boundary.
struct AccessSink {
    sink: Box<dyn Write + Send>,
    /// Rotation target; `None` for stdout, which never rotates.
    path: Option<String>,
    /// Bytes written to the current file.
    written: u64,
    /// Rotate when a write would push `written` past this; `0` disables.
    max_bytes: u64,
}

impl AccessSink {
    /// Writes one complete log line, rotating `PATH` → `PATH.1` first
    /// when the line would cross the size cap. Only ever called with a
    /// full line (trailing `\n` included).
    fn write_line(&mut self, line: &[u8]) {
        if let Some(path) = &self.path {
            if self.max_bytes > 0
                && self.written > 0
                && self.written.saturating_add(line.len() as u64) > self.max_bytes
            {
                let _ = self.sink.flush();
                let _ = std::fs::rename(path, format!("{path}.1"));
                match std::fs::File::create(path) {
                    Ok(file) => {
                        self.sink = Box::new(file);
                        self.written = 0;
                        obs::counter_add("serve.access_log.rotations", 1);
                    }
                    Err(_) => {
                        // Reopen failed: keep writing to the renamed
                        // file rather than losing lines.
                    }
                }
            }
        }
        let _ = self.sink.write_all(line);
        let _ = self.sink.flush();
        self.written = self.written.saturating_add(line.len() as u64);
    }
}

/// Per-server telemetry state, shared by the event loop, the batcher,
/// and every worker.
pub(crate) struct Telemetry {
    started: Instant,
    next_id: AtomicU64,
    ring: EventRing<RequestRecord>,
    slow: EventRing<RequestRecord>,
    slow_ns: u64,
    /// `ts_ms` is read under this lock so log lines are written with
    /// strictly non-decreasing timestamps even under worker contention.
    access: Option<Mutex<AccessSink>>,
    /// Finished records addressable by trace id for `/debug/trace/<id>`.
    /// Fed only while the tracing layer is on.
    traces: EventRing<RequestRecord>,
    /// The SLO burn-rate engine; every finished request feeds it.
    slo: SloEngine,
}

impl Telemetry {
    /// Builds the telemetry state from the server config, opening (and
    /// truncating) the access-log sink when one is configured (`"-"`
    /// logs to stdout).
    pub fn new(config: &ServeConfig) -> Result<Telemetry, Error> {
        let access: Option<AccessSink> = match config.access_log.as_deref() {
            None => None,
            Some("-") => Some(AccessSink {
                sink: Box::new(std::io::stdout()),
                path: None,
                written: 0,
                max_bytes: 0,
            }),
            Some(path) => Some(AccessSink {
                sink: Box::new(std::fs::File::create(path)?),
                path: Some(path.to_owned()),
                written: 0,
                max_bytes: config.access_log_max_mb.saturating_mul(1024 * 1024),
            }),
        };
        Ok(Telemetry {
            started: Instant::now(),
            next_id: AtomicU64::new(1),
            ring: EventRing::new(config.debug_ring),
            slow: EventRing::new(SLOW_RING),
            slow_ns: config.slow_ms.saturating_mul(1_000_000),
            access: access.map(Mutex::new),
            traces: EventRing::new(config.debug_ring),
            slo: SloEngine::new(config),
        })
    }

    /// The next request ID, in admission order.
    pub fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Whole seconds since the server booted (for `/healthz` and the
    /// `patchdb_uptime_seconds` gauge line).
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The SLO engine, for the event loop's per-second evaluation tick
    /// and the `/debug/slo` document.
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Banks one finished request: global windowed histograms and stage
    /// histograms, the debug ring, the slow-exemplar ring, and the
    /// access log. Called exactly once per accepted connection, after
    /// the response (if any) was written.
    pub fn observe(&self, record: RequestRecord) {
        obs::window_record("serve.request.total_ns", record.total_ns);
        obs::window_record(
            &format!("serve.{}.total_ns", record.endpoint),
            record.total_ns,
        );
        let mut shard = obs::Shard::new();
        shard.record("serve.stage.accept_ns", record.accept_ns);
        shard.record("serve.stage.queue_ns", record.queue_ns);
        shard.record("serve.stage.parse_ns", record.parse_ns);
        shard.record("serve.stage.batch_ns", record.batch_ns);
        shard.record("serve.stage.compute_ns", record.compute_ns);
        shard.record("serve.stage.write_ns", record.write_ns);
        shard.flush();

        if let Some(log) = &self.access {
            let mut sink = log.lock().unwrap();
            let ts_ms = self.started.elapsed().as_millis().min(u64::MAX as u128) as u64;
            let line = record.to_log_json(ts_ms).to_compact_string() + "\n";
            sink.write_line(line.as_bytes());
        }
        if record.total_ns >= self.slow_ns {
            obs::counter_add("serve.slow_requests", 1);
            self.slow.push(record.clone());
        }
        if crate::tracing_enabled() {
            self.slo.observe(&record);
            self.traces.push(record.clone());
        }
        self.ring.push(record);
    }

    /// The `GET /debug/trace/<id>` document for the most recent finished
    /// request carrying `trace` — stage clocks, shard timings, cache
    /// outcome, and pinned generation. `None` when no retained record
    /// matches (never traced, or aged out of the ring).
    pub fn debug_trace_json(&self, trace: &str) -> Option<Json> {
        let records = self.traces.recent(self.traces.capacity());
        let record = records.iter().rev().find(|r| r.trace == trace)?;
        Some(Json::Obj(vec![
            ("schema".into(), Json::Str("patchdb-trace-request/v1".into())),
            ("trace_id".into(), Json::Str(record.trace.clone())),
            ("supplied".into(), Json::Bool(record.trace_supplied)),
            ("request".into(), record.to_json()),
        ]))
    }

    /// The `GET /debug/requests` document: ring capacity/pressure plus
    /// the last `n` records, oldest first.
    pub fn debug_requests_json(&self, n: usize) -> Json {
        Json::Obj(vec![
            ("capacity".into(), Json::Num(self.ring.capacity() as f64)),
            ("total".into(), Json::Num(self.ring.total() as f64)),
            ("dropped".into(), Json::Num(self.ring.dropped() as f64)),
            (
                "requests".into(),
                Json::Arr(self.ring.recent(n).iter().map(RequestRecord::to_json).collect()),
            ),
        ])
    }

    /// The `GET /debug/slow` document: the threshold and the most recent
    /// slow-request exemplars with their full stage breakdowns.
    pub fn debug_slow_json(&self) -> Json {
        Json::Obj(vec![
            ("slow_ms".into(), Json::Num(self.slow_ns as f64 / 1e6)),
            ("total".into(), Json::Num(self.slow.total() as f64)),
            (
                "requests".into(),
                Json::Arr(self.slow.recent(SLOW_RING).iter().map(RequestRecord::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, total: u64) -> RequestRecord {
        let mut r = RequestRecord::admitted(id, 10);
        r.queue_ns = 20;
        r.parse_ns = 30;
        r.batch_ns = 0;
        r.compute_ns = 40;
        r.write_ns = 5;
        r.total_ns = total;
        r.status = 200;
        r
    }

    #[test]
    fn stage_sum_stays_below_total() {
        let r = record(1, 200);
        assert_eq!(r.stage_sum_ns(), 105);
        assert!(r.stage_sum_ns() <= r.total_ns);
    }

    #[test]
    fn record_json_carries_all_six_stages() {
        let json = record(7, 500).to_json();
        for field in
            ["accept_ns", "queue_ns", "parse_ns", "batch_ns", "compute_ns", "write_ns"]
        {
            assert!(json.get(field).and_then(Json::as_f64).is_some(), "missing {field}");
        }
        assert_eq!(json.get("id").and_then(Json::as_f64), Some(7.0));
        assert_eq!(json.get("status").and_then(Json::as_f64), Some(200.0));
    }

    #[test]
    fn slow_ring_captures_only_above_threshold() {
        let config = ServeConfig::default().slow_ms(1); // 1 ms
        let telemetry = Telemetry::new(&config).unwrap();
        telemetry.observe(record(1, 500)); // 500 ns: fast
        telemetry.observe(record(2, 2_000_000)); // 2 ms: slow
        let slow = telemetry.debug_slow_json();
        let requests = slow.get("requests").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(requests.len(), 1);
        assert_eq!(requests[0].get("id").and_then(Json::as_f64), Some(2.0));
        let all = telemetry.debug_requests_json(16);
        assert_eq!(all.get("requests").and_then(|r| r.as_arr()).unwrap().len(), 2);
    }

    /// Size-based rotation is atomic at the line level: every line lands
    /// whole in exactly one of `PATH.1`/`PATH`, no line is split by the
    /// rename, and ids stay unique across the pair.
    #[test]
    fn rotation_never_splits_a_line() {
        let path = std::env::temp_dir()
            .join(format!("patchdb_access_rot_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_owned();
        let rotated = format!("{path}.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);

        let config = ServeConfig::default().access_log(&path).access_log_max_mb(1);
        let telemetry = Telemetry::new(&config).unwrap();
        // Shrink the cap so the 40 lines (~210 bytes each) rotate exactly
        // once — a second rotation would rename over `PATH.1` and the
        // oldest lines would legitimately be gone. The mb knob only
        // scales this same byte threshold.
        telemetry.access.as_ref().unwrap().lock().unwrap().max_bytes = 6_000;
        for id in 1..=40 {
            telemetry.observe(record(id, 1_000));
        }

        assert!(std::fs::metadata(&rotated).is_ok(), "no rotation happened");
        let mut ids = Vec::new();
        for file in [&rotated, &path] {
            let text = std::fs::read_to_string(file).unwrap();
            assert!(text.ends_with('\n'), "{file} does not end at a line boundary");
            for line in text.lines() {
                let json = Json::parse(line)
                    .unwrap_or_else(|e| panic!("split/corrupt line in {file}: {e:?}"));
                ids.push(json.get("id").and_then(Json::as_f64).unwrap() as u64);
            }
        }
        // PATH.1 holds the older lines, PATH the newer: reading the pair
        // in that order yields every id exactly once, in order.
        assert_eq!(ids, (1..=40).collect::<Vec<u64>>(), "lines lost or reordered");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn ids_are_unique_and_ascending() {
        let telemetry = Telemetry::new(&ServeConfig::default()).unwrap();
        let ids: Vec<u64> = (0..5).map(|_| telemetry.next_id()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    /// A second rotation *replaces* `PATH.1` — the rename overwrites the
    /// previous generation rather than appending to it, so `PATH.1`
    /// never mixes two generations of lines.
    #[test]
    fn second_rotation_replaces_dot_one() {
        let path = std::env::temp_dir()
            .join(format!("patchdb_access_rot2_{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_owned();
        let rotated = format!("{path}.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);

        let config = ServeConfig::default().access_log(&path).access_log_max_mb(1);
        let telemetry = Telemetry::new(&config).unwrap();
        // Small cap → the 40 lines rotate at least twice.
        telemetry.access.as_ref().unwrap().lock().unwrap().max_bytes = 2_500;
        for id in 1..=40 {
            telemetry.observe(record(id, 1_000));
        }
        let written = telemetry.access.as_ref().unwrap().lock().unwrap().written;
        assert!(written > 0, "sanity: the current file has bytes");

        let text = std::fs::read_to_string(&rotated).unwrap();
        let first_id = Json::parse(text.lines().next().unwrap())
            .unwrap()
            .get("id")
            .and_then(Json::as_f64)
            .unwrap() as u64;
        assert!(first_id > 1, "PATH.1 still holds generation-one lines: replaced, not appended");
        // And the retained pair still parses line-by-line with ascending
        // contiguous ids — nothing was interleaved by the overwrite.
        let mut ids = Vec::new();
        for file in [&rotated, &path] {
            for line in std::fs::read_to_string(file).unwrap().lines() {
                ids.push(Json::parse(line).unwrap().get("id").and_then(Json::as_f64).unwrap()
                    as u64);
            }
        }
        let expect: Vec<u64> = (first_id..=40).collect();
        assert_eq!(ids, expect, "PATH.1 + PATH must be one contiguous suffix of the stream");

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&rotated);
    }

    #[test]
    fn derived_trace_is_sixteen_hex_digits() {
        assert_eq!(derived_trace(1), "0000000000000001");
        assert_eq!(derived_trace(0xdead_beef), "00000000deadbeef");
        let r = RequestRecord::admitted(7, 0);
        assert_eq!(r.trace, "0000000000000007");
        assert!(!r.trace_supplied);
    }

    #[test]
    fn debug_trace_lookup_finds_latest_match() {
        let telemetry = Telemetry::new(&ServeConfig::default()).unwrap();
        let mut a = record(1, 500);
        a.trace = "client-a".into();
        a.trace_supplied = true;
        a.generation = 3;
        a.cache = Some(true);
        a.shards = vec![100, 250, 50, 200];
        telemetry.observe(a);
        telemetry.observe(record(2, 500));

        let doc = telemetry.debug_trace_json("client-a").expect("trace retained");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("patchdb-trace-request/v1"));
        assert_eq!(doc.get("trace_id").and_then(Json::as_str), Some("client-a"));
        let req = doc.get("request").unwrap();
        assert_eq!(req.get("generation").and_then(Json::as_f64), Some(3.0));
        assert_eq!(req.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(
            req.get("shards").and_then(|s| s.as_arr()).map(|s| s.len()),
            Some(4)
        );
        assert_eq!(req.get("shard_imbalance_ns").and_then(Json::as_f64), Some(200.0));

        // The derived trace of request 2 resolves too; a stranger 404s.
        assert!(telemetry.debug_trace_json(&derived_trace(2)).is_some());
        assert!(telemetry.debug_trace_json("no-such-trace").is_none());
    }
}
